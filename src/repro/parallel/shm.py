"""Zero-copy shared-memory export of immutable CSR snapshot arrays.

The process-pool backend (:mod:`repro.parallel.procpool`) runs kernels in
long-lived worker processes. Shipping a million-edge CSR to every worker
by pickle would cost O(E) serialisation per dispatch — the opposite of
the paper's "operations on large graphs complete at interactive speeds"
posture. Instead, each immutable snapshot's arrays are written **once**
into named :mod:`multiprocessing.shared_memory` segments and re-mapped
zero-copy by every worker that needs them:

* exports are keyed by the snapshot cache's ``(graph id, version)``
  identity (:func:`export_key`), so an export goes stale exactly when
  the cached snapshot does — no second invalidation protocol;
* segments are **reference-counted** around kernel dispatch: a cache
  eviction (or a dropped anonymous CSR) marks the export dead, and the
  actual ``unlink`` happens when the last in-flight dispatch releases
  it;
* every export passes the ``parallel.shm.export`` fault site, so tests
  can prove a failed export degrades cleanly to the thread backend;
* an :mod:`atexit` hook unlinks every surviving segment, and a
  ``weakref.finalize`` per exported CSR unlinks exports whose snapshot
  was garbage-collected without ever passing through the cache.

Worker processes attach with :func:`attach_arrays`; attachments are
cached per segment name (names are never reused, so the cache needs no
invalidation). Ownership is strictly parent-side: on 3.11 a plain
attach registers the segment with the resource tracker (bpo-39959), so
workers that own their tracker (spawn-started) unregister after
attaching — otherwise worker exit would tear parent-owned segments down
— while fork-started workers, which share the parent's tracker, leave
the parent's registration alone (see :func:`_should_untrack`).
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.exceptions import ExecutionError
from repro.faults import fault_point
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.spans import enabled as _tracing_enabled
from repro.obs.spans import event as _obs_event

SEGMENT_PREFIX = "ringo"

# Fixed export set most kernels need; derived arrays are added lazily
# per lease, so e.g. the forward adjacency is only materialised into
# shared memory for snapshots that actually run the triangle kernel.
_EXPORT_SEQ = 0


def _next_segment_name(array_name: str) -> str:
    """A process-unique segment name (never reused, so attach caches
    in workers need no invalidation protocol)."""
    global _EXPORT_SEQ
    _EXPORT_SEQ += 1
    short = array_name.replace("_", "")[:10]
    return f"{SEGMENT_PREFIX}-{os.getpid():x}-{_EXPORT_SEQ:x}-{short}"


def export_key(csr) -> tuple:
    """The registry identity of a snapshot's export.

    CSRs served by the versioned snapshot cache carry the cache's
    ``(graph id, version)`` stamp (set in
    :meth:`repro.graphs.snapshot.SnapshotCache.get`), so the export
    lifecycle piggybacks on snapshot invalidation. Anonymous CSRs
    (derived projections, hand-built snapshots) fall back to object
    identity and rely on the per-CSR finalizer for cleanup.
    """
    stamped = getattr(csr, "_snapshot_key", None)
    if stamped is not None:
        return ("snapshot",) + tuple(stamped)
    return ("csr", id(csr))


class _ArraySegment:
    """One exported array: its segment plus reconstruction metadata."""

    __slots__ = ("name", "shm", "shape", "dtype")

    def __init__(self, array: np.ndarray, array_name: str) -> None:
        self.name = _next_segment_name(array_name)
        self.shape = tuple(array.shape)
        self.dtype = array.dtype.str
        # A zero-length array still needs a mappable segment.
        self.shm = shared_memory.SharedMemory(
            name=self.name, create=True, size=max(1, array.nbytes)
        )
        if array.nbytes:
            view = np.ndarray(self.shape, dtype=self.dtype, buffer=self.shm.buf)
            view[...] = array

    def descriptor(self) -> tuple:
        """Picklable ``(segment name, shape, dtype)`` triple."""
        return (self.name, self.shape, self.dtype)

    def unlink(self) -> None:
        """Close the mapping and remove the segment from the system."""
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class SnapshotExport:
    """All shared segments for one snapshot, reference-counted.

    ``refs`` counts in-flight process dispatches using the export;
    ``dead`` is set by cache eviction (or the CSR finalizer) and the
    segments are unlinked as soon as both conditions meet.
    """

    __slots__ = ("key", "segments", "refs", "dead")

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.segments: dict[str, _ArraySegment] = {}
        self.refs = 0
        self.dead = False

    def descriptor(self, names) -> dict[str, tuple]:
        """Picklable descriptor for the named arrays."""
        return {name: self.segments[name].descriptor() for name in names}

    def nbytes(self) -> int:
        """Total bytes of shared memory held by this export."""
        return sum(seg.shm.size for seg in self.segments.values())

    def _unlink_all(self) -> None:
        for segment in self.segments.values():
            segment.unlink()
        self.segments.clear()


class ShmRegistry:
    """Process-wide table of live snapshot exports.

    The parent (dispatching) process owns every segment: workers only
    map them. ``lease``/``release`` bracket one process-backend
    dispatch; ``drop`` is the invalidation hook the snapshot cache (and
    CSR finalizers) call; ``drop_all`` is the interpreter-exit hook.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._exports: dict[tuple, SnapshotExport] = {}
        self._exports_total = 0
        self._unlinked_total = 0
        self._export_bytes_total = 0

    # ------------------------------------------------------------------
    # Dispatch-side lifecycle
    # ------------------------------------------------------------------

    def lease(self, csr, arrays: "dict[str, np.ndarray]") -> tuple:
        """Ensure ``arrays`` are exported for ``csr``; pin and describe.

        Returns ``(export, descriptor)`` with the export's refcount
        already incremented — callers must pair with :meth:`release`.
        Raises :class:`~repro.exceptions.ExecutionError` (or the armed
        injected fault) if a segment cannot be created; a partial
        export is torn down before raising.
        """
        key = export_key(csr)
        with self._lock:
            export = self._exports.get(key)
            if export is None or export.dead:
                export = SnapshotExport(key)
                self._exports[key] = export
                self._exports_total += 1
                # Unlink even if the CSR is dropped without any cache
                # eviction ever firing (anonymous/projection snapshots).
                weakref.finalize(csr, self.drop, key)
            missing = [name for name in arrays if name not in export.segments]
            if missing:
                fault_point("parallel.shm.export")
                created: list[_ArraySegment] = []
                try:
                    for name in missing:
                        segment = _ArraySegment(arrays[name], name)
                        created.append(segment)
                        self._export_bytes_total += segment.shm.size
                except Exception as error:
                    for segment in created:
                        segment.unlink()
                    if isinstance(error, ExecutionError):
                        raise
                    raise ExecutionError(
                        f"shared-memory export failed: {error}"
                    ) from error
                for name, segment in zip(missing, created):
                    export.segments[name] = segment
                if _tracing_enabled():
                    _metrics_registry().counter("shm.exports_total").inc(len(created))
                    _obs_event(
                        "shm.export",
                        arrays=len(created),
                        bytes=sum(seg.shm.size for seg in created),
                    )
            export.refs += 1
            return export, export.descriptor(arrays.keys())

    def release(self, export: SnapshotExport) -> None:
        """Unpin one dispatch; unlink a dead export once idle."""
        with self._lock:
            export.refs -= 1
            if export.dead and export.refs <= 0:
                self._unlink_entry(export)

    # ------------------------------------------------------------------
    # Invalidation hooks
    # ------------------------------------------------------------------

    def drop(self, key: tuple) -> bool:
        """Invalidate one export (cache eviction / CSR collected).

        Busy exports are marked dead and unlinked by the last
        :meth:`release`; idle ones are unlinked immediately. Returns
        whether an export was present.
        """
        with self._lock:
            export = self._exports.get(key)
            if export is None:
                return False
            export.dead = True
            if export.refs <= 0:
                self._unlink_entry(export)
            return True

    def drop_for_csr(self, csr) -> None:
        """Invalidate the export of ``csr`` and of its cached projection."""
        self.drop(export_key(csr))
        projection = getattr(csr, "_undirected", None)
        if projection is not None and projection is not csr:
            self.drop(export_key(projection))

    def drop_all(self) -> None:
        """Unlink every surviving segment (interpreter-exit hook)."""
        with self._lock:
            for export in list(self._exports.values()):
                export.dead = True
                self._unlink_entry(export)

    def _unlink_entry(self, export: SnapshotExport) -> None:
        # Caller holds the lock.
        if export.segments:
            self._unlinked_total += 1
            export._unlink_all()
        self._exports.pop(export.key, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot for ``Ringo.health()["parallel"]["shm"]``."""
        with self._lock:
            live = [e for e in self._exports.values() if e.segments]
            return {
                "live_exports": len(live),
                "live_segments": sum(len(e.segments) for e in live),
                "live_bytes": sum(e.nbytes() for e in live),
                "exports_total": self._exports_total,
                "unlinked_total": self._unlinked_total,
                "export_bytes_total": self._export_bytes_total,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._exports)


_REGISTRY = ShmRegistry()
atexit.register(_REGISTRY.drop_all)


def shm_registry() -> ShmRegistry:
    """The process-wide export registry (what the process backend uses)."""
    return _REGISTRY


def notify_snapshot_dropped(csr) -> None:
    """Snapshot-cache eviction hook: invalidate the CSR's exports.

    Called (lazily, to keep :mod:`repro.graphs.snapshot` import-light)
    whenever the cache evicts, replaces, or loses a snapshot — the
    export must not outlive the snapshot identity it was keyed by.
    """
    _REGISTRY.drop_for_csr(csr)


def leaked_segments() -> list[str]:
    """Names of this package's segments still present in ``/dev/shm``.

    Linux-only diagnostic used by the leak tests and the multicore
    benchmark gate; returns an empty list where ``/dev/shm`` does not
    exist (the lifecycle still holds, it just cannot be observed this
    way).
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return sorted(
        entry for entry in os.listdir(root)
        if entry.startswith(f"{SEGMENT_PREFIX}-")
    )


# ----------------------------------------------------------------------
# Worker-side attachment
# ----------------------------------------------------------------------

_ATTACH_CACHE: "dict[str, tuple[shared_memory.SharedMemory, np.ndarray]]" = {}
_ATTACH_CACHE_CAP = 64
_UNTRACK_ON_ATTACH: "bool | None" = None


def _should_untrack() -> bool:
    # On 3.11 a plain attach registers the segment with the resource
    # tracker (bpo-39959). Whether that must be undone depends on how
    # this process came to be: a fork-started worker inherits the
    # parent's tracker connection, so its registrations land in the
    # shared cache the parent balances with unlink — unregistering here
    # would corrupt that accounting. A spawn-started worker (or a fork
    # before the parent ever created a segment) has no inherited
    # connection; its attach spawns a worker-owned tracker that would
    # unlink parent-owned segments at worker exit, so there we must
    # unregister. Decided once, before the first attach spins a tracker
    # up.
    global _UNTRACK_ON_ATTACH
    if _UNTRACK_ON_ATTACH is None:
        try:
            from multiprocessing import resource_tracker

            _UNTRACK_ON_ATTACH = resource_tracker._resource_tracker._fd is None
        except Exception:  # pragma: no cover - tracker internals moved
            _UNTRACK_ON_ATTACH = False
    return _UNTRACK_ON_ATTACH


def _untrack(shm: shared_memory.SharedMemory) -> None:
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    # Tracker internals are CPython-private; a failure here must never
    # break attach.  # ringo-lint: disable=R011
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def attach_arrays(descriptor: "dict[str, tuple]") -> "dict[str, np.ndarray]":
    """Map a descriptor's segments as read-only numpy views (zero-copy).

    Worker-process side of the export protocol. Attachments are cached
    by segment name — names are never reused, so a cached mapping can
    never be stale — and capped; evicted attachments close their local
    mapping only (the parent owns unlinking).
    """
    untrack = _should_untrack()
    arrays: dict[str, np.ndarray] = {}
    for array_name, (segment_name, shape, dtype) in descriptor.items():
        cached = _ATTACH_CACHE.get(segment_name)
        if cached is None:
            shm = shared_memory.SharedMemory(name=segment_name)
            if untrack:
                _untrack(shm)
            view = np.ndarray(tuple(shape), dtype=dtype, buffer=shm.buf)
            view.flags.writeable = False
            if len(_ATTACH_CACHE) >= _ATTACH_CACHE_CAP:
                _, (old_shm, _) = _ATTACH_CACHE.popitem()
                old_shm.close()
            _ATTACH_CACHE[segment_name] = cached = (shm, view)
        arrays[array_name] = cached[1]
    return arrays
