"""Worker pool standing in for Ringo's OpenMP parallel loops.

Ringo parallelises "critical loops in the code for full utilization of our
target multi-core platforms" (§2.5). In this reproduction those loops are
expressed as a kernel applied to disjoint range partitions, run either
serially or on a thread pool. Threads speed the numpy-bound kernels (which
release the GIL) and faithfully exercise the concurrency of the
paper's concurrent containers for the pure-Python ones.

Unlike an OpenMP loop inside a short-lived process, this pool lives for
the whole interactive session, so it carries the execution semantics a
wedged or failing kernel needs:

* **deadlines** — every mapping call takes ``timeout=`` seconds; on
  expiry outstanding partition futures are cancelled and
  :class:`WorkerTimeoutError` is raised.
* **first-error cancellation** — when one partition fails, pending
  sibling partitions are cancelled instead of being joined in
  submission order.
* **retries** — kernels raising :class:`TransientError` are re-attempted
  under the pool's :class:`RetryPolicy` (if one is configured).
* **graceful degradation** — after ``degrade_after`` consecutive failed
  parallel calls the pool downgrades itself to serial inline execution
  and records the downgrade in :attr:`WorkerPool.stats`.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_EXCEPTION, Future, ThreadPoolExecutor, wait
from typing import Callable, Sequence, TypeVar

from repro.analysis.hooks import kernel_dispatch
from repro.exceptions import PoolClosedError, RingoError, WorkerTimeoutError
from repro.faults import fault_point
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.spans import current_span_id
from repro.obs.spans import enabled as _tracing_enabled
from repro.obs.spans import trace
from repro.parallel.partition import split_range
from repro.parallel.resilience import PoolStats, RetryPolicy, run_with_retry
from repro.util.validation import check_positive

R = TypeVar("R")
T = TypeVar("T")

_DEFAULT_WORKERS_ENV = "REPRO_WORKERS"


def effective_worker_count(workers: int | None = None) -> int:
    """Resolve a worker count.

    ``None`` means "use the machine": the ``REPRO_WORKERS`` environment
    variable if set, otherwise the CPU count. The result is always >= 1.
    """
    if workers is not None:
        check_positive(workers, "workers")
        return workers
    env = os.environ.get(_DEFAULT_WORKERS_ENV)
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            raise RingoError(
                f"{_DEFAULT_WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
        check_positive(value, _DEFAULT_WORKERS_ENV)
        return value
    return os.cpu_count() or 1


class WorkerPool:
    """Applies kernels over range partitions, serially or with threads.

    A pool with one worker runs everything inline on the calling thread,
    which keeps single-threaded benchmarks (paper Table 6) free of pool
    overhead and makes ``WorkerPool(1)`` the deterministic default for tests.

    ``retry_policy`` arms transparent re-attempts of kernels that raise
    :class:`TransientError`; ``degrade_after`` sets how many consecutive
    failed parallel calls flip the pool into serial-only mode (``None``
    disables degradation).

    >>> pool = WorkerPool(2)
    >>> pool.map_range(10, lambda lo, hi: sum(range(lo, hi)))
    [10, 35]
    >>> pool.close()
    """

    def __init__(
        self,
        workers: int | None = None,
        retry_policy: RetryPolicy | None = None,
        degrade_after: int | None = 3,
    ) -> None:
        self.workers = effective_worker_count(workers)
        self.retry_policy = retry_policy
        if degrade_after is not None:
            check_positive(degrade_after, "degrade_after")
        self.degrade_after = degrade_after
        self.stats = PoolStats()
        self._closed = False
        self._failure_streak = 0
        self._executor: ThreadPoolExecutor | None = None
        if self.workers > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-worker"
            )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def degraded(self) -> bool:
        """Whether repeated parallel failures downgraded the pool to serial."""
        return self.stats.degraded

    def close(self) -> None:
        """Shut down the underlying thread pool, if any (idempotent)."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Mapping API
    # ------------------------------------------------------------------

    def map_range(
        self,
        total: int,
        kernel: Callable[[int, int], R],
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> list[R]:
        """Run ``kernel(lo, hi)`` over a partition of ``range(total)``.

        Returns per-partition results in partition order, so a caller can
        combine them deterministically (e.g. summing per-partition triangle
        counts) regardless of completion order.
        """
        spans = split_range(total, self.workers)
        return self._execute(
            [lambda lo=lo, hi=hi: kernel(lo, hi) for lo, hi in spans],
            timeout=timeout,
            retry=retry,
        )

    def map_chunks(
        self,
        chunks: Sequence[T],
        kernel: Callable[[T], R],
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> list[R]:
        """Run ``kernel`` once per pre-computed chunk (e.g. balanced bins)."""
        return self._execute(
            [lambda chunk=chunk: kernel(chunk) for chunk in chunks],
            timeout=timeout,
            retry=retry,
        )

    def run_tasks(
        self,
        tasks: Sequence[Callable[[], R]],
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> list[R]:
        """Run independent zero-argument tasks, returning results in order."""
        return self._execute(list(tasks), timeout=timeout, retry=retry)

    # ------------------------------------------------------------------
    # Execution core
    # ------------------------------------------------------------------

    def _execute(
        self,
        tasks: list[Callable[[], R]],
        timeout: float | None,
        retry: RetryPolicy | None,
    ) -> list[R]:
        if self._closed:
            raise PoolClosedError(self.workers)
        self.stats.record_call()
        policy = retry if retry is not None else self.retry_policy
        run_parallel = (
            self._executor is not None
            and len(tasks) > 1
            and not self.stats.degraded
        )
        if not run_parallel:
            if self.stats.degraded and self._executor is not None and len(tasks) > 1:
                self.stats.record_serial_fallback()
            return self._run_inline(tasks, timeout, policy)
        try:
            results = self._run_parallel(tasks, timeout, policy)
        except WorkerTimeoutError:
            # A deadline expiry is the caller's kernel being slow, not
            # evidence the parallel substrate is unhealthy.
            raise
        except Exception:
            self._note_parallel_failure()
            raise
        self._failure_streak = 0
        return results

    def _run_inline(
        self,
        tasks: list[Callable[[], R]],
        timeout: float | None,
        policy: RetryPolicy | None,
    ) -> list[R]:
        # Inline execution cannot preempt a running kernel, but it still
        # honours the deadline between tasks so a multi-part call cannot
        # overrun it unboundedly.
        deadline = None if timeout is None else time.monotonic() + timeout
        results: list[R] = []
        for index, task in enumerate(tasks):
            if deadline is not None and time.monotonic() > deadline:
                self.stats.record_timeout(cancelled=0)
                raise WorkerTimeoutError(timeout, pending=len(tasks) - index, cancelled=0)
            with trace("pool.kernel", partition=index, inline=True):
                kernel_dispatch()
                if policy is None:
                    results.append(task())
                else:
                    results.append(
                        run_with_retry(task, policy, on_retry=self.stats.record_retry)
                    )
        if _tracing_enabled():
            _metrics_registry().counter("pool.dispatches_total").inc(len(tasks))
        return results

    def _run_parallel(
        self,
        tasks: list[Callable[[], R]],
        timeout: float | None,
        policy: RetryPolicy | None,
    ) -> list[R]:
        # Worker kernels run on pool threads, whose span stacks are empty;
        # capture the submitting thread's open span so each per-worker
        # child span nests under the operation that dispatched it.
        parent = current_span_id()

        def dispatch(task: Callable[[], R], index: int) -> R:
            def attempt() -> R:
                fault_point("parallel.kernel")
                kernel_dispatch()
                return task()

            with trace("pool.kernel", _parent=parent, partition=index):
                if policy is None:
                    return attempt()
                return run_with_retry(
                    attempt, policy, on_retry=self.stats.record_retry
                )

        assert self._executor is not None
        if _tracing_enabled():
            reg = _metrics_registry()
            reg.counter("pool.dispatches_total").inc(len(tasks))
            reg.gauge("pool.queue_depth").add(len(tasks))
        try:
            futures: list[Future] = [
                self._executor.submit(dispatch, task, index)
                for index, task in enumerate(tasks)
            ]
            done, not_done = wait(futures, timeout=timeout, return_when=FIRST_EXCEPTION)
            failed = next(
                (f for f in futures if f in done and f.exception() is not None), None
            )
            if failed is not None:
                cancelled = sum(1 for future in not_done if future.cancel())
                self.stats.record_failure(cancelled=cancelled)
                # Let still-running siblings drain so their writes cannot race
                # the caller's error handling.
                wait(futures)
                raise failed.exception()
            if not_done:
                cancelled = sum(1 for future in not_done if future.cancel())
                self.stats.record_timeout(cancelled=cancelled)
                assert timeout is not None
                raise WorkerTimeoutError(
                    timeout, pending=len(not_done), cancelled=cancelled
                )
            return [future.result() for future in futures]
        finally:
            if _tracing_enabled():
                _metrics_registry().gauge("pool.queue_depth").add(-len(tasks))

    def _note_parallel_failure(self) -> None:
        if self.degrade_after is None:
            return
        self._failure_streak += 1
        if self._failure_streak >= self.degrade_after and not self.stats.degraded:
            self.stats.mark_degraded()


_SERIAL_POOL: WorkerPool | None = None
_SERIAL_POOL_LOCK = threading.Lock()


def serial_pool() -> WorkerPool:
    """A shared single-worker pool for callers that want inline execution.

    Construction is lock-guarded so two threads racing the first call
    cannot build two pools; the shared instance is never closed.
    """
    global _SERIAL_POOL
    if _SERIAL_POOL is None:
        with _SERIAL_POOL_LOCK:
            if _SERIAL_POOL is None:
                _SERIAL_POOL = WorkerPool(1)
    return _SERIAL_POOL
