"""Worker pool standing in for Ringo's OpenMP parallel loops.

Ringo parallelises "critical loops in the code for full utilization of our
target multi-core platforms" (§2.5). In this reproduction those loops are
expressed as a kernel applied to disjoint range partitions, run either
serially or on a thread pool. Threads speed the numpy-bound kernels (which
release the GIL) and faithfully exercise the concurrency of the
paper's concurrent containers for the pure-Python ones.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.parallel.partition import split_range
from repro.util.validation import check_positive

R = TypeVar("R")
T = TypeVar("T")

_DEFAULT_WORKERS_ENV = "REPRO_WORKERS"


def effective_worker_count(workers: int | None = None) -> int:
    """Resolve a worker count.

    ``None`` means "use the machine": the ``REPRO_WORKERS`` environment
    variable if set, otherwise the CPU count. The result is always >= 1.
    """
    if workers is not None:
        check_positive(workers, "workers")
        return workers
    env = os.environ.get(_DEFAULT_WORKERS_ENV)
    if env is not None:
        value = int(env)
        check_positive(value, "REPRO_WORKERS")
        return value
    return os.cpu_count() or 1


class WorkerPool:
    """Applies kernels over range partitions, serially or with threads.

    A pool with one worker runs everything inline on the calling thread,
    which keeps single-threaded benchmarks (paper Table 6) free of pool
    overhead and makes ``WorkerPool(1)`` the deterministic default for tests.

    >>> pool = WorkerPool(2)
    >>> pool.map_range(10, lambda lo, hi: sum(range(lo, hi)))
    [10, 35]
    >>> pool.close()
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = effective_worker_count(workers)
        self._executor: ThreadPoolExecutor | None = None
        if self.workers > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-worker"
            )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the underlying thread pool, if any."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def map_range(self, total: int, kernel: Callable[[int, int], R]) -> list[R]:
        """Run ``kernel(lo, hi)`` over a partition of ``range(total)``.

        Returns per-partition results in partition order, so a caller can
        combine them deterministically (e.g. summing per-partition triangle
        counts) regardless of completion order.
        """
        spans = split_range(total, self.workers)
        if self._executor is None or len(spans) <= 1:
            return [kernel(lo, hi) for lo, hi in spans]
        futures = [self._executor.submit(kernel, lo, hi) for lo, hi in spans]
        return [future.result() for future in futures]

    def map_chunks(self, chunks: Sequence[T], kernel: Callable[[T], R]) -> list[R]:
        """Run ``kernel`` once per pre-computed chunk (e.g. balanced bins)."""
        if self._executor is None or len(chunks) <= 1:
            return [kernel(chunk) for chunk in chunks]
        futures = [self._executor.submit(kernel, chunk) for chunk in chunks]
        return [future.result() for future in futures]

    def run_tasks(self, tasks: Sequence[Callable[[], R]]) -> list[R]:
        """Run independent zero-argument tasks, returning results in order."""
        if self._executor is None or len(tasks) <= 1:
            return [task() for task in tasks]
        futures = [self._executor.submit(task) for task in tasks]
        return [future.result() for future in futures]


_SERIAL_POOL: WorkerPool | None = None


def serial_pool() -> WorkerPool:
    """A shared single-worker pool for callers that want inline execution."""
    global _SERIAL_POOL
    if _SERIAL_POOL is None:
        _SERIAL_POOL = WorkerPool(1)
    return _SERIAL_POOL
