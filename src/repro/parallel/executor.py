"""Worker pool standing in for Ringo's OpenMP parallel loops.

Ringo parallelises "critical loops in the code for full utilization of our
target multi-core platforms" (§2.5). In this reproduction those loops are
expressed as a kernel applied to disjoint range partitions, run either
serially or on a thread pool. Threads speed the numpy-bound kernels (which
release the GIL) and faithfully exercise the concurrency of the
paper's concurrent containers for the pure-Python ones.

Unlike an OpenMP loop inside a short-lived process, this pool lives for
the whole interactive session, so it carries the execution semantics a
wedged or failing kernel needs:

* **deadlines** — every mapping call takes ``timeout=`` seconds; on
  expiry outstanding partition futures are cancelled and
  :class:`WorkerTimeoutError` is raised.
* **first-error cancellation** — when one partition fails, pending
  sibling partitions are cancelled instead of being joined in
  submission order.
* **retries** — kernels raising :class:`TransientError` are re-attempted
  under the pool's :class:`RetryPolicy` (if one is configured).
* **graceful degradation** — after ``degrade_after`` consecutive failed
  parallel calls the pool downgrades itself to serial inline execution
  and records the downgrade in :attr:`WorkerPool.stats`.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_EXCEPTION, Future, ThreadPoolExecutor, wait
from typing import Callable, Sequence, TypeVar

from repro.analysis.hooks import kernel_dispatch
from repro.exceptions import (
    ExecutionError,
    PoolClosedError,
    RingoError,
    WorkerTimeoutError,
)
from repro.faults import fault_point
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.spans import current_span_id
from repro.obs.spans import enabled as _tracing_enabled
from repro.obs.spans import event as _obs_event
from repro.obs.spans import trace
from repro.parallel.partition import split_range
from repro.parallel.resilience import PoolStats, RetryPolicy, run_with_retry
from repro.util.validation import check_positive

R = TypeVar("R")
T = TypeVar("T")

_DEFAULT_WORKERS_ENV = "REPRO_WORKERS"
_BACKEND_ENV = "REPRO_BACKEND"
_PROC_THRESHOLD_ENV = "REPRO_PROC_THRESHOLD"

BACKENDS = ("auto", "threads", "processes")

# Static crossover seed: below this many edges the dispatch overhead of
# the process backend (descriptor pickling, IPC, result unpickling)
# usually exceeds the kernel itself. Refined online by
# :class:`AdaptiveCrossover` from observed per-partition kernel costs.
_DEFAULT_PROC_THRESHOLD = 150_000


def machine_cpu_count() -> int:
    """CPUs actually usable by this process, not just present.

    Prefers ``os.process_cpu_count`` (3.13+), then the scheduler
    affinity mask — the number that matters in cgroup-pinned CI
    containers — then ``os.cpu_count()``. Always >= 1.
    """
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:  # pragma: no cover - 3.13+
        return getter() or 1
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def effective_worker_count(workers: int | None = None) -> int:
    """Resolve a worker count.

    ``None`` means "use the machine": the ``REPRO_WORKERS`` environment
    variable if set, otherwise the usable-CPU count. Machine-derived
    defaults (env or autodetect) are capped at
    :func:`machine_cpu_count` so a containerized CI runner cannot
    oversubscribe the process pool; an explicit ``workers`` argument is
    taken verbatim (callers asking for more threads than cores — e.g.
    latency-hiding IO pools — know what they want). The result is
    always >= 1.
    """
    if workers is not None:
        check_positive(workers, "workers")
        return workers
    env = os.environ.get(_DEFAULT_WORKERS_ENV)
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            raise RingoError(
                f"{_DEFAULT_WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
        check_positive(value, _DEFAULT_WORKERS_ENV)
        return min(value, machine_cpu_count())
    return machine_cpu_count()


def resolve_backend(name: "str | None" = None) -> str:
    """Normalise a backend selector (argument wins, then env, then auto).

    >>> resolve_backend("threads")
    'threads'
    """
    from_env = name is None
    value = name if name is not None else os.environ.get(_BACKEND_ENV)
    if value is None or not str(value).strip():
        return "auto"
    value = str(value).strip().lower()
    if value not in BACKENDS:
        source = f"{_BACKEND_ENV}=" if from_env else ""
        raise RingoError(
            f"unknown parallel backend {source}{value!r}; expected one of "
            f"{', '.join(BACKENDS)}"
        )
    return value


class WorkerPool:
    """Applies kernels over range partitions, serially or with threads.

    A pool with one worker runs everything inline on the calling thread,
    which keeps single-threaded benchmarks (paper Table 6) free of pool
    overhead and makes ``WorkerPool(1)`` the deterministic default for tests.

    ``retry_policy`` arms transparent re-attempts of kernels that raise
    :class:`TransientError`; ``degrade_after`` sets how many consecutive
    failed parallel calls flip the pool into serial-only mode (``None``
    disables degradation).

    >>> pool = WorkerPool(2)
    >>> pool.map_range(10, lambda lo, hi: sum(range(lo, hi)))
    [10, 35]
    >>> pool.close()
    """

    def __init__(
        self,
        workers: int | None = None,
        retry_policy: RetryPolicy | None = None,
        degrade_after: int | None = 3,
    ) -> None:
        self.workers = effective_worker_count(workers)
        self.retry_policy = retry_policy
        if degrade_after is not None:
            check_positive(degrade_after, "degrade_after")
        self.degrade_after = degrade_after
        self.stats = PoolStats()
        self._closed = False
        self._failure_streak = 0
        self._executor: ThreadPoolExecutor | None = None
        if self.workers > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-worker"
            )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def degraded(self) -> bool:
        """Whether repeated parallel failures downgraded the pool to serial."""
        return self.stats.degraded

    def close(self) -> None:
        """Shut down the underlying thread pool, if any (idempotent)."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Mapping API
    # ------------------------------------------------------------------

    def map_range(
        self,
        total: int,
        kernel: Callable[[int, int], R],
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> list[R]:
        """Run ``kernel(lo, hi)`` over a partition of ``range(total)``.

        Returns per-partition results in partition order, so a caller can
        combine them deterministically (e.g. summing per-partition triangle
        counts) regardless of completion order.
        """
        spans = split_range(total, self.workers)
        return self._execute(
            [lambda lo=lo, hi=hi: kernel(lo, hi) for lo, hi in spans],
            timeout=timeout,
            retry=retry,
        )

    def map_chunks(
        self,
        chunks: Sequence[T],
        kernel: Callable[[T], R],
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> list[R]:
        """Run ``kernel`` once per pre-computed chunk (e.g. balanced bins)."""
        return self._execute(
            [lambda chunk=chunk: kernel(chunk) for chunk in chunks],
            timeout=timeout,
            retry=retry,
        )

    def run_tasks(
        self,
        tasks: Sequence[Callable[[], R]],
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> list[R]:
        """Run independent zero-argument tasks, returning results in order."""
        return self._execute(list(tasks), timeout=timeout, retry=retry)

    # ------------------------------------------------------------------
    # Execution core
    # ------------------------------------------------------------------

    def _execute(
        self,
        tasks: list[Callable[[], R]],
        timeout: float | None,
        retry: RetryPolicy | None,
    ) -> list[R]:
        if self._closed:
            raise PoolClosedError(self.workers)
        self.stats.record_call()
        policy = retry if retry is not None else self.retry_policy
        run_parallel = (
            self._executor is not None
            and len(tasks) > 1
            and not self.stats.degraded
        )
        if not run_parallel:
            if self.stats.degraded and self._executor is not None and len(tasks) > 1:
                self.stats.record_serial_fallback()
            return self._run_inline(tasks, timeout, policy)
        try:
            results = self._run_parallel(tasks, timeout, policy)
        except WorkerTimeoutError:
            # A deadline expiry is the caller's kernel being slow, not
            # evidence the parallel substrate is unhealthy.
            raise
        except Exception:
            self._note_parallel_failure()
            raise
        self._failure_streak = 0
        return results

    def _run_inline(
        self,
        tasks: list[Callable[[], R]],
        timeout: float | None,
        policy: RetryPolicy | None,
    ) -> list[R]:
        # Inline execution cannot preempt a running kernel, but it still
        # honours the deadline between tasks so a multi-part call cannot
        # overrun it unboundedly.
        deadline = None if timeout is None else time.monotonic() + timeout
        results: list[R] = []
        for index, task in enumerate(tasks):
            if deadline is not None and time.monotonic() > deadline:
                self.stats.record_timeout(cancelled=0)
                raise WorkerTimeoutError(timeout, pending=len(tasks) - index, cancelled=0)
            with trace("pool.kernel", partition=index, inline=True):
                kernel_dispatch()
                if policy is None:
                    results.append(task())
                else:
                    results.append(
                        run_with_retry(task, policy, on_retry=self.stats.record_retry)
                    )
        if _tracing_enabled():
            _metrics_registry().counter("pool.dispatches_total").inc(len(tasks))
        return results

    def _run_parallel(
        self,
        tasks: list[Callable[[], R]],
        timeout: float | None,
        policy: RetryPolicy | None,
    ) -> list[R]:
        # Worker kernels run on pool threads, whose span stacks are empty;
        # capture the submitting thread's open span so each per-worker
        # child span nests under the operation that dispatched it.
        parent = current_span_id()

        def dispatch(task: Callable[[], R], index: int) -> R:
            def attempt() -> R:
                fault_point("parallel.kernel")
                kernel_dispatch()
                return task()

            with trace("pool.kernel", _parent=parent, partition=index):
                if policy is None:
                    return attempt()
                return run_with_retry(
                    attempt, policy, on_retry=self.stats.record_retry
                )

        assert self._executor is not None
        if _tracing_enabled():
            reg = _metrics_registry()
            reg.counter("pool.dispatches_total").inc(len(tasks))
            reg.gauge("pool.queue_depth").add(len(tasks))
        try:
            futures: list[Future] = [
                self._executor.submit(dispatch, task, index)
                for index, task in enumerate(tasks)
            ]
            done, not_done = wait(futures, timeout=timeout, return_when=FIRST_EXCEPTION)
            failed = next(
                (f for f in futures if f in done and f.exception() is not None), None
            )
            if failed is not None:
                cancelled = sum(1 for future in not_done if future.cancel())
                self.stats.record_failure(cancelled=cancelled)
                # Let still-running siblings drain so their writes cannot race
                # the caller's error handling.
                wait(futures)
                raise failed.exception()
            if not_done:
                cancelled = sum(1 for future in not_done if future.cancel())
                self.stats.record_timeout(cancelled=cancelled)
                assert timeout is not None
                raise WorkerTimeoutError(
                    timeout, pending=len(not_done), cancelled=cancelled
                )
            return [future.result() for future in futures]
        finally:
            if _tracing_enabled():
                _metrics_registry().gauge("pool.queue_depth").add(-len(tasks))

    def _note_parallel_failure(self) -> None:
        if self.degrade_after is None:
            return
        self._failure_streak += 1
        if self._failure_streak >= self.degrade_after and not self.stats.degraded:
            self.stats.mark_degraded()


_SERIAL_POOL: WorkerPool | None = None
_SERIAL_POOL_LOCK = threading.Lock()


def serial_pool() -> WorkerPool:
    """A shared single-worker pool for callers that want inline execution.

    Construction is lock-guarded so two threads racing the first call
    cannot build two pools; the shared instance is never closed.
    """
    global _SERIAL_POOL
    if _SERIAL_POOL is None:
        with _SERIAL_POOL_LOCK:
            if _SERIAL_POOL is None:
                _SERIAL_POOL = WorkerPool(1)
    return _SERIAL_POOL


class AdaptiveCrossover:
    """Online threads-vs-processes crossover model.

    Seeded with a static edge-count threshold (``REPRO_PROC_THRESHOLD``
    or :data:`_DEFAULT_PROC_THRESHOLD`) and refined from observed
    dispatches: the thread backend's throughput ``Rt`` (edges/s of wall
    time), the process backend's parallel kernel throughput ``Rp``
    (edges/s of summed worker kernel time divided by workers), and the
    process backend's fixed per-dispatch overhead ``O`` (wall minus the
    ideal parallel kernel time). The learned crossover is the edge count
    where ``E/Rt == O + E/Rp`` — below it threads win on overhead,
    above it processes win on parallelism. All rates are exponential
    moving averages, so a drifting workload re-learns its threshold.
    """

    _EMA = 0.3
    _MIN_THRESHOLD = 1_000
    _MAX_THRESHOLD = 100_000_000

    def __init__(self, threshold: "int | None" = None) -> None:
        if threshold is None:
            env = os.environ.get(_PROC_THRESHOLD_ENV)
            threshold = int(env) if env else _DEFAULT_PROC_THRESHOLD
        check_positive(threshold, "threshold")
        self.static_threshold = threshold
        self._lock = threading.Lock()
        self._thread_rate: "float | None" = None
        self._proc_rate: "float | None" = None
        self._proc_overhead: "float | None" = None
        self._observations = 0

    def _blend(self, current: "float | None", sample: float) -> float:
        if current is None:
            return sample
        return current + self._EMA * (sample - current)

    def observe(
        self,
        backend: str,
        edges: int,
        wall_seconds: float,
        kernel_seconds: float,
        workers: int,
    ) -> None:
        """Fold one completed dispatch into the model."""
        if edges <= 0 or wall_seconds <= 0:
            return
        with self._lock:
            self._observations += 1
            if backend == "threads":
                self._thread_rate = self._blend(
                    self._thread_rate, edges / wall_seconds
                )
            else:
                ideal = max(kernel_seconds / max(workers, 1), 1e-9)
                self._proc_rate = self._blend(self._proc_rate, edges / ideal)
                self._proc_overhead = self._blend(
                    self._proc_overhead, max(wall_seconds - ideal, 0.0)
                )
        if _tracing_enabled():
            _metrics_registry().histogram(
                f"parallel.{backend}.edges_per_second"
            ).observe(edges / wall_seconds)

    def threshold(self) -> int:
        """Current crossover edge count (learned when possible)."""
        with self._lock:
            thread_rate = self._thread_rate
            proc_rate = self._proc_rate
            overhead = self._proc_overhead
        if thread_rate is None or proc_rate is None or overhead is None:
            return self.static_threshold
        gain = 1.0 / thread_rate - 1.0 / proc_rate
        if gain <= 0:
            # Processes have shown no per-edge advantage (e.g. a
            # single-core host): never prefer them automatically.
            return self._MAX_THRESHOLD
        learned = int(overhead / gain)
        return max(self._MIN_THRESHOLD, min(learned, self._MAX_THRESHOLD))

    def choose(self, edges: int) -> str:
        """Backend for a kernel over ``edges`` edges (auto mode)."""
        return "processes" if edges >= self.threshold() else "threads"

    def snapshot(self) -> dict:
        """Model state for ``Ringo.health()["parallel"]["crossover"]``."""
        with self._lock:
            state = {
                "static_threshold": self.static_threshold,
                "thread_rate": self._thread_rate,
                "process_rate": self._proc_rate,
                "process_overhead_seconds": self._proc_overhead,
                "observations": self._observations,
            }
        state["effective_threshold"] = self.threshold()
        return state


class KernelDispatcher:
    """Routes partitioned kernels to the thread or process backend.

    One dispatcher serves the process (mirroring the snapshot cache and
    metrics registry: one interactive session per process is the
    paper's deployment model); :func:`kernel_dispatcher` returns it and
    ``Ringo(backend=...)`` configures it. Kernels must be module-level
    functions ``fn(arrays, lo, hi, *extra)`` returning a per-partition
    result merged by the caller — lint rule R007 rejects closures at
    dispatch sites, because the process backend pickles ``fn`` by
    reference.

    Backend choice per call: an explicit ``backend=`` argument wins,
    then the configured default (``Ringo(backend=)``/``REPRO_BACKEND``),
    with ``auto`` delegating to the :class:`AdaptiveCrossover`. The
    process path degrades to threads — never to an error — when the
    export fails, the dispatch faults, or a worker crashes; deadline
    expiries and genuine kernel errors propagate unchanged.
    """

    def __init__(
        self,
        backend: "str | None" = None,
        process_workers: "int | None" = None,
        threshold: "int | None" = None,
        retry_policy=None,
    ) -> None:
        self._lock = threading.Lock()
        self._backend = resolve_backend(backend)
        self._process_workers = process_workers
        self._retry_policy = retry_policy
        self.crossover = AdaptiveCrossover(threshold)
        self._procs = None
        self._decisions = {"threads": 0, "processes": 0}
        self._fallbacks = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    @property
    def backend(self) -> str:
        """The configured default backend selector."""
        return self._backend

    def configure(
        self,
        backend: "str | None" = None,
        process_workers: "int | None | str" = "unchanged",
        threshold: "int | None" = None,
        retry_policy="unchanged",
    ) -> None:
        """Adjust the dispatcher in place (``Ringo.__init__`` calls this).

        Changing ``process_workers`` retires any live process pool so
        the next process dispatch builds one at the new width.
        """
        with self._lock:
            if backend is not None:
                self._backend = resolve_backend(backend)
            if process_workers != "unchanged":
                self._process_workers = process_workers
                if self._procs is not None:
                    self._procs.close()
                    self._procs = None
            if retry_policy != "unchanged":
                self._retry_policy = retry_policy
                if self._procs is not None:
                    self._procs.retry_policy = retry_policy
        if threshold is not None:
            check_positive(threshold, "threshold")
            self.crossover.static_threshold = threshold

    def process_pool(self):
        """The lazily-built :class:`~repro.parallel.procpool.ProcessPool`."""
        with self._lock:
            if self._procs is None:
                from repro.parallel.procpool import ProcessPool

                self._procs = ProcessPool(
                    workers=self._process_workers,
                    retry_policy=self._retry_policy,
                )
            return self._procs

    def shutdown(self) -> None:
        """Close the process pool (a later dispatch rebuilds it)."""
        with self._lock:
            if self._procs is not None:
                self._procs.close()
                self._procs = None

    # ------------------------------------------------------------------
    # Backend choice
    # ------------------------------------------------------------------

    def decide(self, edges: int, backend: "str | None" = None) -> str:
        """The backend a kernel over ``edges`` edges would run on.

        Exposed so algorithms can keep a cheaper serial formulation
        when the answer is ``threads`` anyway (e.g. PageRank's
        full-vector ``bincount`` beats partitioned dispatch on one
        worker).
        """
        selected = resolve_backend(backend) if backend is not None else self._backend
        if selected == "threads":
            return "threads"
        procs_usable = True
        with self._lock:
            if self._procs is not None and (
                self._procs.degraded or self._procs.closed
            ):
                procs_usable = False
        if not procs_usable:
            return "threads"
        if selected == "processes":
            return "processes"
        # Auto: a one-worker process pool can never beat threads.
        if effective_worker_count(self._process_workers) < 2:
            return "threads"
        return self.crossover.choose(edges)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def run_kernel(
        self,
        csr,
        fn,
        arrays,
        total: int,
        extra: tuple = (),
        edges: "int | None" = None,
        timeout: "float | None" = None,
        retry=None,
        pool: "WorkerPool | None" = None,
        backend: "str | None" = None,
    ) -> list:
        """Run ``fn(arrays_dict, lo, hi, *extra)`` over spans of ``total``.

        ``arrays`` names entries of
        :data:`~repro.parallel.procpool.ARRAY_PROVIDERS` to materialise
        from ``csr`` — the thread path passes them in-process, the
        process path maps the snapshot's shared-memory export. Returns
        per-partition results in span order.
        """
        from repro.parallel.procpool import build_arrays

        edge_count = edges if edges is not None else csr.num_edges
        choice = self.decide(edge_count, backend)
        if choice == "processes":
            outcome = self._run_processes(
                csr, fn, arrays, total, extra, edge_count, timeout, retry
            )
            if outcome is not None:
                return outcome
            self._note_fallback()
        with self._lock:
            self._decisions["threads"] += 1
        use_pool = pool if pool is not None else serial_pool()
        arrays_dict = build_arrays(csr, arrays)
        spans = split_range(total, use_pool.workers)
        start = time.perf_counter()
        results = use_pool.map_chunks(
            spans,
            lambda span: fn(arrays_dict, span[0], span[1], *extra),
            timeout=timeout,
            retry=retry,
        )
        self.crossover.observe(
            "threads",
            edge_count,
            time.perf_counter() - start,
            0.0,
            use_pool.workers,
        )
        return results

    def _run_processes(
        self, csr, fn, arrays, total, extra, edge_count, timeout, retry
    ) -> "list | None":
        """Process-backend attempt; ``None`` means "degrade to threads"."""
        from repro.exceptions import (
            InjectedFaultError,
            WorkerCrashedError,
        )
        from repro.parallel.procpool import build_arrays
        from repro.parallel.shm import shm_registry

        procs = self.process_pool()
        registry = shm_registry()
        try:
            export, descriptor = registry.lease(csr, build_arrays(csr, arrays))
        except ExecutionError as error:
            # A failed export (including an injected parallel.shm.export
            # fault) costs one fallback, never a user-visible error. The
            # reason is recorded so a fleet of silent degrades still
            # shows up in the span log.
            if _tracing_enabled():
                _metrics_registry().counter("pool.shm_degrades_total").inc()
                _obs_event("pool.degrade", backend="processes", error=str(error))
            return None
        try:
            spans = split_range(total, procs.workers)
            start = time.perf_counter()
            results, kernel_seconds = procs.run(
                fn, descriptor, spans, extra=extra, timeout=timeout, retry=retry
            )
        except (WorkerCrashedError, InjectedFaultError):
            # Crashed worker or injected parallel.proc.dispatch fault:
            # both fire before any partial results exist, so the thread
            # rerun is clean. Timeouts and real kernel errors propagate.
            return None
        finally:
            registry.release(export)
        with self._lock:
            self._decisions["processes"] += 1
        self.crossover.observe(
            "processes",
            edge_count,
            time.perf_counter() - start,
            kernel_seconds,
            procs.workers,
        )
        return results

    def _note_fallback(self) -> None:
        with self._lock:
            self._fallbacks += 1
        if _tracing_enabled():
            _metrics_registry().counter("parallel.backend.fallbacks_total").inc()

    def snapshot(self) -> dict:
        """Dispatcher state for ``Ringo.health()["parallel"]``."""
        from repro.parallel.shm import shm_registry

        with self._lock:
            procs = self._procs
            state = {
                "backend": self._backend,
                "decisions": dict(self._decisions),
                "fallbacks": self._fallbacks,
            }
        state["crossover"] = self.crossover.snapshot()
        state["process_pool"] = procs.snapshot() if procs is not None else None
        state["shm"] = shm_registry().stats()
        return state


_DISPATCHER: "KernelDispatcher | None" = None
_DISPATCHER_LOCK = threading.Lock()


def kernel_dispatcher() -> KernelDispatcher:
    """The process-wide kernel dispatcher (lazily built, lock-guarded)."""
    global _DISPATCHER
    if _DISPATCHER is None:
        with _DISPATCHER_LOCK:
            if _DISPATCHER is None:
                _DISPATCHER = KernelDispatcher()
    return _DISPATCHER
