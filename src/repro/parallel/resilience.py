"""Retry, deadline, and degradation primitives for the worker pool.

The SNAP/OpenMP back-end the paper builds on gets fault containment for
free from process isolation; a long-lived interactive Python session
does not. This module supplies the policy objects the hardened
:class:`~repro.parallel.executor.WorkerPool` executes under:

* :class:`RetryPolicy` — exponential backoff with deterministic jitter,
  applied to kernels that raise :class:`TransientError`.
* :func:`run_with_retry` — the attempt loop itself, usable standalone.
* :class:`PoolStats` — thread-safe counters the pool publishes through
  ``Ringo.health()``: retries, timeouts, cancellations, downgrades.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.exceptions import RetryExhaustedError, TransientError
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.spans import enabled as _tracing_enabled
from repro.obs.spans import event as _obs_event
from repro.util.validation import check_positive

R = TypeVar("R")


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) to re-attempt transient kernel failures.

    Attempt ``n`` (1-based) sleeps ``base_delay * 2**(n-1)`` scaled by a
    deterministic jitter factor in ``[1, 1 + jitter]`` and capped at
    ``max_delay``. Only exceptions in ``retryable`` are re-attempted;
    anything else propagates on the first throw.

    >>> RetryPolicy(max_attempts=3).delay(1) >= 0.0
    True
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: int = 0
    retryable: tuple = (TransientError,)

    def __post_init__(self) -> None:
        check_positive(self.max_attempts, "max_attempts")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delay(self, attempt: int) -> float:
        """Backoff before re-attempting after failure number ``attempt``."""
        base = self.base_delay * (2.0 ** (attempt - 1))
        # Deterministic jitter: a hash of (seed, attempt) rather than a
        # global RNG, so concurrent retries cannot perturb each other.
        rng = random.Random(self.seed * 2654435761 + attempt)
        return min(base * (1.0 + self.jitter * rng.random()), self.max_delay)

    def schedule(self) -> tuple[float, ...]:
        """Every backoff this policy would sleep, in attempt order.

        One delay per *re*-attempt (``max_attempts - 1`` entries), fully
        determined by the policy's fields — callers (and tests) can
        inspect the whole jittered schedule without running anything.
        """
        return tuple(self.delay(n) for n in range(1, self.max_attempts))


def run_with_retry(
    task: Callable[[], R],
    policy: RetryPolicy,
    on_retry: "Callable[[int, BaseException], None] | None" = None,
    sleep: Callable[[float], None] = time.sleep,
    metric_prefix: str = "pool",
) -> R:
    """Run ``task`` under ``policy``; raise :class:`RetryExhaustedError`
    (chained to the last failure) once attempts run out.

    ``on_retry(attempt, error)`` is invoked after each failed retryable
    attempt — the pool uses it to count retries for ``health()``.

    The attempt loop is shared policy, not pool policy: the worker pool
    runs kernels under it and the session service's dispatcher runs
    whole requests under it. ``metric_prefix`` keeps their telemetry
    apart (``pool.retries_total`` vs ``service.retries_total``).
    """
    last_error: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return task()
        except policy.retryable as error:
            last_error = error
            if _tracing_enabled():
                _metrics_registry().counter(f"{metric_prefix}.retries_total").inc()
                _obs_event(
                    f"{metric_prefix}.retry",
                    attempt=attempt,
                    error=type(error).__name__,
                )
            if on_retry is not None:
                on_retry(attempt, error)
            if attempt < policy.max_attempts:
                sleep(policy.delay(attempt))
    assert last_error is not None
    raise RetryExhaustedError(policy.max_attempts, last_error) from last_error


@dataclass
class PoolStats:
    """Counters a :class:`WorkerPool` accumulates across its lifetime."""

    calls: int = 0
    retries: int = 0
    timeouts: int = 0
    cancelled_partitions: int = 0
    failures: int = 0
    serial_fallback_calls: int = 0
    degraded: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_retry(self, attempt: int, error: BaseException) -> None:
        with self._lock:
            self.retries += 1

    def record_call(self) -> None:
        with self._lock:
            self.calls += 1

    def record_timeout(self, cancelled: int) -> None:
        with self._lock:
            self.timeouts += 1
            self.cancelled_partitions += cancelled

    def record_failure(self, cancelled: int) -> None:
        with self._lock:
            self.failures += 1
            self.cancelled_partitions += cancelled

    def record_serial_fallback(self) -> None:
        with self._lock:
            self.serial_fallback_calls += 1

    def mark_degraded(self) -> None:
        with self._lock:
            self.degraded = True

    def snapshot(self) -> dict[str, object]:
        """A plain-dict copy for ``health()`` reporting."""
        with self._lock:
            return {
                "calls": self.calls,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "cancelled_partitions": self.cancelled_partitions,
                "failures": self.failures,
                "serial_fallback_calls": self.serial_fallback_calls,
                "degraded": self.degraded,
            }
