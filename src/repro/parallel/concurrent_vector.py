"""Append-only vector with atomic slot claiming (paper §2.5).

Ringo: "Concurrent insertions to a vector are implemented by using an
atomic increment instruction to claim an index of a cell to which a new
value is inserted." :class:`ConcurrentVector` reproduces exactly that
protocol — a writer first claims an index with fetch-and-add, then writes
the cell — on a numpy backing array with amortised doubling.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.analysis.hooks import container_access
from repro.faults import fault_point
from repro.parallel.atomics import AtomicCounter
from repro.util.validation import check_positive


class ConcurrentVector:
    """A thread-safe, append-only int64 vector.

    >>> vec = ConcurrentVector()
    >>> vec.append(3)
    0
    >>> vec.append(1)
    1
    >>> vec.to_array().tolist()
    [3, 1]
    """

    def __init__(self, capacity: int = 16) -> None:
        check_positive(capacity, "capacity")
        self._data = np.zeros(capacity, dtype=np.int64)
        self._claims = AtomicCounter()
        self._grow_lock = threading.Lock()
        self._committed = AtomicCounter()

    def __len__(self) -> int:
        return self._committed.value

    def append(self, value: int) -> int:
        """Append ``value``; return the index its cell was claimed at."""
        fault_point("vector.append")
        # The claim counter is the synchronisation device: fetch-and-add
        # hands each writer a disjoint cell, the paper's atomic-increment
        # protocol. Report it as the access's guard so the lockset
        # detector models that protocol instead of flagging it.
        container_access(self, "ConcurrentVector", True, (self._claims,))
        index = self._claims.fetch_add(1)
        self._ensure_capacity(index + 1)
        # A concurrent grow may snapshot the backing array between our claim
        # and our write; re-check against the live array until the write
        # lands in it.
        while True:
            data = self._data
            data[index] = value
            if self._data is data or self._data[index] == value:
                break
        self._committed.fetch_add(1)
        return index

    def extend(self, values: np.ndarray) -> tuple[int, int]:
        """Append a block of values; return the claimed ``(start, stop)`` span.

        Claiming the whole block with one fetch-and-add is the bulk variant
        Ringo uses when a worker inserts a batch of adjacency entries.
        """
        values = np.asarray(values, dtype=np.int64)
        count = len(values)
        if count == 0:
            start = self._claims.value
            return start, start
        container_access(self, "ConcurrentVector", True, (self._claims,))
        start = self._claims.fetch_add(count)
        self._ensure_capacity(start + count)
        while True:
            data = self._data
            data[start:start + count] = values
            if self._data is data or np.array_equal(self._data[start:start + count], values):
                break
        self._committed.fetch_add(count)
        return start, start + count

    def to_array(self) -> np.ndarray:
        """Copy of the committed contents, in claim order."""
        length = self._claims.value
        return self._data[:length].copy()

    def sort(self) -> None:
        """In-place ascending sort of the committed contents.

        Graph construction sorts each adjacency vector after the parallel
        fill phase (§2.4); this is that step.
        """
        length = self._claims.value
        self._data[:length].sort()

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= len(self._data):
            return
        with self._grow_lock:
            if needed <= len(self._data):
                return
            capacity = len(self._data)
            while capacity < needed:
                capacity *= 2
            grown = np.zeros(capacity, dtype=np.int64)
            grown[:len(self._data)] = self._data
            self._data = grown
