"""Contention-free work partitioning.

Ringo's graph→table conversion "partitions the graph's nodes or edges
among worker threads, pre-allocating the output table, and assigning a
corresponding partition in the output table to each thread" (§2.4). The
helpers here compute those disjoint partitions.
"""

from __future__ import annotations

from typing import Iterator, Sequence, TypeVar

import numpy as np

from repro.util.validation import check_positive

T = TypeVar("T")


def split_range(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``parts`` contiguous half-open spans.

    Spans differ in length by at most one element, cover the range exactly
    once, and are returned in order — so each worker can write its span of a
    pre-allocated output without synchronisation.

    >>> split_range(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    >>> split_range(2, 5)
    [(0, 1), (1, 2)]
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    check_positive(parts, "parts")
    parts = min(parts, total) if total else 0
    if parts == 0:
        return []
    base, extra = divmod(total, parts)
    spans = []
    start = 0
    for index in range(parts):
        stop = start + base + (1 if index < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def split_indices(indices: np.ndarray, parts: int) -> list[np.ndarray]:
    """Split an index array into at most ``parts`` contiguous slices.

    The slices are views, not copies, so partitioning a hundred-million-row
    index is free.
    """
    return [indices[start:stop] for start, stop in split_range(len(indices), parts)]


def balanced_chunks(weights: Sequence[float], parts: int) -> list[list[int]]:
    """Assign item indices to ``parts`` bins, balancing total weight.

    Greedy longest-processing-time assignment: items are placed heaviest
    first into the currently lightest bin. Used to balance per-node work in
    triangle counting, where degree skew makes equal-count partitions
    badly unbalanced.

    >>> balanced_chunks([5, 4, 3, 2, 1], 2)
    [[0, 3, 4], [1, 2]]
    """
    check_positive(parts, "parts")
    parts = min(parts, len(weights)) if weights else 0
    if parts == 0:
        return []
    bins: list[list[int]] = [[] for _ in range(parts)]
    loads = [0.0] * parts
    order = sorted(range(len(weights)), key=lambda i: weights[i], reverse=True)
    for item in order:
        lightest = min(range(parts), key=loads.__getitem__)
        bins[lightest].append(item)
        loads[lightest] += weights[item]
    for chunk in bins:
        chunk.sort()
    return bins


def iter_batches(items: Sequence[T], batch_size: int) -> Iterator[Sequence[T]]:
    """Yield consecutive batches of ``items`` of length ``batch_size``.

    The final batch may be shorter. Empty input yields nothing.
    """
    check_positive(batch_size, "batch_size")
    for start in range(0, len(items), batch_size):
        yield items[start:start + batch_size]
