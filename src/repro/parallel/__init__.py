"""Parallel-execution substrate mirroring Ringo's OpenMP layer (paper §2.5).

Ringo parallelises critical loops with OpenMP over an 80-hyperthread
machine and relies on two concurrent containers: an open-addressing hash
table with linear probing and a vector supporting atomic-claim insertion.
This package rebuilds those pieces for Python:

* :class:`WorkerPool` — runs a kernel over range partitions either serially
  or on a thread pool (threads help when the kernel releases the GIL, i.e.
  when it is numpy-bound, exactly the bulk work OpenMP covers in the paper).
* :class:`ProcessPool` + :class:`KernelDispatcher` — the true multi-core
  path: long-lived worker processes mapping zero-copy shared-memory CSR
  exports (:mod:`repro.parallel.shm`), chosen over threads by an adaptive
  edge-count crossover (``Ringo(backend=...)`` / ``REPRO_BACKEND``).
* :func:`split_range` / :func:`split_indices` — contention-free range
  partitioning, the way Ringo assigns graph partitions to worker threads.
* :class:`LinearProbingHashTable` — open addressing + linear probing
  (paper's choice, after Lang et al.).
* :class:`ConcurrentVector` — append via an atomically claimed cell index.
* :class:`AtomicCounter` — the atomic fetch-and-add primitive both rely on.
"""

from repro.parallel.atomics import AtomicCounter
from repro.parallel.concurrent_hash import LinearProbingHashTable
from repro.parallel.concurrent_vector import ConcurrentVector
from repro.parallel.executor import (
    AdaptiveCrossover,
    KernelDispatcher,
    WorkerPool,
    effective_worker_count,
    kernel_dispatcher,
    machine_cpu_count,
    resolve_backend,
)
from repro.parallel.partition import balanced_chunks, split_indices, split_range
from repro.parallel.procpool import ProcessPool
from repro.parallel.resilience import PoolStats, RetryPolicy, run_with_retry
from repro.parallel.shm import ShmRegistry, leaked_segments, shm_registry

__all__ = [
    "AdaptiveCrossover",
    "AtomicCounter",
    "ConcurrentVector",
    "KernelDispatcher",
    "LinearProbingHashTable",
    "PoolStats",
    "ProcessPool",
    "RetryPolicy",
    "ShmRegistry",
    "WorkerPool",
    "balanced_chunks",
    "effective_worker_count",
    "kernel_dispatcher",
    "leaked_segments",
    "machine_cpu_count",
    "resolve_backend",
    "run_with_retry",
    "shm_registry",
    "split_indices",
    "split_range",
]
