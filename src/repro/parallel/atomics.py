"""Atomic primitives used by the concurrent containers.

The paper implements concurrent vector insertion with "an atomic increment
instruction to claim an index of a cell". CPython has no exposed hardware
atomics, so :class:`AtomicCounter` provides the same contract
(``fetch_add`` returns a unique, dense sequence of claims under concurrent
use) with a lock whose critical section is a single integer addition.
"""

from __future__ import annotations

import threading

from repro.analysis.hooks import container_access


class AtomicCounter:
    """A thread-safe counter supporting fetch-and-add.

    >>> counter = AtomicCounter()
    >>> counter.fetch_add(2)
    0
    >>> counter.value
    2
    """

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def fetch_add(self, amount: int = 1) -> int:
        """Atomically add ``amount`` and return the value *before* the add.

        This mirrors the x86 ``lock xadd`` semantics the paper's concurrent
        vector uses to claim insertion slots.
        """
        with self._lock:
            container_access(self, "AtomicCounter.fetch_add", True, (self._lock,))
            before = self._value
            self._value += amount
            return before

    @property
    def value(self) -> int:
        """Current value of the counter."""
        with self._lock:
            return self._value

    def reset(self, value: int = 0) -> None:
        """Set the counter back to ``value``."""
        with self._lock:
            container_access(self, "AtomicCounter.reset", True, (self._lock,))
            self._value = value
