"""Process-pool kernel execution over shared-memory CSR exports.

The thread pool in :mod:`repro.parallel.executor` is the right substrate
for numpy-bound kernels (they release the GIL), but any kernel with real
Python-level work serializes on one core. This module supplies the other
half of the paper's §2.5 story — actual multi-core execution — while
keeping the pool's hardened semantics:

* kernels run in **long-lived worker processes** (one
  ``ProcessPoolExecutor`` reused across dispatches, fork-started where
  available so workers inherit the import state instead of re-importing
  per call);
* CSR inputs arrive via the **zero-copy** shared-memory exports of
  :mod:`repro.parallel.shm` — a dispatch pickles only the segment
  descriptor, the span bounds, and any small per-call extras;
* **deadlines** (:class:`~repro.exceptions.WorkerTimeoutError` on
  expiry, pending partitions cancelled), **first-error cancellation**,
  and **worker-side retries** under the shared picklable
  :class:`~repro.parallel.resilience.RetryPolicy` all match the thread
  pool's contract;
* a dead worker (SIGKILL, OOM) surfaces as
  :class:`~repro.exceptions.WorkerCrashedError`; the pool rebuilds its
  executor and, after ``degrade_after`` consecutive crashes, marks
  itself degraded so the dispatcher stops routing work to processes.

Kernels dispatched here must be **module-level functions** of signature
``fn(arrays, lo, hi, *extra)`` returning a picklable per-partition
result — lint rule R007 enforces exactly this at call sites.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
from concurrent.futures import FIRST_EXCEPTION, wait
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor

from repro.exceptions import (
    ExecutionError,
    PoolClosedError,
    TransientError,
    WorkerCrashedError,
    WorkerTimeoutError,
)
from repro.faults import InjectedFaultError, active_plan, fault_point
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.spans import enabled as _tracing_enabled
from repro.obs.spans import trace
from repro.parallel.resilience import PoolStats, RetryPolicy, run_with_retry
from repro.parallel.shm import attach_arrays

_MP_CONTEXT_ENV = "REPRO_MP_CONTEXT"

# Array name -> builder over a CSRGraph. The dispatcher materialises
# exactly the arrays a kernel declares, so e.g. the forward adjacency is
# only exported for snapshots that actually run the triangle kernel.
ARRAY_PROVIDERS = {
    "node_ids": lambda csr: csr.node_ids,
    "out_indptr": lambda csr: csr.out_indptr,
    "out_indices": lambda csr: csr.out_indices,
    "in_indptr": lambda csr: csr.in_indptr,
    "in_indices": lambda csr: csr.in_indices,
    "out_degrees": lambda csr: csr.out_degrees(),
    "in_degrees": lambda csr: csr.in_degrees(),
    "edge_sources": lambda csr: csr.edge_sources(),
    "forward_indptr": lambda csr: csr.forward_adjacency()[0],
    "forward_indices": lambda csr: csr.forward_adjacency()[1],
    "forward_edge_keys": lambda csr: csr.forward_edge_keys(),
}


def build_arrays(csr, names) -> dict:
    """Materialise the named provider arrays for one CSR snapshot.

    Shared by both backends: the thread path hands the dict straight to
    the kernel, the process path exports it to shared memory — same
    inputs either way, which is what makes threads-vs-processes digest
    equality a testable property.
    """
    try:
        return {name: ARRAY_PROVIDERS[name](csr) for name in names}
    except KeyError as error:
        raise ExecutionError(
            f"unknown kernel array {error.args[0]!r}; known: "
            f"{', '.join(sorted(ARRAY_PROVIDERS))}"
        ) from None


def _safe_exception(error: BaseException) -> BaseException:
    """An exception equivalent to ``error`` that survives pickling.

    Multi-argument exception classes (``InjectedFaultError``,
    ``RetryExhaustedError``…) break the default ``__reduce__`` on the
    way back to the parent, which would poison the whole executor.
    Retryability is preserved so the parent still classifies correctly.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        message = f"{type(error).__name__}: {error}"
        if isinstance(error, TransientError):
            return TransientError(message)
        return ExecutionError(message)


def _warm() -> int:
    """No-op worker task: forces the executor to actually spawn a worker."""
    return os.getpid()


def _proc_worker_run(task: tuple) -> tuple:
    """Worker-process entry point: attach, run (with retries), report.

    ``task`` is ``(fn, descriptor, lo, hi, extra, policy)``. Returns
    ``(result, kernel_seconds, retries)`` so the parent can feed the
    crossover model; failures raise a pickle-safe exception.
    """
    fn, descriptor, lo, hi, extra, policy = task
    retries = [0]

    def count_retry(attempt, error) -> None:
        retries[0] += 1

    try:
        arrays = attach_arrays(descriptor)
        start = time.perf_counter()
        if policy is None:
            result = fn(arrays, lo, hi, *extra)
        else:
            result = run_with_retry(
                lambda: fn(arrays, lo, hi, *extra), policy, on_retry=count_retry
            )
        return (result, time.perf_counter() - start, retries[0])
    except BaseException as error:
        raise _safe_exception(error) from None


def _preferred_context_name() -> str:
    """Start method for worker processes: env override, else fork.

    Fork keeps dispatch latency low (no per-worker re-import of numpy
    and the package); platforms without it fall back to spawn.
    """
    import multiprocessing

    override = os.environ.get(_MP_CONTEXT_ENV)
    if override:
        return override
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"  # pragma: no cover - non-Linux


class ProcessPool:
    """Long-lived process executor with the thread pool's semantics.

    The executor is created lazily (a session that never crosses the
    process threshold never forks) and rebuilt after a crash. ``stats``
    mirrors :class:`~repro.parallel.resilience.PoolStats` so
    ``Ringo.health()`` reports both backends uniformly.
    """

    def __init__(
        self,
        workers: "int | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        degrade_after: "int | None" = 3,
        context: "str | None" = None,
    ) -> None:
        from repro.parallel.executor import effective_worker_count

        self.workers = effective_worker_count(workers)
        self.retry_policy = retry_policy
        self.degrade_after = degrade_after
        self.stats = PoolStats()
        self.crashes = 0
        self._context_name = context or _preferred_context_name()
        self._lock = threading.Lock()
        self._executor: "ProcessPoolExecutor | None" = None
        self._closed = False
        self._crash_streak = 0

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def degraded(self) -> bool:
        """Whether repeated worker crashes retired the process backend."""
        return self.stats.degraded

    def close(self) -> None:
        """Shut down worker processes (idempotent)."""
        with self._lock:
            self._closed = True
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        import multiprocessing

        with self._lock:
            if self._closed:
                raise PoolClosedError(self.workers)
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context(self._context_name),
                )
            return self._executor

    def _discard_executor(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None

    def _maybe_crash_worker(self, executor: ProcessPoolExecutor) -> None:
        # The ``parallel.proc.worker_crash`` site does not raise — a
        # firing SIGKILLs a live worker so tests exercise the *real*
        # broken-pool recovery path, not a simulation of it.
        plan = active_plan()
        if plan is None:
            return
        try:
            plan.check("parallel.proc.worker_crash")
        except InjectedFaultError:
            # Workers spawn lazily on first submit; make sure one exists
            # before aiming at it.
            victim = executor.submit(_warm).result()
            os.kill(victim, signal.SIGKILL)

    def run(
        self,
        fn,
        descriptor: dict,
        spans,
        extra: tuple = (),
        timeout: "float | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> "tuple[list, float]":
        """Run ``fn(arrays, lo, hi, *extra)`` over ``spans`` in workers.

        Returns ``(results_in_span_order, total_kernel_seconds)``; the
        seconds aggregate feeds the adaptive crossover. Raises
        :class:`WorkerTimeoutError` on deadline expiry,
        :class:`WorkerCrashedError` when the pool breaks, or the
        kernel's (pickle-safe) error with pending siblings cancelled.
        """
        if self._closed:
            raise PoolClosedError(self.workers)
        fault_point("parallel.proc.dispatch")
        executor = self._ensure_executor()
        self._maybe_crash_worker(executor)
        self.stats.record_call()
        policy = retry if retry is not None else self.retry_policy
        tasks = [(fn, descriptor, lo, hi, tuple(extra), policy) for lo, hi in spans]
        if _tracing_enabled():
            _metrics_registry().counter("procpool.dispatches_total").inc(len(tasks))
        with trace("procpool.dispatch", partitions=len(tasks)):
            try:
                futures = [executor.submit(_proc_worker_run, t) for t in tasks]
                done, not_done = wait(
                    futures, timeout=timeout, return_when=FIRST_EXCEPTION
                )
                failed = next(
                    (f for f in futures if f in done and f.exception() is not None),
                    None,
                )
                if failed is not None:
                    cancelled = sum(1 for future in not_done if future.cancel())
                    error = failed.exception()
                    if isinstance(error, BrokenProcessPool):
                        raise error
                    self.stats.record_failure(cancelled=cancelled)
                    raise error
                if not_done:
                    cancelled = sum(1 for future in not_done if future.cancel())
                    self.stats.record_timeout(cancelled=cancelled)
                    assert timeout is not None
                    raise WorkerTimeoutError(
                        timeout, pending=len(not_done), cancelled=cancelled
                    )
            except BrokenProcessPool as error:
                self._note_crash()
                raise WorkerCrashedError(
                    f"process pool worker died mid-kernel: {error}"
                ) from error
        self._crash_streak = 0
        results = []
        kernel_seconds = 0.0
        for future in futures:
            result, seconds, retries = future.result()
            results.append(result)
            kernel_seconds += seconds
            for _ in range(retries):
                self.stats.record_retry(0, None)
        return results, kernel_seconds

    def _note_crash(self) -> None:
        self.crashes += 1
        self.stats.record_failure(cancelled=0)
        self._discard_executor()
        if self.degrade_after is None:
            return
        self._crash_streak += 1
        if self._crash_streak >= self.degrade_after and not self.stats.degraded:
            self.stats.mark_degraded()

    def snapshot(self) -> dict:
        """Plain-dict state for ``Ringo.health()["parallel"]``."""
        state = self.stats.snapshot()
        state["workers"] = self.workers
        state["context"] = self._context_name
        state["crashes"] = self.crashes
        state["live"] = self._executor is not None
        return state
