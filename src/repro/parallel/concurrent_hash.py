"""Open-addressing hash table with linear probing (paper §2.5).

Ringo: "We implemented an open addressing hash table with linear probing"
(after Lang et al., *Massively parallel NUMA-aware hash joins*). This is a
faithful Python/numpy rebuild for int64 keys: a power-of-two bucket array,
multiplicative hashing, linear probing, amortised growth, and a striped
lock scheme so concurrent inserts from pool workers are safe.

It is the node-id table under the graph objects' conversion path and the
build side of the relational hash join, so its probe behaviour is exercised
by the Table 4 and Table 5 benchmarks.
"""

from __future__ import annotations

import threading
from typing import Iterator

import numpy as np

from repro.analysis.hooks import container_access
from repro.faults import fault_point
from repro.util.validation import check_positive

_EMPTY = np.int64(-1)
# Knuth's multiplicative constant, 2^64 / phi, as a signed 64-bit value.
_HASH_MULTIPLIER = np.int64(-7046029254386353131)
_MAX_LOAD_FACTOR = 0.7


def _hash_keys(keys: np.ndarray, mask: int) -> np.ndarray:
    """Multiplicative hash of int64 keys onto a power-of-two table."""
    with np.errstate(over="ignore"):
        mixed = keys.astype(np.int64) * _HASH_MULTIPLIER
    return (mixed.astype(np.uint64) >> np.uint64(33)).astype(np.int64) & mask


class LinearProbingHashTable:
    """Maps non-negative int64 keys to int64 values via linear probing.

    Keys must be >= 0 because -1 marks empty buckets, matching the common
    C++ trick Ringo's implementation uses. Values are arbitrary int64.

    >>> table = LinearProbingHashTable()
    >>> table.insert(42, 7)
    >>> table.lookup(42)
    7
    >>> table.lookup(43) is None
    True
    """

    def __init__(self, expected: int = 16) -> None:
        check_positive(expected, "expected")
        capacity = 16
        while capacity * _MAX_LOAD_FACTOR < expected:
            capacity *= 2
        self._keys = np.full(capacity, _EMPTY, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.int64)
        self._size = 0
        # Mutations serialise on one lock (linear probing crosses any
        # slot-striping scheme); lookups run lock-free against a consistent
        # snapshot, which is the read-mostly pattern joins and conversions
        # use this table for.
        self._mutate_lock = threading.Lock()

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None

    @property
    def capacity(self) -> int:
        """Current bucket count (always a power of two)."""
        return len(self._keys)

    @property
    def load_factor(self) -> float:
        """Fraction of buckets occupied."""
        return self._size / len(self._keys)

    def insert(self, key: int, value: int) -> None:
        """Insert or overwrite ``key`` with ``value``."""
        fault_point("hash.insert")
        self._check_key(key)
        with self._mutate_lock:
            container_access(self, "LinearProbingHashTable", True, (self._mutate_lock,))
            self._grow_if_needed(1)
            self._insert_unlocked(int(key), int(value))

    def insert_if_absent(self, key: int, value: int) -> int:
        """Insert ``key``->``value`` unless present; return the stored value.

        This is the claim primitive graph construction needs: many workers
        may race to register the same node id, and all must agree on one
        stored value.
        """
        fault_point("hash.insert")
        self._check_key(key)
        with self._mutate_lock:
            container_access(self, "LinearProbingHashTable", True, (self._mutate_lock,))
            self._grow_if_needed(1)
            slot = self._probe(int(key))
            if self._keys[slot] == key:
                return int(self._values[slot])
            self._keys[slot] = key
            self._values[slot] = value
            self._size += 1
            return int(value)

    def lookup(self, key: int) -> int | None:
        """Return the value stored for ``key``, or ``None``."""
        if key < 0:
            return None
        # Snapshot both arrays so a concurrent resize cannot interleave.
        keys = self._keys
        values = self._values
        mask = len(keys) - 1
        slot = int(_hash_keys(np.asarray([key], dtype=np.int64), mask)[0])
        while True:
            stored = keys[slot]
            if stored == key:
                return int(values[slot])
            if stored == _EMPTY:
                return None
            slot = (slot + 1) & mask

    def insert_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Bulk insert; the fast path for join builds.

        Equivalent to calling :meth:`insert` per pair but grows the table
        once up front.
        """
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if len(keys) == 0:
            return
        if int(keys.min()) < 0:
            raise ValueError("keys must be non-negative")
        fault_point("hash.insert")
        with self._mutate_lock:
            container_access(self, "LinearProbingHashTable", True, (self._mutate_lock,))
            self._grow_if_needed(len(keys))
            for key, value in zip(keys.tolist(), values.tolist()):
                self._insert_unlocked(key, value)

    def lookup_many(self, keys: np.ndarray, missing: int = -1) -> np.ndarray:
        """Vectorised-ish bulk probe; absent keys map to ``missing``."""
        out = np.full(len(keys), missing, dtype=np.int64)
        table_keys = self._keys
        table_values = self._values
        mask = len(table_keys) - 1
        slots = _hash_keys(np.asarray(keys, dtype=np.int64), mask)
        for index, (key, slot) in enumerate(zip(keys.tolist(), slots.tolist())):
            while True:
                stored = table_keys[slot]
                if stored == key:
                    out[index] = table_values[slot]
                    break
                if stored == _EMPTY:
                    break
                slot = (slot + 1) & mask
        return out

    def items(self) -> Iterator[tuple[int, int]]:
        """Yield ``(key, value)`` pairs in unspecified (bucket) order."""
        occupied = self._keys != _EMPTY
        for key, value in zip(self._keys[occupied].tolist(), self._values[occupied].tolist()):
            yield key, value

    def _check_key(self, key: int) -> None:
        if key < 0:
            raise ValueError(f"keys must be non-negative, got {key}")

    def _probe(self, key: int) -> int:
        keys = self._keys
        mask = len(keys) - 1
        slot = int(_hash_keys(np.asarray([key], dtype=np.int64), mask)[0])
        while keys[slot] != _EMPTY and keys[slot] != key:
            slot = (slot + 1) & mask
        return slot

    def _insert_unlocked(self, key: int, value: int) -> None:
        slot = self._probe(key)
        if self._keys[slot] != key:
            self._keys[slot] = key
            self._size += 1
        self._values[slot] = value

    def _grow_if_needed(self, incoming: int) -> None:
        """Grow until the pending inserts fit; caller holds the mutate lock."""
        while (self._size + incoming) > len(self._keys) * _MAX_LOAD_FACTOR:
            self._grow()

    def _grow(self) -> None:
        old_keys = self._keys
        old_values = self._values
        capacity = len(old_keys) * 2
        self._keys = np.full(capacity, _EMPTY, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.int64)
        occupied = old_keys != _EMPTY
        self._size = 0
        for key, value in zip(old_keys[occupied].tolist(), old_values[occupied].tolist()):
            self._insert_unlocked(key, value)
