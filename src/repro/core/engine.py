"""The Ringo session — the paper's Python front-end (paper §2.5, §4.1).

One :class:`Ringo` object plays the role of the ``ringo`` module in the
paper's demo listing; its methods keep the paper's exact names and call
shapes::

    ringo = Ringo()
    P  = ringo.LoadTableTSV(schema, 'posts.tsv')
    JP = ringo.Select(P, 'Tag=Java')
    Q  = ringo.Select(JP, 'Type=question')
    A  = ringo.Select(JP, 'Type=answer')
    QA = ringo.Join(Q, A, 'AnswerId', 'PostId')
    G  = ringo.ToGraph(QA, 'UserId-1', 'UserId-2')
    PR = ringo.GetPageRank(G)
    S  = ringo.TableFromHashMap(PR, 'User', 'Scr')

The session owns a shared string pool (so every table it creates is
join-compatible) and a worker pool (the §2.5 OpenMP stand-in) used by
the parallel operations.
"""

from __future__ import annotations

import copy
import functools
import os
import threading
import time
from typing import Mapping, Sequence

from repro import algorithms as alg
from repro import convert, obs, tables
from repro.analysis import races as _races
from repro.analysis import sanitize as _sanitize
from repro.core.registry import FunctionRegistry, build_default_registry
from repro.exceptions import RecoveryError
from repro.faults import fault_point
from repro.graphs.directed import DirectedGraph
from repro.graphs.snapshot import csr_snapshot
from repro.graphs.snapshot import snapshot_cache as _default_snapshot_cache
from repro.graphs.undirected import UndirectedGraph
from repro.incremental.engine import incremental_engine as _incremental_engine
from repro.incremental.ingest import apply_graph_ops, validate_ops
from repro.recovery import ops as _rops
from repro.recovery.wal import SessionDurability
from repro.memory.budget import (
    ADMIT_DEGRADE,
    MemoryBudget,
    estimate_graph_build_bytes,
    estimate_join_bytes,
)
from repro.parallel.executor import WorkerPool, kernel_dispatcher, resolve_backend
from repro.parallel.resilience import RetryPolicy, run_with_retry
from repro.tables.schema import Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table


def _timed(method):
    """Record per-call wall-clock time under the method's name.

    Applied to the analytics and conversion methods so an interactive
    session can show where its time went (``call_timings()`` /
    ``health()["timings"]``) — in particular, that a warm repeat of an
    algorithm skips the snapshot-conversion cost.

    When tracing is armed the call also becomes an ``engine.<Method>``
    span (the root of that operation's span tree) and its latency lands
    in the ``engine.<Method>.seconds`` histogram.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        start = time.perf_counter()
        with obs.trace(f"engine.{method.__name__}"):
            try:
                return method(self, *args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                self._record_timing(method.__name__, elapsed)
                if obs.enabled():
                    obs.registry().histogram(
                        f"engine.{method.__name__}.seconds"
                    ).observe(elapsed)

    return wrapper


class Ringo:
    """An interactive analytics session.

    ``memory_budget`` caps the estimated transient allocation of big
    conversions and joins (bytes, or a pre-built
    :class:`~repro.memory.budget.MemoryBudget`); ``on_budget_exceeded``
    picks between failing fast (``"raise"``) and degrading to chunked
    execution (``"degrade"``). ``retry_policy`` arms the worker pool's
    transparent retries of :class:`~repro.exceptions.TransientError`.

    ``backend`` selects how partitioned kernels execute: ``"threads"``
    (the GIL-releasing numpy path), ``"processes"`` (true multi-core
    over zero-copy shared-memory snapshot exports), or ``"auto"`` (an
    adaptive edge-count crossover decides per call). The default
    ``None`` defers to the ``REPRO_BACKEND`` environment variable,
    falling back to ``"auto"``. Dispatcher state — backend decisions,
    crossover model, process-pool and shared-memory counters — is
    reported under ``health()["parallel"]``.

    Objects built by the session are published to its catalog only after
    a build fully succeeds, so a mid-build failure never leaves a
    partial table or graph visible through :meth:`Objects`.

    ``snapshot_cache`` toggles the (process-wide) versioned CSR snapshot
    cache the bulk analytics run through, and ``snapshot_cache_bytes``
    caps how many bytes of snapshots it may retain (``None`` =
    unlimited); back-to-back analytics on an unchanged graph then share
    one conversion, verifiable via ``health()["snapshot_cache"]`` and
    the per-call timers in ``call_timings()``.

    ``race_check`` arms the Eraser-style lockset race detector
    (:mod:`repro.analysis.races`) over the concurrent containers and
    pool kernels: ``True`` raises :class:`~repro.exceptions.RaceDetected`
    at the racing access, ``"record"`` logs races and keeps running, and
    the default ``None`` defers to the ``RINGO_RACE_CHECK`` environment
    variable. Race and snapshot-sanitizer counters are reported under
    ``health()["analysis"]``.

    ``trace`` arms the observability layer (:mod:`repro.obs`): ``True``
    installs the process-wide tracer with its in-memory recorder, a
    string adds a JSON-lines sink at that path, and the default ``None``
    defers to the ``RINGO_TRACE`` environment variable. Span and metric
    counters surface under ``health()["obs"]``; :meth:`profile` renders
    the recorded span tree.

    ``durability`` arms crash-consistent durability
    (:mod:`repro.recovery`): pass a directory (or set the
    ``RINGO_DURABILITY`` environment variable) and every
    catalog-mutating operation appends a CRC32-framed, fsync'd
    write-ahead-log record *before* its result is published.
    :meth:`checkpoint` snapshots the catalog atomically with per-array
    checksums; after a crash, :meth:`recover` reconstructs the session
    from the newest valid checkpoint plus WAL replay. Durable sessions
    publish every recorded result to the catalog (so derivations can
    reference their inputs by id); the durability directory must be
    empty the first time — resume an existing one with
    :meth:`recover`.

    >>> ringo = Ringo(workers=1)
    >>> table = ringo.TableFromColumns({"a": [1, 2], "b": [2, 3]})
    >>> graph = ringo.ToGraph(table, "a", "b")
    >>> graph.num_edges
    2
    """

    def __init__(
        self,
        workers: int | None = None,
        memory_budget: "MemoryBudget | int | None" = None,
        on_budget_exceeded: str = "raise",
        retry_policy: RetryPolicy | None = None,
        backend: "str | None" = None,
        snapshot_cache: bool = True,
        snapshot_cache_bytes: "int | None" = None,
        race_check: "bool | str | None" = None,
        trace: "bool | str | None" = None,
        durability: "str | os.PathLike[str] | None" = None,
        incremental: "bool | None" = None,
    ) -> None:
        self.pool = StringPool()
        self.workers = WorkerPool(workers, retry_policy=retry_policy)
        # The kernel dispatcher (process backend + adaptive crossover)
        # is process-wide like the snapshot cache; the session pins its
        # policy — an explicit backend= beats REPRO_BACKEND beats auto —
        # and shares the worker width and retry policy with the thread
        # pool so the two backends degrade into each other coherently.
        self._dispatcher = kernel_dispatcher()
        self._dispatcher.configure(
            backend=resolve_backend(backend),
            process_workers=workers,
            retry_policy=retry_policy,
        )
        self.budget = MemoryBudget.coerce(memory_budget, on_exceed=on_budget_exceeded)
        self.registry: FunctionRegistry = build_default_registry()
        # Catalog state is guarded so health()/Objects() polled from a
        # monitoring thread (the session service's health endpoint) can
        # never observe a dict mid-mutation. Mutating *operations* stay
        # single-threaded per session — the lock makes reads safe, it
        # does not make two concurrent Selects safe.
        self._catalog_lock = threading.RLock()
        self._catalog: dict[str, object] = {}
        self._publish_counter = 0
        self._object_names: dict[int, str] = {}
        self._durability: "SessionDurability | None" = None
        self._recovery_report: "dict | None" = None
        if durability is None:
            durability = os.environ.get("RINGO_DURABILITY") or None
        if durability:
            self._arm_durability(durability, resume=False)
        # The snapshot cache is process-wide (the paper's model is one
        # interactive session per process); the session configures it.
        self._snapshot_cache = _default_snapshot_cache()
        self._snapshot_cache.configure(
            enabled=snapshot_cache, max_bytes=snapshot_cache_bytes
        )
        # Incremental (delta) maintenance is process-wide like the
        # snapshot cache; None leaves the RINGO_INCREMENTAL policy
        # untouched, an explicit bool pins it for the process.
        if incremental is not None:
            _incremental_engine().configure(enabled=incremental)
        self._timings: dict[str, dict] = {}
        self._timings_lock = threading.Lock()
        # Race detection is process-wide like the snapshot cache; the
        # session only *owns* (and tears down) a detector it installed.
        if race_check is None and _races.env_enabled():
            race_check = True
        self._owned_detector: "_races.RaceDetector | None" = None
        if race_check:
            self._owned_detector = _races.enable(
                raise_on_race=race_check != "record"
            )
        # Tracing follows the same protocol: process-wide, owned (and
        # torn down) only by the session that actually installed it.
        self._owned_tracer: "obs.Tracer | None" = None
        if trace is None and not obs.enabled():
            self._owned_tracer = obs.enable_from_env()
        elif trace:
            if obs.enabled():
                pass  # an armed tracer (session fixture, CLI) wins
            elif isinstance(trace, str):
                self._owned_tracer = obs.enable(
                    sinks=[obs.RingBufferSink(), obs.JsonlSink(trace)]
                )
            else:
                self._owned_tracer = obs.enable()

    # ------------------------------------------------------------------
    # Catalog: atomic publish of session-built objects
    # ------------------------------------------------------------------

    def _publish(self, kind: str, obj):
        """Register a fully built object; called only after success."""
        with self._catalog_lock:
            self._publish_counter += 1
            name = f"{kind}-{self._publish_counter}"
            self._catalog[name] = obj
            self._object_names[id(obj)] = name
        return obj

    def _publish_as(self, name: str, obj):
        """Register an object under an explicit catalog name (recovery)."""
        with self._catalog_lock:
            self._catalog[name] = obj
            self._object_names[id(obj)] = name
        return obj

    def _arm_durability(self, directory, resume: bool = False) -> None:
        """Open the write-ahead log under ``directory``.

        A fresh session refuses a directory that already holds durable
        state (LSNs and catalog names would collide with the old run's);
        :meth:`recover` passes ``resume=True`` after reconstructing the
        catalog, so appends continue the existing sequence.
        """
        from repro.recovery.checkpoint import ensure_fresh

        if self._durability is not None:
            raise RecoveryError("session durability is already armed")
        if not resume:
            ensure_fresh(directory)
        self._durability = SessionDurability(directory)

    def _require_ref(self, obj) -> str:
        """The catalog id of ``obj``, adopting it into the WAL if unknown.

        Durable operations reference their inputs by catalog id. An
        input built outside the recorded surface (a table handed in
        from user code) is *adopted*: its full contents are logged as
        an inline ``__adopt_*__`` record and it is published, making
        the log self-contained.
        """
        with self._catalog_lock:
            name = self._object_names.get(id(obj))
            if name is not None and self._catalog.get(name) is obj:
                return name
        if isinstance(obj, Table):
            kind, op = "table", "__adopt_table__"
            payload = _rops.encode_table_payload(obj)
        elif isinstance(obj, (DirectedGraph, UndirectedGraph)):
            kind, op = "graph", "__adopt_graph__"
            payload = _rops.encode_graph_payload(obj)
        else:
            raise RecoveryError(
                f"durable operations cannot reference a {type(obj).__name__} "
                f"input that is not in the session catalog"
            )
        name = f"{kind}-{self._publish_counter + 1}"
        self._durability.wal.append(op, {"payload": payload}, (), name)
        self._publish(kind, obj)
        return name

    def _prepare_inputs(self, *objs) -> None:
        """Ensure inputs are catalogued *before* an in-place mutation runs
        (adoption must snapshot the pre-mutation state)."""
        if self._durability is not None:
            for obj in objs:
                self._require_ref(obj)

    def _commit(
        self,
        kind: str,
        op: str,
        obj,
        args: "dict | None",
        inputs: tuple = (),
        always_publish: bool = False,
        mutated: bool = False,
    ):
        """Log a completed operation to the WAL, then publish its result.

        The WAL append (flushed + fsync'd) happens strictly before the
        result becomes visible through :meth:`Objects` — the on-disk
        record is the commit point, so recovery can reconstruct every
        object a caller ever observed. Without durability armed this
        reduces to the legacy behaviour: only ops that always published
        (loads, Join, ToGraph) publish, everything else passes through.
        """
        if self._durability is None:
            if always_publish:
                self._publish(kind, obj)
            return obj
        refs = [self._require_ref(value) for value in inputs]
        if mutated:
            self._durability.wal.append(op, args or {}, refs, refs[0])
            return obj
        name = f"{kind}-{self._publish_counter + 1}"
        self._durability.wal.append(op, args or {}, refs, name)
        self._publish(kind, obj)
        return obj

    def _snapshot(self, graph):
        """Prewarm the CSR snapshot for a dynamic graph, then pass it on.

        Called at the top of the CSR-bound analytics methods so the
        conversion (on a cold cache) runs through the session's worker
        pool; the algorithm's own ``as_csr`` then hits the cache. The
        *original* graph is returned so Network/weight semantics are
        preserved downstream. A no-op for CSR inputs or when the cache
        is disabled (prewarming would double the conversion work).
        """
        if self._snapshot_cache.enabled and isinstance(
            graph, (DirectedGraph, UndirectedGraph)
        ):
            csr_snapshot(graph, pool=self.workers)
        return graph

    def _record_timing(self, name: str, seconds: float) -> None:
        """Fold one call's wall-clock time into the per-method counters."""
        with self._timings_lock:
            entry = self._timings.setdefault(name, {"calls": 0, "seconds": 0.0})
            entry["calls"] += 1
            entry["seconds"] += seconds

    def Objects(self) -> list[str]:
        """Names of objects the session has successfully published."""
        with self._catalog_lock:
            return list(self._catalog)

    def GetObject(self, name: str):
        """Look up a published object by catalog name."""
        with self._catalog_lock:
            return self._catalog[name]

    def checkpoint(self, directory=None) -> dict:
        """Write an atomic, checksummed snapshot of the session catalog.

        Every catalogued table and graph is serialised with per-array
        CRC32 digests into a temp directory that is renamed into place
        in one step, so a crash mid-checkpoint never leaves a
        readable-but-wrong state. Returns the checkpoint manifest.
        Defaults to the armed durability directory; recovery replays
        only the WAL suffix past the newest valid checkpoint.
        """
        from repro.recovery.checkpoint import write_checkpoint

        if directory is None:
            if self._durability is None:
                raise RecoveryError(
                    "checkpoint() needs a directory when durability is not armed"
                )
            directory = self._durability.directory
        with obs.trace("recovery.checkpoint"):
            manifest = write_checkpoint(self, directory)
        if self._durability is not None:
            self._durability.checkpoints_written += 1
        return manifest

    @classmethod
    def recover(cls, directory, strict: bool = False, **session_kwargs) -> "Ringo":
        """Reconstruct a crashed session from its durability directory.

        Restores the newest valid checkpoint (checksum-verified;
        corrupt artifacts are quarantined with a typed
        :class:`~repro.exceptions.CorruptionError`, never loaded
        silently) and replays the write-ahead log through the normal
        operator dispatch. The returned session is re-armed on the same
        directory; its recovery report is available under
        ``health()["recovery"]["last_recovery"]``. With ``strict=True``
        an unrecoverable object raises instead of being reported.
        """
        from repro.recovery.recover import recover_session

        return recover_session(cls, directory, strict=strict, **session_kwargs)

    def close(self) -> None:
        """Shut down the worker pool (and any race detector or tracer
        this session armed)."""
        self.workers.close()
        if self._durability is not None:
            self._durability.close()
        if self._owned_detector is not None and _races.current() is self._owned_detector:
            _races.disable()
        if self._owned_tracer is not None and obs.current_tracer() is self._owned_tracer:
            obs.disable()

    def __enter__(self) -> "Ringo":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Table input/output
    # ------------------------------------------------------------------

    @_timed
    def LoadTableTSV(self, schema, path, **kwargs) -> Table:
        """Load a TSV file into a table (paper §4.1 listing, line 1)."""
        start = time.perf_counter()
        table = tables.load_table_tsv(schema, path, pool=self.pool, **kwargs)
        if obs.enabled():
            obs.observe_rate(
                "io.tsv.rows", table.num_rows, time.perf_counter() - start
            )
        args = None
        if self._durability is not None:
            # Log the *resulting* schema so replay skips re-inference.
            args = {
                "schema": _rops.encode_schema(table.schema),
                "path": os.fspath(path),
                "kwargs": _rops.encode_value(kwargs),
            }
        return self._commit(
            "table", "LoadTableTSV", table, args, always_publish=True
        )

    def SaveTableTSV(self, table: Table, path, **kwargs) -> int:
        """Write a table as TSV; returns the row count."""
        return tables.save_table_tsv(table, path, **kwargs)

    def TableFromColumns(self, data, schema=None) -> Table:
        """Build a table from per-column data (session-pooled)."""
        table = Table.from_columns(data, schema=schema, pool=self.pool)
        args = None
        if self._durability is not None:
            # The input data has no durable provenance; snapshot the
            # result inline so the WAL is self-contained.
            args = {"payload": _rops.encode_table_payload(table)}
        return self._commit("table", "TableFromColumns", table, args)

    def TableFromHashMap(self, mapping: Mapping, key_col: str, value_col: str) -> Table:
        """Result map → two-column table (paper §4.1 listing, last line)."""
        table = convert.table_from_hashmap(mapping, key_col, value_col, pool=self.pool)
        args = None
        if self._durability is not None:
            args = {
                "items": [
                    [_rops.encode_value(k), _rops.encode_value(v)]
                    for k, v in mapping.items()
                ],
                "key_col": key_col,
                "value_col": value_col,
            }
        return self._commit("table", "TableFromHashMap", table, args)

    # ------------------------------------------------------------------
    # Relational operations (§2.3)
    # ------------------------------------------------------------------

    def Select(self, table: Table, predicate, in_place: bool = False) -> Table:
        """Filter rows by predicate string/mask (``'Tag=Java'``)."""
        args = None
        if self._durability is not None:
            # Adopt + encode against the table *before* it mutates.
            self._prepare_inputs(table)
            args = {
                "predicate": _rops.encode_predicate(predicate, table),
                "in_place": bool(in_place),
            }
        result = tables.select(table, predicate, in_place=in_place)
        return self._commit(
            "table", "Select", result, args, (table,), mutated=bool(in_place)
        )

    @_timed
    def Join(self, left: Table, right: Table, left_col, right_col=None, **kwargs) -> Table:
        """Inner equi-join; always a new table, clashes suffixed -1/-2.

        Under a session memory budget the join's estimated materialisation
        is admission-checked first; an over-budget join raises
        :class:`~repro.exceptions.MemoryBudgetError` before any work.
        """
        if self.budget is not None:
            estimated = estimate_join_bytes(
                left.num_rows, right.num_rows, len(left.schema) + len(right.schema)
            )
            # A join has no chunked strategy, so a "degrade" budget only
            # records the admission; strict budgets refuse outright.
            self.budget.admit("Join", estimated)
        joined = tables.join(left, right, left_col, right_col, **kwargs)
        args = None
        if self._durability is not None:
            args = {
                "left_on": _rops.encode_value(left_col),
                "right_on": _rops.encode_value(right_col),
                "kwargs": _rops.encode_value(kwargs),
            }
        return self._commit(
            "table", "Join", joined, args, (left, right), always_publish=True
        )

    def Project(self, table: Table, columns: Sequence[str]) -> Table:
        """Keep only the named columns."""
        result = tables.project(table, columns)
        return self._commit(
            "table", "Project", result, {"columns": list(columns)}, (table,)
        )

    def Rename(self, table: Table, mapping: Mapping[str, str]) -> Table:
        """Rename columns (new table, shared data)."""
        result = tables.rename(table, mapping)
        return self._commit(
            "table", "Rename", result, {"mapping": dict(mapping)}, (table,)
        )

    def GroupBy(self, table: Table, keys, aggregations=None) -> Table:
        """Group & aggregate."""
        result = tables.group_by(table, keys, aggregations)
        args = None
        if self._durability is not None:
            args = {
                "keys": _rops.encode_value(keys),
                "aggregations": None
                if aggregations is None
                else {
                    out: [spec[0], spec[1]] for out, spec in aggregations.items()
                },
            }
        return self._commit("table", "GroupBy", result, args, (table,))

    def OrderBy(self, table: Table, keys, ascending: bool = True, in_place: bool = False) -> Table:
        """Sort rows."""
        self._prepare_inputs(table)
        result = tables.order_by(table, keys, ascending=ascending, in_place=in_place)
        args = {
            "keys": _rops.encode_value(keys),
            "ascending": bool(ascending),
            "in_place": bool(in_place),
        }
        return self._commit(
            "table", "OrderBy", result, args, (table,), mutated=bool(in_place)
        )

    def Union(self, left: Table, right: Table, distinct: bool = True) -> Table:
        """Set union (UNION ALL with ``distinct=False``)."""
        result = tables.union(left, right, distinct=distinct)
        return self._commit(
            "table", "Union", result, {"distinct": bool(distinct)}, (left, right)
        )

    def Intersect(self, left: Table, right: Table) -> Table:
        """Set intersection."""
        result = tables.intersect(left, right)
        return self._commit("table", "Intersect", result, None, (left, right))

    def Minus(self, left: Table, right: Table) -> Table:
        """Set difference."""
        result = tables.minus(left, right)
        return self._commit("table", "Minus", result, None, (left, right))

    def SimJoin(self, left: Table, right: Table, on, threshold: float, **kwargs) -> Table:
        """Similarity join: rows whose key distance is below threshold."""
        result = tables.sim_join(left, right, on, threshold, **kwargs)
        args = None
        if self._durability is not None:
            args = {
                "on": _rops.encode_value(on),
                "threshold": float(threshold),
                "kwargs": _rops.encode_value(kwargs),
            }
        return self._commit("table", "SimJoin", result, args, (left, right))

    def NextK(self, table: Table, order_col: str, k: int, group_col: str | None = None) -> Table:
        """Temporal predecessor/successor join."""
        result = tables.next_k(table, order_col, k, group_col=group_col)
        args = {"order_col": order_col, "k": int(k), "group_col": group_col}
        return self._commit("table", "NextK", result, args, (table,))

    def Distinct(self, table: Table, columns: Sequence[str] | None = None) -> Table:
        """Unique rows (first occurrence kept)."""
        result = tables.distinct(table, columns)
        args = {"columns": None if columns is None else list(columns)}
        return self._commit("table", "Distinct", result, args, (table,))

    def Limit(self, table: Table, count: int) -> Table:
        """The first ``count`` rows."""
        result = tables.limit(table, count)
        return self._commit("table", "Limit", result, {"count": int(count)}, (table,))

    def TopK(self, table: Table, column: str, k: int, ascending: bool = False) -> Table:
        """The ``k`` extreme rows by one column."""
        result = tables.top_k(table, column, k, ascending=ascending)
        args = {"column": column, "k": int(k), "ascending": bool(ascending)}
        return self._commit("table", "TopK", result, args, (table,))

    def ValueCounts(self, table: Table, column: str) -> Table:
        """Distinct values with occurrence counts, descending."""
        result = tables.value_counts(table, column)
        return self._commit(
            "table", "ValueCounts", result, {"column": column}, (table,)
        )

    def WithColumn(self, table: Table, name: str, expression: str, as_int: bool = False) -> Table:
        """Append a computed column from an arithmetic expression."""
        result = tables.with_column(table, name, expression, as_int=as_int)
        args = {"name": name, "expression": expression, "as_int": bool(as_int)}
        return self._commit("table", "WithColumn", result, args, (table,))

    def Sample(self, table: Table, count: int, seed: int = 0) -> Table:
        """A uniform random row sample."""
        result = tables.sample_rows(table, count, seed=seed)
        args = {"count": int(count), "seed": int(seed)}
        return self._commit("table", "Sample", result, args, (table,))

    # ------------------------------------------------------------------
    # Conversions (§2.4)
    # ------------------------------------------------------------------

    @_timed
    def ToGraph(self, table: Table, src_col: str, dst_col: str, directed: bool = True):
        """Edge table → graph via the sort-first algorithm.

        Under a session memory budget the sort-first build's transient
        allocation is admission-checked; an over-budget conversion either
        raises :class:`~repro.exceptions.MemoryBudgetError` or (with
        ``on_budget_exceeded="degrade"``) falls back to the chunked
        dynamic build. The graph is built privately and published to the
        session catalog only on success.
        """
        start = time.perf_counter()
        args = {"src_col": src_col, "dst_col": dst_col, "directed": bool(directed)}
        if self.budget is not None:
            estimated = estimate_graph_build_bytes(table.num_rows, directed=directed)
            if self.budget.admit("ToGraph", estimated) == ADMIT_DEGRADE:
                for name in (src_col, dst_col):
                    table.schema.require(name)
                graph = convert.chunked_build(
                    table.column(src_col), table.column(dst_col), directed=directed
                )
                self._record_conversion_rates(table.num_rows, graph, start)
                return self._commit(
                    "graph", "ToGraph", graph, args, (table,), always_publish=True
                )
        graph = convert.to_graph(
            table, src_col, dst_col, directed=directed, pool=self.workers
        )
        self._record_conversion_rates(table.num_rows, graph, start)
        return self._commit(
            "graph", "ToGraph", graph, args, (table,), always_publish=True
        )

    def _record_conversion_rates(self, rows: int, graph, start: float) -> None:
        """Fold one ToGraph's throughput into the paper-styled rate
        metrics (rows/s in, edges/s out) when tracing is armed."""
        if not obs.enabled():
            return
        elapsed = time.perf_counter() - start
        obs.observe_rate("engine.tograph.rows", rows, elapsed)
        obs.observe_rate("engine.tograph.edges", graph.num_edges, elapsed)

    @_timed
    def ToWeightedNetwork(
        self, table: Table, src_col: str, dst_col: str,
        weight_col: str | None = None,
    ):
        """Collapse duplicate edges into a weight-attributed Network."""
        return convert.weighted_network_from_edges(
            table, src_col, dst_col, weight_col=weight_col
        )

    @_timed
    def ApplyOps(self, graph, ops) -> dict:
        """Fold a mutation op stream into a dynamic graph.

        ``ops`` is a JSON-safe list of ``["add_node", id]`` /
        ``["del_node", id]`` / ``["add_edge", src, dst]`` /
        ``["del_edge", src, dst]`` entries, applied in order through the
        graph's public mutators — so the per-graph mutation log observes
        every one and subsequent analytics advance by delta instead of
        rebuilding. With durability armed the batch commits as one WAL
        record; recovery replays it through the same code path, and
        another session can stream it live via :meth:`TailWal`.

        Returns the ingest summary (``applied`` / ``skipped`` /
        ``version`` / ``nodes`` / ``edges``).
        """
        args = None
        if self._durability is not None:
            # Adopt the graph *before* it mutates; normalise the ops so
            # the WAL record replays byte-identically.
            self._prepare_inputs(graph)
            args = {"ops": [list(op) for op in validate_ops(ops)]}
        summary = apply_graph_ops(graph, ops)
        self._commit("graph", "ApplyOps", graph, args, (graph,), mutated=True)
        return summary

    def apply_ops(self, graph, ops) -> dict:
        """Lowercase alias for :meth:`ApplyOps` (streaming-style surface)."""
        return self.ApplyOps(graph, ops)

    @_timed
    def TailWal(
        self,
        directory,
        cursor: int = 0,
        retry_policy: "RetryPolicy | None" = None,
    ) -> dict:
        """Stream committed ``ApplyOps`` records out of another WAL.

        Reads the write-ahead log under ``directory`` and applies every
        ``ApplyOps`` record with ``lsn > cursor`` whose target graph
        exists in *this* session's catalog (same name), through
        :meth:`ApplyOps` — live streaming and crash replay share one
        ingestion path. Records for unknown objects or other operations
        are counted under ``skipped`` and passed over.

        Returns ``{"applied_records", "applied_ops", "skipped",
        "cursor", "error"}``. ``cursor`` is the last LSN fully
        processed: on a fault (site ``incremental.wal.tail``) or apply
        failure, ``error`` is set and the tail stops early — calling
        again with the returned cursor resumes exactly where it left
        off, applying nothing twice.

        ``retry_policy`` hardens a long-lived tailer (the replication
        follower): transient per-record failures — an injected
        ``incremental.wal.tail`` fault, a torn read mid-rotation — are
        absorbed in place with jittered backoff instead of surfacing as
        a stopped tail; only exhaustion (or a non-transient error)
        stops with the resumable cursor. ``None`` keeps the strict
        stop-on-first-error semantics.
        """
        from repro.recovery.wal import WAL_FILENAME, read_wal

        records, _tail = read_wal(os.path.join(os.fspath(directory), WAL_FILENAME))
        applied_records = 0
        applied_ops = 0
        skipped = 0
        position = int(cursor)
        error = None
        for record in records:
            if record.lsn <= position:
                continue

            def step(record=record):
                fault_point("incremental.wal.tail")
                if record.op != "ApplyOps":
                    return None
                with self._catalog_lock:
                    target = self._catalog.get(record.output)
                if isinstance(target, (DirectedGraph, UndirectedGraph)):
                    return self.ApplyOps(target, record.args.get("ops") or [])
                return None

            try:
                if retry_policy is None:
                    summary = step()
                else:
                    summary = run_with_retry(
                        step, retry_policy, metric_prefix="incremental.wal.tail"
                    )
                if summary is None:
                    skipped += 1
                else:
                    applied_records += 1
                    applied_ops += summary["applied"]
            except Exception as err:
                # A fired fault or a diverged stream: report and stop
                # with the last fully-processed LSN so the caller can
                # retry from it. Nothing is applied twice or half-way
                # misreported as success.
                error = f"{type(err).__name__}: {err}"
                break
            position = record.lsn
        return {
            "applied_records": applied_records,
            "applied_ops": applied_ops,
            "skipped": skipped,
            "cursor": position,
            "error": error,
        }

    def tail_wal(
        self,
        directory,
        cursor: int = 0,
        retry_policy: "RetryPolicy | None" = None,
    ) -> dict:
        """Lowercase alias for :meth:`TailWal` (streaming-style surface)."""
        return self.TailWal(directory, cursor=cursor, retry_policy=retry_policy)

    @_timed
    def GetKTruss(self, graph, k: int):
        """The k-truss subgraph (edges with >= k-2 triangle supports)."""
        self._snapshot(graph)
        return alg.k_truss(graph, k)

    @_timed
    def GetEdgeTable(self, graph) -> Table:
        """Graph → edge table (partitioned parallel writer)."""
        start = time.perf_counter()
        table = convert.to_edge_table(graph, pool=self.workers, string_pool=self.pool)
        if obs.enabled():
            obs.observe_rate(
                "engine.edge_export.edges", table.num_rows,
                time.perf_counter() - start,
            )
        return self._commit("table", "GetEdgeTable", table, None, (graph,))

    @_timed
    def GetNodeTable(self, graph, include_degrees: bool = False) -> Table:
        """Graph → node table, optionally with degree columns."""
        table = convert.to_node_table(
            graph, include_degrees=include_degrees,
            pool=self.workers, string_pool=self.pool,
        )
        args = {"include_degrees": bool(include_degrees)}
        return self._commit("table", "GetNodeTable", table, args, (graph,))

    # ------------------------------------------------------------------
    # Graph analytics (§2.2's algorithm surface, paper-named)
    # ------------------------------------------------------------------

    @_timed
    def GetPageRank(self, graph, **kwargs) -> dict[int, float]:
        """PageRank scores (the demo's expert-ranking step)."""
        self._snapshot(graph)
        return alg.pagerank(graph, **kwargs)

    @_timed
    def GetHits(self, graph, **kwargs) -> tuple[dict[int, float], dict[int, float]]:
        """HITS ``(hubs, authorities)``."""
        self._snapshot(graph)
        return alg.hits(graph, **kwargs)

    @_timed
    def GetTriangles(self, graph) -> int:
        """Total distinct triangles (Table 3's second benchmark)."""
        self._snapshot(graph)
        return alg.total_triangles(graph, pool=self.workers)

    @_timed
    def GetTriangleCounts(self, graph) -> dict[int, int]:
        """Per-node triangle participation counts."""
        self._snapshot(graph)
        return alg.triangle_counts(graph, pool=self.workers)

    @_timed
    def GetClusteringCoefficients(self, graph) -> dict[int, float]:
        """Local clustering coefficient per node."""
        self._snapshot(graph)
        return alg.clustering_coefficients(graph)

    @_timed
    def GetKCore(self, graph, k: int):
        """The k-core subgraph (Table 6 benchmarks ``k=3``)."""
        self._snapshot(graph)
        return alg.k_core(graph, k)

    @_timed
    def GetCoreNumbers(self, graph) -> dict[int, int]:
        """Core number per node."""
        self._snapshot(graph)
        return alg.core_numbers(graph)

    @_timed
    def GetSssp(self, graph, source: int, weight=None) -> dict[int, float]:
        """Single-source shortest paths (Table 6's SSSP)."""
        self._snapshot(graph)
        return alg.dijkstra(graph, source, weight=weight)

    @_timed
    def GetBfsLevels(self, graph, source: int, direction: str = "out") -> dict[int, int]:
        """BFS hop distances from a source."""
        self._snapshot(graph)
        return alg.bfs_levels(graph, source, direction=direction)

    @_timed
    def GetScc(self, graph) -> dict[int, int]:
        """Strongly connected component labels (Table 6's SCC)."""
        self._snapshot(graph)
        return alg.strongly_connected_components(graph)

    @_timed
    def GetWcc(self, graph) -> dict[int, int]:
        """Weakly connected component labels."""
        self._snapshot(graph)
        return alg.weakly_connected_components(graph)

    @_timed
    def GetDegreeCentrality(self, graph, mode: str = "total") -> dict[int, float]:
        """Degree centrality."""
        self._snapshot(graph)
        return alg.degree_centrality(graph, mode)

    @_timed
    def GetCommunities(self, graph, **kwargs) -> dict[int, int]:
        """Label-propagation communities."""
        self._snapshot(graph)
        return alg.label_propagation(graph, **kwargs)

    @_timed
    def GetDiameter(self, graph, **kwargs) -> int:
        """(Sampled) diameter."""
        self._snapshot(graph)
        return alg.diameter(graph, **kwargs)

    @_timed
    def GetEffectiveDiameter(self, graph, **kwargs) -> float:
        """(Sampled) 90th-percentile effective diameter."""
        self._snapshot(graph)
        return alg.effective_diameter(graph, **kwargs)

    @_timed
    def GetDegreeDistribution(self, graph, mode: str = "total") -> Table:
        """Degree histogram as a session table."""
        self._snapshot(graph)
        return alg.degree_distribution(graph, mode)

    def GenRMat(self, scale: int, num_edges: int, seed: int = 0, directed: bool = True):
        """R-MAT synthetic graph."""
        graph = alg.rmat(scale, num_edges, seed=seed, directed=directed)
        args = {
            "scale": int(scale), "num_edges": int(num_edges),
            "seed": int(seed), "directed": bool(directed),
        }
        return self._commit("graph", "GenRMat", graph, args)

    def GenPrefAttach(self, num_nodes: int, edges_per_node: int, seed: int = 0):
        """Barabási–Albert synthetic graph."""
        graph = alg.barabasi_albert(num_nodes, edges_per_node, seed=seed)
        args = {
            "num_nodes": int(num_nodes),
            "edges_per_node": int(edges_per_node),
            "seed": int(seed),
        }
        return self._commit("graph", "GenPrefAttach", graph, args)

    def GenErdosRenyi(self, num_nodes: int, num_edges: int, directed: bool = False, seed: int = 0):
        """G(n, m) synthetic graph."""
        graph = alg.erdos_renyi_gnm(num_nodes, num_edges, directed=directed, seed=seed)
        args = {
            "num_nodes": int(num_nodes), "num_edges": int(num_edges),
            "directed": bool(directed), "seed": int(seed),
        }
        return self._commit("graph", "GenErdosRenyi", graph, args)

    def GenPlantedPartition(
        self, num_communities: int, community_size: int,
        p_in: float, p_out: float, seed: int = 0,
    ):
        """Planted-partition synthetic graph (community-detection testbed)."""
        graph = alg.planted_partition(num_communities, community_size, p_in, p_out, seed=seed)
        args = {
            "num_communities": int(num_communities),
            "community_size": int(community_size),
            "p_in": float(p_in), "p_out": float(p_out), "seed": int(seed),
        }
        return self._commit("graph", "GenPlantedPartition", graph, args)

    @_timed
    def GetKatz(self, graph, **kwargs) -> dict[int, float]:
        """Katz centrality."""
        self._snapshot(graph)
        return alg.katz_centrality(graph, **kwargs)

    @_timed
    def GetTriadCensus(self, graph) -> dict[str, int]:
        """The 16-class directed triad census."""
        self._snapshot(graph)
        return alg.triad_census(graph)

    @_timed
    def GetArticulationPoints(self, graph) -> set[int]:
        """Cut vertices of the undirected projection."""
        self._snapshot(graph)
        return alg.articulation_points(graph)

    @_timed
    def GetBridges(self, graph) -> set[tuple[int, int]]:
        """Cut edges of the undirected projection."""
        self._snapshot(graph)
        return alg.bridges(graph)

    @_timed
    def GetColoring(self, graph, strategy: str = "degree") -> dict[int, int]:
        """Greedy proper node colouring."""
        self._snapshot(graph)
        return alg.greedy_coloring(graph, strategy)

    @_timed
    def IsBipartite(self, graph) -> bool:
        """Whether the undirected projection is 2-colourable."""
        self._snapshot(graph)
        return alg.is_bipartite(graph)

    @_timed
    def GetLinkPredictions(self, graph, k: int = 10, scorer=None) -> list:
        """Top-k predicted links by a similarity index (Jaccard default)."""
        if scorer is None:
            scorer = alg.jaccard_coefficient
        self._snapshot(graph)
        return alg.top_predicted_links(graph, scorer=scorer, k=k)

    @_timed
    def GetWeightedPageRank(self, network, weight_attr: str, **kwargs) -> dict[int, float]:
        """PageRank with rank spread proportional to edge weights."""
        self._snapshot(network)
        return alg.pagerank_weighted(network, weight_attr, **kwargs)

    def GetEgonet(self, graph, center: int, radius: int = 1, direction: str = "both"):
        """The induced subgraph around one node."""
        from repro.graphs.ops import ego_network

        return ego_network(graph, center, radius=radius, direction=direction)

    def Describe(self, table: Table) -> Table:
        """Per-column summary statistics."""
        return tables.describe(table, pool=self.pool)

    def Crosstab(self, table: Table, row_col: str, col_col: str, agg: str = "count", value_col: str | None = None) -> Table:
        """Wide-format cross-tabulation of two key columns."""
        return tables.crosstab(table, row_col, col_col, agg=agg, value_col=value_col)

    def Quantiles(self, table: Table, column: str, probabilities) -> list[float]:
        """Quantiles of a numeric column."""
        return tables.quantiles(table, column, probabilities)

    @_timed
    def GetMaxFlow(self, graph, source: int, sink: int, capacity=None) -> float:
        """Maximum s-t flow (Dinic)."""
        self._snapshot(graph)
        return alg.max_flow(graph, source, sink, capacity=capacity)

    @_timed
    def GetMinCut(self, graph, source: int, sink: int, capacity=None) -> tuple[set[int], set[int]]:
        """Minimum s-t cut node partition."""
        self._snapshot(graph)
        return alg.min_cut_partition(graph, source, sink, capacity=capacity)

    @_timed
    def GetMatching(self, graph) -> dict[int, int]:
        """Maximum bipartite matching (Hopcroft-Karp)."""
        self._snapshot(graph)
        return alg.hopcroft_karp(graph)

    @_timed
    def ToCoOccurrenceGraph(
        self, table: Table, group_col: str, actor_col: str,
        max_group_size: int | None = None,
    ):
        """Link actors sharing a group value (§4.1's alternative build)."""
        return convert.co_occurrence_graph(
            table, group_col, actor_col,
            max_group_size=max_group_size, pool=self.workers,
        )

    def GetSnapshots(
        self, table: Table, time_col: str, src_col: str, dst_col: str,
        window: float, cumulative: bool = False,
    ):
        """Time-windowed interaction graphs from an event table."""
        from repro.workflows.temporal import temporal_snapshots

        return temporal_snapshots(
            table, time_col, src_col, dst_col, window, cumulative=cumulative
        )

    @_timed
    def FindCycle(self, graph) -> "list[int] | None":
        """One directed cycle (closed node list), or None."""
        self._snapshot(graph)
        return alg.find_cycle(graph)

    @_timed
    def GetGirth(self, graph) -> "int | None":
        """Shortest cycle length of the undirected projection."""
        self._snapshot(graph)
        return alg.girth(graph)

    @_timed
    def GetSpectralBisection(self, graph, seed: int = 0) -> tuple[set[int], set[int]]:
        """Two-way partition by the Fiedler vector's sign."""
        self._snapshot(graph)
        return alg.spectral_bisection(graph, seed=seed)

    @_timed
    def GetAlgebraicConnectivity(self, graph, seed: int = 0) -> float:
        """Second-smallest Laplacian eigenvalue."""
        self._snapshot(graph)
        return alg.algebraic_connectivity(graph, seed=seed)

    def GenConfigurationModel(self, degrees, seed: int = 0):
        """Random graph approximating a degree sequence."""
        degrees = [int(d) for d in degrees]
        graph = alg.configuration_model(degrees, seed=seed)
        args = {"degrees": degrees, "seed": int(seed)}
        return self._commit("graph", "GenConfigurationModel", graph, args)

    def Rewire(self, graph, swaps: int | None = None, seed: int = 0):
        """Degree-preserving double-edge-swap null model."""
        result = alg.rewire(graph, swaps=swaps, seed=seed)
        args = {"swaps": None if swaps is None else int(swaps), "seed": int(seed)}
        return self._commit("graph", "Rewire", result, args, (graph,))

    def SaveTableBinary(self, table: Table, path) -> None:
        """Snapshot a table to a binary .npz archive."""
        tables.save_table_npz(table, path)

    def LoadTableBinary(self, path) -> Table:
        """Load a binary table snapshot (session-pooled)."""
        table = tables.load_table_npz(path, pool=self.pool)
        args = {"path": os.fspath(path)}
        return self._commit(
            "table", "LoadTableBinary", table, args, always_publish=True
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def workers_info(self) -> dict:
        """The worker pool's configuration and lifetime execution counters."""
        info: dict = {
            "workers": self.workers.workers,
            "mode": "serial" if self.workers.workers == 1 else "threads",
            "closed": self.workers.closed,
            "retry_policy": (
                None
                if self.workers.retry_policy is None
                else {
                    "max_attempts": self.workers.retry_policy.max_attempts,
                    "base_delay": self.workers.retry_policy.base_delay,
                }
            ),
        }
        info.update(self.workers.stats.snapshot())
        return info

    def call_timings(self) -> dict:
        """Per-method call counts and cumulative seconds.

        Every timed analytics/conversion method contributes
        ``{"calls": n, "seconds": total}`` under its own name; the warm
        repeat of an algorithm on an unchanged graph shows up here as a
        second call that took a fraction of the first.
        """
        with self._timings_lock:
            return {name: dict(entry) for name, entry in self._timings.items()}

    def health(self) -> dict:
        """One structured snapshot of the session's resilience state.

        Reports worker downgrades/retries/timeouts, the kernel
        dispatcher's backend decisions and process-pool/shared-memory
        state (under ``"parallel"``), memory-budget
        admissions and denials, the published-object count, the snapshot
        cache's hit/miss/invalidation/byte counters, the per-call timing
        totals, the correctness-tooling counters (race detector and
        snapshot sanitizer under ``"analysis"``), and the observability
        layer's span/metric state under ``"obs"`` — the session-level
        view an operator (or a test) checks after a fault or when
        validating conversion reuse.

        The returned structure is a deep copy: callers may mutate it
        freely without reaching back into live engine state.
        """
        detector = _races.current()
        # One consistent view of the catalog, not a racing iteration.
        with self._catalog_lock:
            object_names = list(self._catalog)
        report = {
            "workers": self.workers_info(),
            "parallel": self._dispatcher.snapshot(),
            "memory_budget": None if self.budget is None else self.budget.snapshot(),
            "snapshot_cache": self._snapshot_cache.stats(),
            "incremental": _incremental_engine().stats(),
            "analysis": {
                "race_detector": None if detector is None else detector.stats(),
                "sanitizer": _sanitize.stats(),
            },
            "obs": self._obs_report(),
            "recovery": self._recovery_report_section(),
            "timings": self.call_timings(),
            "objects": {
                "published": len(object_names),
                "names": object_names,
            },
        }
        # Sub-providers mostly hand back fresh dicts already, but some
        # nest lists (race labels, object names) or may evolve to share
        # state; one deep copy here makes the no-live-references
        # contract unconditional.
        return copy.deepcopy(report)

    def _recovery_report_section(self) -> dict:
        """The ``health()["recovery"]`` section: durability + last recovery."""
        report: dict = {"armed": self._durability is not None}
        if self._durability is not None:
            report.update(self._durability.stats())
        report["last_recovery"] = self._recovery_report
        return report

    def _obs_report(self) -> dict:
        """The ``health()["obs"]`` section: spans, metrics, derived ratios."""
        tracer = obs.current_tracer()
        cache = self._snapshot_cache.stats()
        lookups = cache["hits"] + cache["misses"] + cache["invalidations"]
        report: dict = {
            "enabled": tracer is not None,
            "spans": None if tracer is None else tracer.stats(),
            "metrics": obs.registry().snapshot(),
            "derived": {
                "snapshot_hit_ratio": (
                    cache["hits"] / lookups if lookups else None
                ),
            },
        }
        return report

    def profile(self, min_total_s: float = 0.0) -> str:
        """Render the recorded span tree with per-node self/total times.

        Requires tracing (``Ringo(trace=True)`` / ``RINGO_TRACE``); the
        report covers whatever the tracer's in-memory recorder currently
        retains, newest-capacity-bounded (see
        :class:`repro.obs.RingBufferSink`).
        """
        tracer = obs.current_tracer()
        if tracer is None:
            return "(tracing is not enabled — pass Ringo(trace=True) or set RINGO_TRACE=1)"
        return obs.render_profile(tracer.ring_records(), min_total_s=min_total_s)

    def Functions(self, category: str | None = None) -> list[str]:
        """Registered function names (optionally one category)."""
        return self.registry.names(category)

    def NumFunctions(self) -> int:
        """Size of the analytics surface — the paper's "over 200" claim."""
        return len(self.registry)
