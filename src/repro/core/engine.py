"""The Ringo session — the paper's Python front-end (paper §2.5, §4.1).

One :class:`Ringo` object plays the role of the ``ringo`` module in the
paper's demo listing; its methods keep the paper's exact names and call
shapes::

    ringo = Ringo()
    P  = ringo.LoadTableTSV(schema, 'posts.tsv')
    JP = ringo.Select(P, 'Tag=Java')
    Q  = ringo.Select(JP, 'Type=question')
    A  = ringo.Select(JP, 'Type=answer')
    QA = ringo.Join(Q, A, 'AnswerId', 'PostId')
    G  = ringo.ToGraph(QA, 'UserId-1', 'UserId-2')
    PR = ringo.GetPageRank(G)
    S  = ringo.TableFromHashMap(PR, 'User', 'Scr')

The session owns a shared string pool (so every table it creates is
join-compatible) and a worker pool (the §2.5 OpenMP stand-in) used by
the parallel operations.
"""

from __future__ import annotations

import copy
import functools
import threading
import time
from typing import Mapping, Sequence

from repro import algorithms as alg
from repro import convert, obs, tables
from repro.analysis import races as _races
from repro.analysis import sanitize as _sanitize
from repro.core.registry import FunctionRegistry, build_default_registry
from repro.graphs.directed import DirectedGraph
from repro.graphs.snapshot import csr_snapshot
from repro.graphs.snapshot import snapshot_cache as _default_snapshot_cache
from repro.graphs.undirected import UndirectedGraph
from repro.memory.budget import (
    ADMIT_DEGRADE,
    MemoryBudget,
    estimate_graph_build_bytes,
    estimate_join_bytes,
)
from repro.parallel.executor import WorkerPool
from repro.parallel.resilience import RetryPolicy
from repro.tables.schema import Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table


def _timed(method):
    """Record per-call wall-clock time under the method's name.

    Applied to the analytics and conversion methods so an interactive
    session can show where its time went (``call_timings()`` /
    ``health()["timings"]``) — in particular, that a warm repeat of an
    algorithm skips the snapshot-conversion cost.

    When tracing is armed the call also becomes an ``engine.<Method>``
    span (the root of that operation's span tree) and its latency lands
    in the ``engine.<Method>.seconds`` histogram.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        start = time.perf_counter()
        with obs.trace(f"engine.{method.__name__}"):
            try:
                return method(self, *args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                self._record_timing(method.__name__, elapsed)
                if obs.enabled():
                    obs.registry().histogram(
                        f"engine.{method.__name__}.seconds"
                    ).observe(elapsed)

    return wrapper


class Ringo:
    """An interactive analytics session.

    ``memory_budget`` caps the estimated transient allocation of big
    conversions and joins (bytes, or a pre-built
    :class:`~repro.memory.budget.MemoryBudget`); ``on_budget_exceeded``
    picks between failing fast (``"raise"``) and degrading to chunked
    execution (``"degrade"``). ``retry_policy`` arms the worker pool's
    transparent retries of :class:`~repro.exceptions.TransientError`.

    Objects built by the session are published to its catalog only after
    a build fully succeeds, so a mid-build failure never leaves a
    partial table or graph visible through :meth:`Objects`.

    ``snapshot_cache`` toggles the (process-wide) versioned CSR snapshot
    cache the bulk analytics run through, and ``snapshot_cache_bytes``
    caps how many bytes of snapshots it may retain (``None`` =
    unlimited); back-to-back analytics on an unchanged graph then share
    one conversion, verifiable via ``health()["snapshot_cache"]`` and
    the per-call timers in ``call_timings()``.

    ``race_check`` arms the Eraser-style lockset race detector
    (:mod:`repro.analysis.races`) over the concurrent containers and
    pool kernels: ``True`` raises :class:`~repro.exceptions.RaceDetected`
    at the racing access, ``"record"`` logs races and keeps running, and
    the default ``None`` defers to the ``RINGO_RACE_CHECK`` environment
    variable. Race and snapshot-sanitizer counters are reported under
    ``health()["analysis"]``.

    ``trace`` arms the observability layer (:mod:`repro.obs`): ``True``
    installs the process-wide tracer with its in-memory recorder, a
    string adds a JSON-lines sink at that path, and the default ``None``
    defers to the ``RINGO_TRACE`` environment variable. Span and metric
    counters surface under ``health()["obs"]``; :meth:`profile` renders
    the recorded span tree.

    >>> ringo = Ringo(workers=1)
    >>> table = ringo.TableFromColumns({"a": [1, 2], "b": [2, 3]})
    >>> graph = ringo.ToGraph(table, "a", "b")
    >>> graph.num_edges
    2
    """

    def __init__(
        self,
        workers: int | None = None,
        memory_budget: "MemoryBudget | int | None" = None,
        on_budget_exceeded: str = "raise",
        retry_policy: RetryPolicy | None = None,
        snapshot_cache: bool = True,
        snapshot_cache_bytes: "int | None" = None,
        race_check: "bool | str | None" = None,
        trace: "bool | str | None" = None,
    ) -> None:
        self.pool = StringPool()
        self.workers = WorkerPool(workers, retry_policy=retry_policy)
        self.budget = MemoryBudget.coerce(memory_budget, on_exceed=on_budget_exceeded)
        self.registry: FunctionRegistry = build_default_registry()
        self._catalog: dict[str, object] = {}
        self._publish_counter = 0
        # The snapshot cache is process-wide (the paper's model is one
        # interactive session per process); the session configures it.
        self._snapshot_cache = _default_snapshot_cache()
        self._snapshot_cache.configure(
            enabled=snapshot_cache, max_bytes=snapshot_cache_bytes
        )
        self._timings: dict[str, dict] = {}
        self._timings_lock = threading.Lock()
        # Race detection is process-wide like the snapshot cache; the
        # session only *owns* (and tears down) a detector it installed.
        if race_check is None and _races.env_enabled():
            race_check = True
        self._owned_detector: "_races.RaceDetector | None" = None
        if race_check:
            self._owned_detector = _races.enable(
                raise_on_race=race_check != "record"
            )
        # Tracing follows the same protocol: process-wide, owned (and
        # torn down) only by the session that actually installed it.
        self._owned_tracer: "obs.Tracer | None" = None
        if trace is None and not obs.enabled():
            self._owned_tracer = obs.enable_from_env()
        elif trace:
            if obs.enabled():
                pass  # an armed tracer (session fixture, CLI) wins
            elif isinstance(trace, str):
                self._owned_tracer = obs.enable(
                    sinks=[obs.RingBufferSink(), obs.JsonlSink(trace)]
                )
            else:
                self._owned_tracer = obs.enable()

    # ------------------------------------------------------------------
    # Catalog: atomic publish of session-built objects
    # ------------------------------------------------------------------

    def _publish(self, kind: str, obj):
        """Register a fully built object; called only after success."""
        self._publish_counter += 1
        self._catalog[f"{kind}-{self._publish_counter}"] = obj
        return obj

    def _snapshot(self, graph):
        """Prewarm the CSR snapshot for a dynamic graph, then pass it on.

        Called at the top of the CSR-bound analytics methods so the
        conversion (on a cold cache) runs through the session's worker
        pool; the algorithm's own ``as_csr`` then hits the cache. The
        *original* graph is returned so Network/weight semantics are
        preserved downstream. A no-op for CSR inputs or when the cache
        is disabled (prewarming would double the conversion work).
        """
        if self._snapshot_cache.enabled and isinstance(
            graph, (DirectedGraph, UndirectedGraph)
        ):
            csr_snapshot(graph, pool=self.workers)
        return graph

    def _record_timing(self, name: str, seconds: float) -> None:
        """Fold one call's wall-clock time into the per-method counters."""
        with self._timings_lock:
            entry = self._timings.setdefault(name, {"calls": 0, "seconds": 0.0})
            entry["calls"] += 1
            entry["seconds"] += seconds

    def Objects(self) -> list[str]:
        """Names of objects the session has successfully published."""
        return list(self._catalog)

    def GetObject(self, name: str):
        """Look up a published object by catalog name."""
        return self._catalog[name]

    def close(self) -> None:
        """Shut down the worker pool (and any race detector or tracer
        this session armed)."""
        self.workers.close()
        if self._owned_detector is not None and _races.current() is self._owned_detector:
            _races.disable()
        if self._owned_tracer is not None and obs.current_tracer() is self._owned_tracer:
            obs.disable()

    def __enter__(self) -> "Ringo":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Table input/output
    # ------------------------------------------------------------------

    @_timed
    def LoadTableTSV(self, schema, path, **kwargs) -> Table:
        """Load a TSV file into a table (paper §4.1 listing, line 1)."""
        start = time.perf_counter()
        table = tables.load_table_tsv(schema, path, pool=self.pool, **kwargs)
        if obs.enabled():
            obs.observe_rate(
                "io.tsv.rows", table.num_rows, time.perf_counter() - start
            )
        return self._publish("table", table)

    def SaveTableTSV(self, table: Table, path, **kwargs) -> int:
        """Write a table as TSV; returns the row count."""
        return tables.save_table_tsv(table, path, **kwargs)

    def TableFromColumns(self, data, schema=None) -> Table:
        """Build a table from per-column data (session-pooled)."""
        return Table.from_columns(data, schema=schema, pool=self.pool)

    def TableFromHashMap(self, mapping: Mapping, key_col: str, value_col: str) -> Table:
        """Result map → two-column table (paper §4.1 listing, last line)."""
        return convert.table_from_hashmap(mapping, key_col, value_col, pool=self.pool)

    # ------------------------------------------------------------------
    # Relational operations (§2.3)
    # ------------------------------------------------------------------

    def Select(self, table: Table, predicate, in_place: bool = False) -> Table:
        """Filter rows by predicate string/mask (``'Tag=Java'``)."""
        return tables.select(table, predicate, in_place=in_place)

    @_timed
    def Join(self, left: Table, right: Table, left_col, right_col=None, **kwargs) -> Table:
        """Inner equi-join; always a new table, clashes suffixed -1/-2.

        Under a session memory budget the join's estimated materialisation
        is admission-checked first; an over-budget join raises
        :class:`~repro.exceptions.MemoryBudgetError` before any work.
        """
        if self.budget is not None:
            estimated = estimate_join_bytes(
                left.num_rows, right.num_rows, len(left.schema) + len(right.schema)
            )
            # A join has no chunked strategy, so a "degrade" budget only
            # records the admission; strict budgets refuse outright.
            self.budget.admit("Join", estimated)
        joined = tables.join(left, right, left_col, right_col, **kwargs)
        return self._publish("table", joined)

    def Project(self, table: Table, columns: Sequence[str]) -> Table:
        """Keep only the named columns."""
        return tables.project(table, columns)

    def Rename(self, table: Table, mapping: Mapping[str, str]) -> Table:
        """Rename columns (new table, shared data)."""
        return tables.rename(table, mapping)

    def GroupBy(self, table: Table, keys, aggregations=None) -> Table:
        """Group & aggregate."""
        return tables.group_by(table, keys, aggregations)

    def OrderBy(self, table: Table, keys, ascending: bool = True, in_place: bool = False) -> Table:
        """Sort rows."""
        return tables.order_by(table, keys, ascending=ascending, in_place=in_place)

    def Union(self, left: Table, right: Table, distinct: bool = True) -> Table:
        """Set union (UNION ALL with ``distinct=False``)."""
        return tables.union(left, right, distinct=distinct)

    def Intersect(self, left: Table, right: Table) -> Table:
        """Set intersection."""
        return tables.intersect(left, right)

    def Minus(self, left: Table, right: Table) -> Table:
        """Set difference."""
        return tables.minus(left, right)

    def SimJoin(self, left: Table, right: Table, on, threshold: float, **kwargs) -> Table:
        """Similarity join: rows whose key distance is below threshold."""
        return tables.sim_join(left, right, on, threshold, **kwargs)

    def NextK(self, table: Table, order_col: str, k: int, group_col: str | None = None) -> Table:
        """Temporal predecessor/successor join."""
        return tables.next_k(table, order_col, k, group_col=group_col)

    def Distinct(self, table: Table, columns: Sequence[str] | None = None) -> Table:
        """Unique rows (first occurrence kept)."""
        return tables.distinct(table, columns)

    def Limit(self, table: Table, count: int) -> Table:
        """The first ``count`` rows."""
        return tables.limit(table, count)

    def TopK(self, table: Table, column: str, k: int, ascending: bool = False) -> Table:
        """The ``k`` extreme rows by one column."""
        return tables.top_k(table, column, k, ascending=ascending)

    def ValueCounts(self, table: Table, column: str) -> Table:
        """Distinct values with occurrence counts, descending."""
        return tables.value_counts(table, column)

    def WithColumn(self, table: Table, name: str, expression: str, as_int: bool = False) -> Table:
        """Append a computed column from an arithmetic expression."""
        return tables.with_column(table, name, expression, as_int=as_int)

    def Sample(self, table: Table, count: int, seed: int = 0) -> Table:
        """A uniform random row sample."""
        return tables.sample_rows(table, count, seed=seed)

    # ------------------------------------------------------------------
    # Conversions (§2.4)
    # ------------------------------------------------------------------

    @_timed
    def ToGraph(self, table: Table, src_col: str, dst_col: str, directed: bool = True):
        """Edge table → graph via the sort-first algorithm.

        Under a session memory budget the sort-first build's transient
        allocation is admission-checked; an over-budget conversion either
        raises :class:`~repro.exceptions.MemoryBudgetError` or (with
        ``on_budget_exceeded="degrade"``) falls back to the chunked
        dynamic build. The graph is built privately and published to the
        session catalog only on success.
        """
        start = time.perf_counter()
        if self.budget is not None:
            estimated = estimate_graph_build_bytes(table.num_rows, directed=directed)
            if self.budget.admit("ToGraph", estimated) == ADMIT_DEGRADE:
                for name in (src_col, dst_col):
                    table.schema.require(name)
                graph = convert.chunked_build(
                    table.column(src_col), table.column(dst_col), directed=directed
                )
                self._record_conversion_rates(table.num_rows, graph, start)
                return self._publish("graph", graph)
        graph = convert.to_graph(
            table, src_col, dst_col, directed=directed, pool=self.workers
        )
        self._record_conversion_rates(table.num_rows, graph, start)
        return self._publish("graph", graph)

    def _record_conversion_rates(self, rows: int, graph, start: float) -> None:
        """Fold one ToGraph's throughput into the paper-styled rate
        metrics (rows/s in, edges/s out) when tracing is armed."""
        if not obs.enabled():
            return
        elapsed = time.perf_counter() - start
        obs.observe_rate("engine.tograph.rows", rows, elapsed)
        obs.observe_rate("engine.tograph.edges", graph.num_edges, elapsed)

    @_timed
    def ToWeightedNetwork(
        self, table: Table, src_col: str, dst_col: str,
        weight_col: str | None = None,
    ):
        """Collapse duplicate edges into a weight-attributed Network."""
        return convert.weighted_network_from_edges(
            table, src_col, dst_col, weight_col=weight_col
        )

    @_timed
    def GetKTruss(self, graph, k: int):
        """The k-truss subgraph (edges with >= k-2 triangle supports)."""
        self._snapshot(graph)
        return alg.k_truss(graph, k)

    @_timed
    def GetEdgeTable(self, graph) -> Table:
        """Graph → edge table (partitioned parallel writer)."""
        start = time.perf_counter()
        table = convert.to_edge_table(graph, pool=self.workers, string_pool=self.pool)
        if obs.enabled():
            obs.observe_rate(
                "engine.edge_export.edges", table.num_rows,
                time.perf_counter() - start,
            )
        return table

    @_timed
    def GetNodeTable(self, graph, include_degrees: bool = False) -> Table:
        """Graph → node table, optionally with degree columns."""
        return convert.to_node_table(
            graph, include_degrees=include_degrees,
            pool=self.workers, string_pool=self.pool,
        )

    # ------------------------------------------------------------------
    # Graph analytics (§2.2's algorithm surface, paper-named)
    # ------------------------------------------------------------------

    @_timed
    def GetPageRank(self, graph, **kwargs) -> dict[int, float]:
        """PageRank scores (the demo's expert-ranking step)."""
        self._snapshot(graph)
        return alg.pagerank(graph, **kwargs)

    @_timed
    def GetHits(self, graph, **kwargs) -> tuple[dict[int, float], dict[int, float]]:
        """HITS ``(hubs, authorities)``."""
        self._snapshot(graph)
        return alg.hits(graph, **kwargs)

    @_timed
    def GetTriangles(self, graph) -> int:
        """Total distinct triangles (Table 3's second benchmark)."""
        self._snapshot(graph)
        return alg.total_triangles(graph, pool=self.workers)

    @_timed
    def GetTriangleCounts(self, graph) -> dict[int, int]:
        """Per-node triangle participation counts."""
        self._snapshot(graph)
        return alg.triangle_counts(graph, pool=self.workers)

    @_timed
    def GetClusteringCoefficients(self, graph) -> dict[int, float]:
        """Local clustering coefficient per node."""
        self._snapshot(graph)
        return alg.clustering_coefficients(graph)

    @_timed
    def GetKCore(self, graph, k: int):
        """The k-core subgraph (Table 6 benchmarks ``k=3``)."""
        self._snapshot(graph)
        return alg.k_core(graph, k)

    @_timed
    def GetCoreNumbers(self, graph) -> dict[int, int]:
        """Core number per node."""
        self._snapshot(graph)
        return alg.core_numbers(graph)

    @_timed
    def GetSssp(self, graph, source: int, weight=None) -> dict[int, float]:
        """Single-source shortest paths (Table 6's SSSP)."""
        self._snapshot(graph)
        return alg.dijkstra(graph, source, weight=weight)

    @_timed
    def GetBfsLevels(self, graph, source: int, direction: str = "out") -> dict[int, int]:
        """BFS hop distances from a source."""
        self._snapshot(graph)
        return alg.bfs_levels(graph, source, direction=direction)

    @_timed
    def GetScc(self, graph) -> dict[int, int]:
        """Strongly connected component labels (Table 6's SCC)."""
        self._snapshot(graph)
        return alg.strongly_connected_components(graph)

    @_timed
    def GetWcc(self, graph) -> dict[int, int]:
        """Weakly connected component labels."""
        self._snapshot(graph)
        return alg.weakly_connected_components(graph)

    @_timed
    def GetDegreeCentrality(self, graph, mode: str = "total") -> dict[int, float]:
        """Degree centrality."""
        self._snapshot(graph)
        return alg.degree_centrality(graph, mode)

    @_timed
    def GetCommunities(self, graph, **kwargs) -> dict[int, int]:
        """Label-propagation communities."""
        self._snapshot(graph)
        return alg.label_propagation(graph, **kwargs)

    @_timed
    def GetDiameter(self, graph, **kwargs) -> int:
        """(Sampled) diameter."""
        self._snapshot(graph)
        return alg.diameter(graph, **kwargs)

    @_timed
    def GetEffectiveDiameter(self, graph, **kwargs) -> float:
        """(Sampled) 90th-percentile effective diameter."""
        self._snapshot(graph)
        return alg.effective_diameter(graph, **kwargs)

    @_timed
    def GetDegreeDistribution(self, graph, mode: str = "total") -> Table:
        """Degree histogram as a session table."""
        self._snapshot(graph)
        return alg.degree_distribution(graph, mode)

    def GenRMat(self, scale: int, num_edges: int, seed: int = 0, directed: bool = True):
        """R-MAT synthetic graph."""
        return alg.rmat(scale, num_edges, seed=seed, directed=directed)

    def GenPrefAttach(self, num_nodes: int, edges_per_node: int, seed: int = 0):
        """Barabási–Albert synthetic graph."""
        return alg.barabasi_albert(num_nodes, edges_per_node, seed=seed)

    def GenErdosRenyi(self, num_nodes: int, num_edges: int, directed: bool = False, seed: int = 0):
        """G(n, m) synthetic graph."""
        return alg.erdos_renyi_gnm(num_nodes, num_edges, directed=directed, seed=seed)

    def GenPlantedPartition(
        self, num_communities: int, community_size: int,
        p_in: float, p_out: float, seed: int = 0,
    ):
        """Planted-partition synthetic graph (community-detection testbed)."""
        return alg.planted_partition(num_communities, community_size, p_in, p_out, seed=seed)

    @_timed
    def GetKatz(self, graph, **kwargs) -> dict[int, float]:
        """Katz centrality."""
        self._snapshot(graph)
        return alg.katz_centrality(graph, **kwargs)

    @_timed
    def GetTriadCensus(self, graph) -> dict[str, int]:
        """The 16-class directed triad census."""
        self._snapshot(graph)
        return alg.triad_census(graph)

    @_timed
    def GetArticulationPoints(self, graph) -> set[int]:
        """Cut vertices of the undirected projection."""
        self._snapshot(graph)
        return alg.articulation_points(graph)

    @_timed
    def GetBridges(self, graph) -> set[tuple[int, int]]:
        """Cut edges of the undirected projection."""
        self._snapshot(graph)
        return alg.bridges(graph)

    @_timed
    def GetColoring(self, graph, strategy: str = "degree") -> dict[int, int]:
        """Greedy proper node colouring."""
        self._snapshot(graph)
        return alg.greedy_coloring(graph, strategy)

    @_timed
    def IsBipartite(self, graph) -> bool:
        """Whether the undirected projection is 2-colourable."""
        self._snapshot(graph)
        return alg.is_bipartite(graph)

    @_timed
    def GetLinkPredictions(self, graph, k: int = 10, scorer=None) -> list:
        """Top-k predicted links by a similarity index (Jaccard default)."""
        if scorer is None:
            scorer = alg.jaccard_coefficient
        self._snapshot(graph)
        return alg.top_predicted_links(graph, scorer=scorer, k=k)

    @_timed
    def GetWeightedPageRank(self, network, weight_attr: str, **kwargs) -> dict[int, float]:
        """PageRank with rank spread proportional to edge weights."""
        self._snapshot(network)
        return alg.pagerank_weighted(network, weight_attr, **kwargs)

    def GetEgonet(self, graph, center: int, radius: int = 1, direction: str = "both"):
        """The induced subgraph around one node."""
        from repro.graphs.ops import ego_network

        return ego_network(graph, center, radius=radius, direction=direction)

    def Describe(self, table: Table) -> Table:
        """Per-column summary statistics."""
        return tables.describe(table, pool=self.pool)

    def Crosstab(self, table: Table, row_col: str, col_col: str, agg: str = "count", value_col: str | None = None) -> Table:
        """Wide-format cross-tabulation of two key columns."""
        return tables.crosstab(table, row_col, col_col, agg=agg, value_col=value_col)

    def Quantiles(self, table: Table, column: str, probabilities) -> list[float]:
        """Quantiles of a numeric column."""
        return tables.quantiles(table, column, probabilities)

    @_timed
    def GetMaxFlow(self, graph, source: int, sink: int, capacity=None) -> float:
        """Maximum s-t flow (Dinic)."""
        self._snapshot(graph)
        return alg.max_flow(graph, source, sink, capacity=capacity)

    @_timed
    def GetMinCut(self, graph, source: int, sink: int, capacity=None) -> tuple[set[int], set[int]]:
        """Minimum s-t cut node partition."""
        self._snapshot(graph)
        return alg.min_cut_partition(graph, source, sink, capacity=capacity)

    @_timed
    def GetMatching(self, graph) -> dict[int, int]:
        """Maximum bipartite matching (Hopcroft-Karp)."""
        self._snapshot(graph)
        return alg.hopcroft_karp(graph)

    @_timed
    def ToCoOccurrenceGraph(
        self, table: Table, group_col: str, actor_col: str,
        max_group_size: int | None = None,
    ):
        """Link actors sharing a group value (§4.1's alternative build)."""
        return convert.co_occurrence_graph(
            table, group_col, actor_col,
            max_group_size=max_group_size, pool=self.workers,
        )

    def GetSnapshots(
        self, table: Table, time_col: str, src_col: str, dst_col: str,
        window: float, cumulative: bool = False,
    ):
        """Time-windowed interaction graphs from an event table."""
        from repro.workflows.temporal import temporal_snapshots

        return temporal_snapshots(
            table, time_col, src_col, dst_col, window, cumulative=cumulative
        )

    @_timed
    def FindCycle(self, graph) -> "list[int] | None":
        """One directed cycle (closed node list), or None."""
        self._snapshot(graph)
        return alg.find_cycle(graph)

    @_timed
    def GetGirth(self, graph) -> "int | None":
        """Shortest cycle length of the undirected projection."""
        self._snapshot(graph)
        return alg.girth(graph)

    @_timed
    def GetSpectralBisection(self, graph, seed: int = 0) -> tuple[set[int], set[int]]:
        """Two-way partition by the Fiedler vector's sign."""
        self._snapshot(graph)
        return alg.spectral_bisection(graph, seed=seed)

    @_timed
    def GetAlgebraicConnectivity(self, graph, seed: int = 0) -> float:
        """Second-smallest Laplacian eigenvalue."""
        self._snapshot(graph)
        return alg.algebraic_connectivity(graph, seed=seed)

    def GenConfigurationModel(self, degrees, seed: int = 0):
        """Random graph approximating a degree sequence."""
        return alg.configuration_model(degrees, seed=seed)

    def Rewire(self, graph, swaps: int | None = None, seed: int = 0):
        """Degree-preserving double-edge-swap null model."""
        return alg.rewire(graph, swaps=swaps, seed=seed)

    def SaveTableBinary(self, table: Table, path) -> None:
        """Snapshot a table to a binary .npz archive."""
        tables.save_table_npz(table, path)

    def LoadTableBinary(self, path) -> Table:
        """Load a binary table snapshot (session-pooled)."""
        table = tables.load_table_npz(path, pool=self.pool)
        return self._publish("table", table)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def workers_info(self) -> dict:
        """The worker pool's configuration and lifetime execution counters."""
        info: dict = {
            "workers": self.workers.workers,
            "mode": "serial" if self.workers.workers == 1 else "threads",
            "closed": self.workers.closed,
            "retry_policy": (
                None
                if self.workers.retry_policy is None
                else {
                    "max_attempts": self.workers.retry_policy.max_attempts,
                    "base_delay": self.workers.retry_policy.base_delay,
                }
            ),
        }
        info.update(self.workers.stats.snapshot())
        return info

    def call_timings(self) -> dict:
        """Per-method call counts and cumulative seconds.

        Every timed analytics/conversion method contributes
        ``{"calls": n, "seconds": total}`` under its own name; the warm
        repeat of an algorithm on an unchanged graph shows up here as a
        second call that took a fraction of the first.
        """
        with self._timings_lock:
            return {name: dict(entry) for name, entry in self._timings.items()}

    def health(self) -> dict:
        """One structured snapshot of the session's resilience state.

        Reports worker downgrades/retries/timeouts, memory-budget
        admissions and denials, the published-object count, the snapshot
        cache's hit/miss/invalidation/byte counters, the per-call timing
        totals, the correctness-tooling counters (race detector and
        snapshot sanitizer under ``"analysis"``), and the observability
        layer's span/metric state under ``"obs"`` — the session-level
        view an operator (or a test) checks after a fault or when
        validating conversion reuse.

        The returned structure is a deep copy: callers may mutate it
        freely without reaching back into live engine state.
        """
        detector = _races.current()
        report = {
            "workers": self.workers_info(),
            "memory_budget": None if self.budget is None else self.budget.snapshot(),
            "snapshot_cache": self._snapshot_cache.stats(),
            "analysis": {
                "race_detector": None if detector is None else detector.stats(),
                "sanitizer": _sanitize.stats(),
            },
            "obs": self._obs_report(),
            "timings": self.call_timings(),
            "objects": {
                "published": len(self._catalog),
                "names": list(self._catalog),
            },
        }
        # Sub-providers mostly hand back fresh dicts already, but some
        # nest lists (race labels, object names) or may evolve to share
        # state; one deep copy here makes the no-live-references
        # contract unconditional.
        return copy.deepcopy(report)

    def _obs_report(self) -> dict:
        """The ``health()["obs"]`` section: spans, metrics, derived ratios."""
        tracer = obs.current_tracer()
        cache = self._snapshot_cache.stats()
        lookups = cache["hits"] + cache["misses"] + cache["invalidations"]
        report: dict = {
            "enabled": tracer is not None,
            "spans": None if tracer is None else tracer.stats(),
            "metrics": obs.registry().snapshot(),
            "derived": {
                "snapshot_hit_ratio": (
                    cache["hits"] / lookups if lookups else None
                ),
            },
        }
        return report

    def profile(self, min_total_s: float = 0.0) -> str:
        """Render the recorded span tree with per-node self/total times.

        Requires tracing (``Ringo(trace=True)`` / ``RINGO_TRACE``); the
        report covers whatever the tracer's in-memory recorder currently
        retains, newest-capacity-bounded (see
        :class:`repro.obs.RingBufferSink`).
        """
        tracer = obs.current_tracer()
        if tracer is None:
            return "(tracing is not enabled — pass Ringo(trace=True) or set RINGO_TRACE=1)"
        return obs.render_profile(tracer.ring_records(), min_total_s=min_total_s)

    def Functions(self, category: str | None = None) -> list[str]:
        """Registered function names (optionally one category)."""
        return self.registry.names(category)

    def NumFunctions(self) -> int:
        """Size of the analytics surface — the paper's "over 200" claim."""
        return len(self.registry)
