"""The Ringo session — the paper's Python front-end (paper §2.5, §4.1).

One :class:`Ringo` object plays the role of the ``ringo`` module in the
paper's demo listing; its methods keep the paper's exact names and call
shapes::

    ringo = Ringo()
    P  = ringo.LoadTableTSV(schema, 'posts.tsv')
    JP = ringo.Select(P, 'Tag=Java')
    Q  = ringo.Select(JP, 'Type=question')
    A  = ringo.Select(JP, 'Type=answer')
    QA = ringo.Join(Q, A, 'AnswerId', 'PostId')
    G  = ringo.ToGraph(QA, 'UserId-1', 'UserId-2')
    PR = ringo.GetPageRank(G)
    S  = ringo.TableFromHashMap(PR, 'User', 'Scr')

The session owns a shared string pool (so every table it creates is
join-compatible) and a worker pool (the §2.5 OpenMP stand-in) used by
the parallel operations.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro import algorithms as alg
from repro import convert, tables
from repro.core.registry import FunctionRegistry, build_default_registry
from repro.memory.budget import (
    ADMIT_DEGRADE,
    MemoryBudget,
    estimate_graph_build_bytes,
    estimate_join_bytes,
)
from repro.parallel.executor import WorkerPool
from repro.parallel.resilience import RetryPolicy
from repro.tables.schema import Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table


class Ringo:
    """An interactive analytics session.

    ``memory_budget`` caps the estimated transient allocation of big
    conversions and joins (bytes, or a pre-built
    :class:`~repro.memory.budget.MemoryBudget`); ``on_budget_exceeded``
    picks between failing fast (``"raise"``) and degrading to chunked
    execution (``"degrade"``). ``retry_policy`` arms the worker pool's
    transparent retries of :class:`~repro.exceptions.TransientError`.

    Objects built by the session are published to its catalog only after
    a build fully succeeds, so a mid-build failure never leaves a
    partial table or graph visible through :meth:`Objects`.

    >>> ringo = Ringo(workers=1)
    >>> table = ringo.TableFromColumns({"a": [1, 2], "b": [2, 3]})
    >>> graph = ringo.ToGraph(table, "a", "b")
    >>> graph.num_edges
    2
    """

    def __init__(
        self,
        workers: int | None = None,
        memory_budget: "MemoryBudget | int | None" = None,
        on_budget_exceeded: str = "raise",
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.pool = StringPool()
        self.workers = WorkerPool(workers, retry_policy=retry_policy)
        self.budget = MemoryBudget.coerce(memory_budget, on_exceed=on_budget_exceeded)
        self.registry: FunctionRegistry = build_default_registry()
        self._catalog: dict[str, object] = {}
        self._publish_counter = 0

    # ------------------------------------------------------------------
    # Catalog: atomic publish of session-built objects
    # ------------------------------------------------------------------

    def _publish(self, kind: str, obj):
        """Register a fully built object; called only after success."""
        self._publish_counter += 1
        self._catalog[f"{kind}-{self._publish_counter}"] = obj
        return obj

    def Objects(self) -> list[str]:
        """Names of objects the session has successfully published."""
        return list(self._catalog)

    def GetObject(self, name: str):
        """Look up a published object by catalog name."""
        return self._catalog[name]

    def close(self) -> None:
        """Shut down the worker pool."""
        self.workers.close()

    def __enter__(self) -> "Ringo":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Table input/output
    # ------------------------------------------------------------------

    def LoadTableTSV(self, schema, path, **kwargs) -> Table:
        """Load a TSV file into a table (paper §4.1 listing, line 1)."""
        table = tables.load_table_tsv(schema, path, pool=self.pool, **kwargs)
        return self._publish("table", table)

    def SaveTableTSV(self, table: Table, path, **kwargs) -> int:
        """Write a table as TSV; returns the row count."""
        return tables.save_table_tsv(table, path, **kwargs)

    def TableFromColumns(self, data, schema=None) -> Table:
        """Build a table from per-column data (session-pooled)."""
        return Table.from_columns(data, schema=schema, pool=self.pool)

    def TableFromHashMap(self, mapping: Mapping, key_col: str, value_col: str) -> Table:
        """Result map → two-column table (paper §4.1 listing, last line)."""
        return convert.table_from_hashmap(mapping, key_col, value_col, pool=self.pool)

    # ------------------------------------------------------------------
    # Relational operations (§2.3)
    # ------------------------------------------------------------------

    def Select(self, table: Table, predicate, in_place: bool = False) -> Table:
        """Filter rows by predicate string/mask (``'Tag=Java'``)."""
        return tables.select(table, predicate, in_place=in_place)

    def Join(self, left: Table, right: Table, left_col, right_col=None, **kwargs) -> Table:
        """Inner equi-join; always a new table, clashes suffixed -1/-2.

        Under a session memory budget the join's estimated materialisation
        is admission-checked first; an over-budget join raises
        :class:`~repro.exceptions.MemoryBudgetError` before any work.
        """
        if self.budget is not None:
            estimated = estimate_join_bytes(
                left.num_rows, right.num_rows, len(left.schema) + len(right.schema)
            )
            # A join has no chunked strategy, so a "degrade" budget only
            # records the admission; strict budgets refuse outright.
            self.budget.admit("Join", estimated)
        joined = tables.join(left, right, left_col, right_col, **kwargs)
        return self._publish("table", joined)

    def Project(self, table: Table, columns: Sequence[str]) -> Table:
        """Keep only the named columns."""
        return tables.project(table, columns)

    def Rename(self, table: Table, mapping: Mapping[str, str]) -> Table:
        """Rename columns (new table, shared data)."""
        return tables.rename(table, mapping)

    def GroupBy(self, table: Table, keys, aggregations=None) -> Table:
        """Group & aggregate."""
        return tables.group_by(table, keys, aggregations)

    def OrderBy(self, table: Table, keys, ascending: bool = True, in_place: bool = False) -> Table:
        """Sort rows."""
        return tables.order_by(table, keys, ascending=ascending, in_place=in_place)

    def Union(self, left: Table, right: Table, distinct: bool = True) -> Table:
        """Set union (UNION ALL with ``distinct=False``)."""
        return tables.union(left, right, distinct=distinct)

    def Intersect(self, left: Table, right: Table) -> Table:
        """Set intersection."""
        return tables.intersect(left, right)

    def Minus(self, left: Table, right: Table) -> Table:
        """Set difference."""
        return tables.minus(left, right)

    def SimJoin(self, left: Table, right: Table, on, threshold: float, **kwargs) -> Table:
        """Similarity join: rows whose key distance is below threshold."""
        return tables.sim_join(left, right, on, threshold, **kwargs)

    def NextK(self, table: Table, order_col: str, k: int, group_col: str | None = None) -> Table:
        """Temporal predecessor/successor join."""
        return tables.next_k(table, order_col, k, group_col=group_col)

    def Distinct(self, table: Table, columns: Sequence[str] | None = None) -> Table:
        """Unique rows (first occurrence kept)."""
        return tables.distinct(table, columns)

    def Limit(self, table: Table, count: int) -> Table:
        """The first ``count`` rows."""
        return tables.limit(table, count)

    def TopK(self, table: Table, column: str, k: int, ascending: bool = False) -> Table:
        """The ``k`` extreme rows by one column."""
        return tables.top_k(table, column, k, ascending=ascending)

    def ValueCounts(self, table: Table, column: str) -> Table:
        """Distinct values with occurrence counts, descending."""
        return tables.value_counts(table, column)

    def WithColumn(self, table: Table, name: str, expression: str, as_int: bool = False) -> Table:
        """Append a computed column from an arithmetic expression."""
        return tables.with_column(table, name, expression, as_int=as_int)

    def Sample(self, table: Table, count: int, seed: int = 0) -> Table:
        """A uniform random row sample."""
        return tables.sample_rows(table, count, seed=seed)

    # ------------------------------------------------------------------
    # Conversions (§2.4)
    # ------------------------------------------------------------------

    def ToGraph(self, table: Table, src_col: str, dst_col: str, directed: bool = True):
        """Edge table → graph via the sort-first algorithm.

        Under a session memory budget the sort-first build's transient
        allocation is admission-checked; an over-budget conversion either
        raises :class:`~repro.exceptions.MemoryBudgetError` or (with
        ``on_budget_exceeded="degrade"``) falls back to the chunked
        dynamic build. The graph is built privately and published to the
        session catalog only on success.
        """
        if self.budget is not None:
            estimated = estimate_graph_build_bytes(table.num_rows, directed=directed)
            if self.budget.admit("ToGraph", estimated) == ADMIT_DEGRADE:
                for name in (src_col, dst_col):
                    table.schema.require(name)
                graph = convert.chunked_build(
                    table.column(src_col), table.column(dst_col), directed=directed
                )
                return self._publish("graph", graph)
        graph = convert.to_graph(
            table, src_col, dst_col, directed=directed, pool=self.workers
        )
        return self._publish("graph", graph)

    def ToWeightedNetwork(
        self, table: Table, src_col: str, dst_col: str,
        weight_col: str | None = None,
    ):
        """Collapse duplicate edges into a weight-attributed Network."""
        return convert.weighted_network_from_edges(
            table, src_col, dst_col, weight_col=weight_col
        )

    def GetKTruss(self, graph, k: int):
        """The k-truss subgraph (edges with >= k-2 triangle supports)."""
        return alg.k_truss(graph, k)

    def GetEdgeTable(self, graph) -> Table:
        """Graph → edge table (partitioned parallel writer)."""
        return convert.to_edge_table(graph, pool=self.workers, string_pool=self.pool)

    def GetNodeTable(self, graph, include_degrees: bool = False) -> Table:
        """Graph → node table, optionally with degree columns."""
        return convert.to_node_table(
            graph, include_degrees=include_degrees,
            pool=self.workers, string_pool=self.pool,
        )

    # ------------------------------------------------------------------
    # Graph analytics (§2.2's algorithm surface, paper-named)
    # ------------------------------------------------------------------

    def GetPageRank(self, graph, **kwargs) -> dict[int, float]:
        """PageRank scores (the demo's expert-ranking step)."""
        return alg.pagerank(graph, **kwargs)

    def GetHits(self, graph, **kwargs) -> tuple[dict[int, float], dict[int, float]]:
        """HITS ``(hubs, authorities)``."""
        return alg.hits(graph, **kwargs)

    def GetTriangles(self, graph) -> int:
        """Total distinct triangles (Table 3's second benchmark)."""
        return alg.total_triangles(graph, pool=self.workers)

    def GetTriangleCounts(self, graph) -> dict[int, int]:
        """Per-node triangle participation counts."""
        return alg.triangle_counts(graph, pool=self.workers)

    def GetClusteringCoefficients(self, graph) -> dict[int, float]:
        """Local clustering coefficient per node."""
        return alg.clustering_coefficients(graph)

    def GetKCore(self, graph, k: int):
        """The k-core subgraph (Table 6 benchmarks ``k=3``)."""
        return alg.k_core(graph, k)

    def GetCoreNumbers(self, graph) -> dict[int, int]:
        """Core number per node."""
        return alg.core_numbers(graph)

    def GetSssp(self, graph, source: int, weight=None) -> dict[int, float]:
        """Single-source shortest paths (Table 6's SSSP)."""
        return alg.dijkstra(graph, source, weight=weight)

    def GetBfsLevels(self, graph, source: int, direction: str = "out") -> dict[int, int]:
        """BFS hop distances from a source."""
        return alg.bfs_levels(graph, source, direction=direction)

    def GetScc(self, graph) -> dict[int, int]:
        """Strongly connected component labels (Table 6's SCC)."""
        return alg.strongly_connected_components(graph)

    def GetWcc(self, graph) -> dict[int, int]:
        """Weakly connected component labels."""
        return alg.weakly_connected_components(graph)

    def GetDegreeCentrality(self, graph, mode: str = "total") -> dict[int, float]:
        """Degree centrality."""
        return alg.degree_centrality(graph, mode)

    def GetCommunities(self, graph, **kwargs) -> dict[int, int]:
        """Label-propagation communities."""
        return alg.label_propagation(graph, **kwargs)

    def GetDiameter(self, graph, **kwargs) -> int:
        """(Sampled) diameter."""
        return alg.diameter(graph, **kwargs)

    def GetEffectiveDiameter(self, graph, **kwargs) -> float:
        """(Sampled) 90th-percentile effective diameter."""
        return alg.effective_diameter(graph, **kwargs)

    def GetDegreeDistribution(self, graph, mode: str = "total") -> Table:
        """Degree histogram as a session table."""
        return alg.degree_distribution(graph, mode)

    def GenRMat(self, scale: int, num_edges: int, seed: int = 0, directed: bool = True):
        """R-MAT synthetic graph."""
        return alg.rmat(scale, num_edges, seed=seed, directed=directed)

    def GenPrefAttach(self, num_nodes: int, edges_per_node: int, seed: int = 0):
        """Barabási–Albert synthetic graph."""
        return alg.barabasi_albert(num_nodes, edges_per_node, seed=seed)

    def GenErdosRenyi(self, num_nodes: int, num_edges: int, directed: bool = False, seed: int = 0):
        """G(n, m) synthetic graph."""
        return alg.erdos_renyi_gnm(num_nodes, num_edges, directed=directed, seed=seed)

    def GenPlantedPartition(
        self, num_communities: int, community_size: int,
        p_in: float, p_out: float, seed: int = 0,
    ):
        """Planted-partition synthetic graph (community-detection testbed)."""
        return alg.planted_partition(num_communities, community_size, p_in, p_out, seed=seed)

    def GetKatz(self, graph, **kwargs) -> dict[int, float]:
        """Katz centrality."""
        return alg.katz_centrality(graph, **kwargs)

    def GetTriadCensus(self, graph) -> dict[str, int]:
        """The 16-class directed triad census."""
        return alg.triad_census(graph)

    def GetArticulationPoints(self, graph) -> set[int]:
        """Cut vertices of the undirected projection."""
        return alg.articulation_points(graph)

    def GetBridges(self, graph) -> set[tuple[int, int]]:
        """Cut edges of the undirected projection."""
        return alg.bridges(graph)

    def GetColoring(self, graph, strategy: str = "degree") -> dict[int, int]:
        """Greedy proper node colouring."""
        return alg.greedy_coloring(graph, strategy)

    def IsBipartite(self, graph) -> bool:
        """Whether the undirected projection is 2-colourable."""
        return alg.is_bipartite(graph)

    def GetLinkPredictions(self, graph, k: int = 10, scorer=None) -> list:
        """Top-k predicted links by a similarity index (Jaccard default)."""
        if scorer is None:
            scorer = alg.jaccard_coefficient
        return alg.top_predicted_links(graph, scorer=scorer, k=k)

    def GetWeightedPageRank(self, network, weight_attr: str, **kwargs) -> dict[int, float]:
        """PageRank with rank spread proportional to edge weights."""
        return alg.pagerank_weighted(network, weight_attr, **kwargs)

    def GetEgonet(self, graph, center: int, radius: int = 1, direction: str = "both"):
        """The induced subgraph around one node."""
        from repro.graphs.ops import ego_network

        return ego_network(graph, center, radius=radius, direction=direction)

    def Describe(self, table: Table) -> Table:
        """Per-column summary statistics."""
        return tables.describe(table, pool=self.pool)

    def Crosstab(self, table: Table, row_col: str, col_col: str, agg: str = "count", value_col: str | None = None) -> Table:
        """Wide-format cross-tabulation of two key columns."""
        return tables.crosstab(table, row_col, col_col, agg=agg, value_col=value_col)

    def Quantiles(self, table: Table, column: str, probabilities) -> list[float]:
        """Quantiles of a numeric column."""
        return tables.quantiles(table, column, probabilities)

    def GetMaxFlow(self, graph, source: int, sink: int, capacity=None) -> float:
        """Maximum s-t flow (Dinic)."""
        return alg.max_flow(graph, source, sink, capacity=capacity)

    def GetMinCut(self, graph, source: int, sink: int, capacity=None) -> tuple[set[int], set[int]]:
        """Minimum s-t cut node partition."""
        return alg.min_cut_partition(graph, source, sink, capacity=capacity)

    def GetMatching(self, graph) -> dict[int, int]:
        """Maximum bipartite matching (Hopcroft-Karp)."""
        return alg.hopcroft_karp(graph)

    def ToCoOccurrenceGraph(
        self, table: Table, group_col: str, actor_col: str,
        max_group_size: int | None = None,
    ):
        """Link actors sharing a group value (§4.1's alternative build)."""
        return convert.co_occurrence_graph(
            table, group_col, actor_col,
            max_group_size=max_group_size, pool=self.workers,
        )

    def GetSnapshots(
        self, table: Table, time_col: str, src_col: str, dst_col: str,
        window: float, cumulative: bool = False,
    ):
        """Time-windowed interaction graphs from an event table."""
        from repro.workflows.temporal import temporal_snapshots

        return temporal_snapshots(
            table, time_col, src_col, dst_col, window, cumulative=cumulative
        )

    def FindCycle(self, graph) -> "list[int] | None":
        """One directed cycle (closed node list), or None."""
        return alg.find_cycle(graph)

    def GetGirth(self, graph) -> "int | None":
        """Shortest cycle length of the undirected projection."""
        return alg.girth(graph)

    def GetSpectralBisection(self, graph, seed: int = 0) -> tuple[set[int], set[int]]:
        """Two-way partition by the Fiedler vector's sign."""
        return alg.spectral_bisection(graph, seed=seed)

    def GetAlgebraicConnectivity(self, graph, seed: int = 0) -> float:
        """Second-smallest Laplacian eigenvalue."""
        return alg.algebraic_connectivity(graph, seed=seed)

    def GenConfigurationModel(self, degrees, seed: int = 0):
        """Random graph approximating a degree sequence."""
        return alg.configuration_model(degrees, seed=seed)

    def Rewire(self, graph, swaps: int | None = None, seed: int = 0):
        """Degree-preserving double-edge-swap null model."""
        return alg.rewire(graph, swaps=swaps, seed=seed)

    def SaveTableBinary(self, table: Table, path) -> None:
        """Snapshot a table to a binary .npz archive."""
        tables.save_table_npz(table, path)

    def LoadTableBinary(self, path) -> Table:
        """Load a binary table snapshot (session-pooled)."""
        table = tables.load_table_npz(path, pool=self.pool)
        return self._publish("table", table)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def workers_info(self) -> dict:
        """The worker pool's configuration and lifetime execution counters."""
        info: dict = {
            "workers": self.workers.workers,
            "mode": "serial" if self.workers.workers == 1 else "threads",
            "closed": self.workers.closed,
            "retry_policy": (
                None
                if self.workers.retry_policy is None
                else {
                    "max_attempts": self.workers.retry_policy.max_attempts,
                    "base_delay": self.workers.retry_policy.base_delay,
                }
            ),
        }
        info.update(self.workers.stats.snapshot())
        return info

    def health(self) -> dict:
        """One structured snapshot of the session's resilience state.

        Reports worker downgrades/retries/timeouts, memory-budget
        admissions and denials, and the published-object count — the
        session-level view an operator (or a test) checks after a fault.
        """
        return {
            "workers": self.workers_info(),
            "memory_budget": None if self.budget is None else self.budget.snapshot(),
            "objects": {
                "published": len(self._catalog),
                "names": list(self._catalog),
            },
        }

    def Functions(self, category: str | None = None) -> list[str]:
        """Registered function names (optionally one category)."""
        return self.registry.names(category)

    def NumFunctions(self) -> int:
        """Size of the analytics surface — the paper's "over 200" claim."""
        return len(self.registry)
