"""Function registry — the engine's analytics surface (paper §2.2).

"SNAP provides more than two hundred out-of-the-box graph constructs and
algorithms that are available for use on Ringo['s] in-memory graph data
structure." SNAP reaches that count by shipping each variant as its own
entry point (``GetInDegCnt``/``GetOutDegCnt``/``GetDegCnt``, one
generator per model, one method per graph operation). The registry here
enumerates this engine's surface the same way: every algorithm, every
documented variant, every table operation, every conversion, and every
graph-object operation, each as a named callable with its category and a
one-line description. The test suite asserts the 200+ claim against it.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterator

from repro.exceptions import RingoError


@dataclass(frozen=True)
class RegisteredFunction:
    """One entry in the registry."""

    name: str
    category: str
    func: Callable
    description: str


class FunctionRegistry:
    """A named collection of the engine's callable surface."""

    def __init__(self) -> None:
        self._entries: dict[str, RegisteredFunction] = {}

    def register(self, name: str, func: Callable, category: str) -> None:
        """Register ``func`` under ``name``; duplicate names are an error."""
        if name in self._entries:
            raise RingoError(f"function {name!r} already registered")
        doc = inspect.getdoc(func) or ""
        description = doc.splitlines()[0] if doc else name
        self._entries[name] = RegisteredFunction(name, category, func, description)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def get(self, name: str) -> RegisteredFunction:
        """Look up an entry; raises :class:`RingoError` for unknown names."""
        try:
            return self._entries[name]
        except KeyError:
            raise RingoError(f"unknown function {name!r}")

    def names(self, category: str | None = None) -> list[str]:
        """Sorted entry names, optionally restricted to one category."""
        return sorted(
            name
            for name, entry in self._entries.items()
            if category is None or entry.category == category
        )

    def categories(self) -> dict[str, int]:
        """Entry count per category."""
        counts: dict[str, int] = {}
        for entry in self._entries.values():
            counts[entry.category] = counts.get(entry.category, 0) + 1
        return counts

    def __iter__(self) -> Iterator[RegisteredFunction]:
        return iter(self._entries.values())


def _named_partial(func: Callable, doc: str, /, *args, **kwargs) -> Callable:
    bound = partial(func, *args, **kwargs)
    bound.__doc__ = doc
    return bound


def _group_by_single(aggregate: str, table, keys, column: str, out: str = "Value"):
    """Group by ``keys`` applying one aggregate to ``column``."""
    from repro.tables.groupby import group_by

    return group_by(table, keys, {out: (aggregate, column)})


def _register_graph_methods(registry: FunctionRegistry, cls: type, names: list[str]) -> None:
    for method_name in names:
        method = getattr(cls, method_name)
        camel = "".join(part.capitalize() for part in method_name.split("_"))
        registry.register(f"{cls.__name__}.{camel}", method, "graph-object")


def build_default_registry() -> FunctionRegistry:
    """The full default registry (assembled once per engine)."""
    from repro import algorithms as alg
    from repro import convert, tables
    from repro.graphs.csr import CSRGraph
    from repro.graphs.directed import DirectedGraph
    from repro.graphs.multigraph import DirectedMultigraph
    from repro.graphs.network import Network
    from repro.graphs.undirected import UndirectedGraph
    from repro.graphs import ops as graph_ops
    from repro.graphs import serialize

    registry = FunctionRegistry()

    # --- graph algorithms: every public function -----------------------
    for name in alg.__all__:
        func = getattr(alg, name)
        if callable(func) and not isinstance(func, type):
            registry.register(f"algorithms.{name}", func, "algorithm")

    # --- documented variants, one entry each (SNAP style) --------------
    variant_specs: list[tuple[str, Callable]] = []
    for mode in ("in", "out", "total"):
        variant_specs.append(
            (
                f"GetDegreeCentrality_{mode}",
                _named_partial(
                    alg.degree_centrality,
                    f"Degree centrality using {mode}-degree.",
                    mode=mode,
                ),
            )
        )
        variant_specs.append(
            (
                f"GetDegreeDistribution_{mode}",
                _named_partial(
                    alg.degree_distribution,
                    f"{mode.capitalize()}-degree histogram table.",
                    mode=mode,
                ),
            )
        )
    for direction in ("out", "in", "both"):
        variant_specs.append(
            (
                f"GetBfsLevels_{direction}",
                _named_partial(
                    alg.bfs_levels,
                    f"BFS hop distances following {direction}-edges.",
                    direction=direction,
                ),
            )
        )
    for k in (3, 4, 5):
        variant_specs.append(
            (
                f"Get{k}Core",
                _named_partial(alg.k_core, f"The {k}-core subgraph.", k=k),
            )
        )
    variant_specs.append(
        (
            "GetPageRank_10iter",
            _named_partial(
                alg.pagerank, "PageRank with exactly 10 power iterations.", iterations=10
            ),
        )
    )
    for metric in ("l1", "l2", "linf"):
        variant_specs.append(
            (
                f"SimJoin_{metric}",
                _named_partial(
                    tables.sim_join, f"Similarity join under the {metric} metric.",
                    metric=metric,
                ),
            )
        )
    for aggregate in ("count", "sum", "mean", "min", "max", "first"):
        variant_specs.append(
            (
                f"GroupBy_{aggregate}",
                _named_partial(
                    _group_by_single, f"Group by keys and {aggregate} one column.",
                    aggregate,
                ),
            )
        )
    variant_specs.append(
        (
            "UnionAll",
            _named_partial(tables.union, "Bag union keeping duplicates.", distinct=False),
        )
    )
    variant_specs.append(
        (
            "GetClosenessCentrality_sampled",
            _named_partial(
                alg.closeness_centrality, "Closeness estimated from 64 BFS samples.",
                samples=64,
            ),
        )
    )
    variant_specs.append(
        (
            "GetBetweennessCentrality_sampled",
            _named_partial(
                alg.betweenness_centrality, "Betweenness estimated from 64 pivots.",
                samples=64,
            ),
        )
    )
    for name, func in variant_specs:
        registry.register(f"variants.{name}", func, "algorithm-variant")

    # --- table operations ----------------------------------------------
    table_functions = [
        "select",
        "count_matching",
        "join",
        "project",
        "rename",
        "group_by",
        "group_ids",
        "add_group_column",
        "order_by",
        "union",
        "intersect",
        "minus",
        "sim_join",
        "next_k",
        "load_table_tsv",
        "save_table_tsv",
        "load_table_npz",
        "save_table_npz",
        "parse_predicate",
        "distinct",
        "limit",
        "top_k",
        "value_counts",
        "sample_rows",
        "concat_rows",
        "with_column",
        "evaluate_expression",
        "describe",
        "crosstab",
        "quantiles",
        "infer_schema_tsv",
    ]
    for name in table_functions:
        registry.register(f"tables.{name}", getattr(tables, name), "table")

    # --- conversions -----------------------------------------------------
    for name in convert.__all__:
        registry.register(f"convert.{name}", getattr(convert, name), "conversion")

    # --- structural graph ops and serialization -------------------------
    for name in (
        "subgraph", "remove_self_loops", "filter_by_degree", "renumber",
        "degree_array", "ego_network", "merge_graphs", "intersect_graphs",
    ):
        registry.register(f"graphs.{name}", getattr(graph_ops, name), "graph-op")
    for name in ("save_graph", "load_graph", "save_edge_list", "load_edge_list"):
        registry.register(f"graphs.{name}", getattr(serialize, name), "graph-op")

    # --- graph-object operations (SNAP counts its class methods) --------
    _register_graph_methods(
        registry,
        DirectedGraph,
        [
            "add_node", "add_edge", "del_node", "del_edge", "has_node", "has_edge",
            "out_neighbors", "in_neighbors", "out_degree", "in_degree", "degree",
            "nodes", "edges", "edge_arrays", "node_array", "reverse",
            "to_undirected", "copy", "memory_bytes", "max_node_id",
        ],
    )
    _register_graph_methods(
        registry,
        UndirectedGraph,
        [
            "add_node", "add_edge", "del_node", "del_edge", "has_node", "has_edge",
            "neighbors", "degree", "nodes", "edges", "edge_arrays", "node_array",
            "copy", "memory_bytes", "max_node_id",
        ],
    )
    _register_graph_methods(
        registry,
        Network,
        [
            "set_node_attr", "node_attr", "set_node_attrs", "node_attr_names",
            "iter_node_attr", "set_edge_attr", "edge_attr", "edge_attr_names",
        ],
    )
    _register_graph_methods(
        registry,
        DirectedMultigraph,
        [
            "add_node", "add_edge", "del_edge", "has_edge_id", "edge_endpoints",
            "edge_count", "out_degree", "in_degree", "out_edges", "edges",
            "edge_arrays", "to_simple",
        ],
    )
    _register_graph_methods(
        registry,
        CSRGraph,
        [
            "from_edges", "from_graph", "dense_of", "dense_of_many",
            "dense_of_array", "edge_sources", "num_self_loops",
            "undirected_projection", "forward_adjacency",
            "out_neighbors", "in_neighbors", "out_degrees", "in_degrees",
            "memory_bytes", "with_edge_deleted",
        ],
    )

    # --- Table methods (the fluent surface) ------------------------------
    from repro.tables.table import Table

    _register_graph_methods(
        registry,
        Table,
        [
            "column", "values", "row", "iter_rows", "head", "add_column",
            "drop_column", "rename_column", "clone", "take", "filter_in_place",
            "reorder_in_place", "memory_bytes", "from_columns", "from_rows",
        ],
    )

    # --- the session API itself (paper-named entry points) ---------------
    from repro.core.engine import Ringo

    engine_methods = [
        name
        for name in dir(Ringo)
        if not name.startswith("_") and name not in ("close",)
        and callable(getattr(Ringo, name))
    ]
    for name in engine_methods:
        registry.register(f"ringo.{name}", getattr(Ringo, name), "session")
    return registry
