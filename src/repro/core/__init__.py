"""The Ringo session API (paper §2.5, §4.1)."""

from repro.core.engine import Ringo
from repro.core.registry import (
    FunctionRegistry,
    RegisteredFunction,
    build_default_registry,
)

__all__ = [
    "FunctionRegistry",
    "RegisteredFunction",
    "Ringo",
    "build_default_registry",
]
