"""In-memory object size estimation (paper Table 2).

Table 2 reports "In-memory Graph Size" and "In-memory Table Size" for
each dataset; :func:`object_size_bytes` produces the equivalent numbers
for this engine's objects, and :func:`size_report` renders them in the
table's human units.
"""

from __future__ import annotations

from repro.exceptions import RingoError
from repro.graphs.csr import CSRGraph
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph
from repro.tables.table import Table


def object_size_bytes(obj: object) -> int:
    """Estimated heap bytes held by a Ringo table or graph object."""
    if isinstance(obj, (Table, DirectedGraph, UndirectedGraph, CSRGraph)):
        return obj.memory_bytes()
    raise RingoError(
        f"cannot size a {type(obj).__name__}; expected a Table or graph"
    )


def format_bytes(size: int) -> str:
    """Human units, as Table 2 prints them (e.g. ``0.7GB``, ``23.5MB``).

    GB is used from 0.1GB upward because the paper prints sub-gigabyte
    graph sizes as fractional GB ("0.7GB"), not as megabytes.
    """
    if size < 0:
        raise RingoError(f"size must be non-negative, got {size}")
    if size >= (1 << 30) // 10:
        return f"{size / (1 << 30):.1f}GB"
    for threshold, unit in ((1 << 20, "MB"), (1 << 10, "KB")):
        if size >= threshold:
            return f"{size / threshold:.1f}{unit}"
    return f"{size}B"


def size_report(objects: dict[str, object]) -> str:
    """Multi-line ``name: size`` report for a set of named objects."""
    lines = []
    for name, obj in objects.items():
        lines.append(f"{name}: {format_bytes(object_size_bytes(obj))}")
    return "\n".join(lines)
