"""Peak-memory measurement (paper §3).

"The computation of 10 iterations of PageRank on the Twitter2010 graph
had a memory footprint of 18.3GB ... less than twice the size of the
graph object itself." :func:`peak_footprint` measures the same quantity
for a callable — the peak of *additional* allocations during execution —
using :mod:`tracemalloc`.
"""

from __future__ import annotations

import tracemalloc
from typing import Callable, TypeVar

R = TypeVar("R")


def peak_footprint(operation: Callable[[], R]) -> tuple[R, int]:
    """Run ``operation`` and return ``(result, peak_extra_bytes)``.

    ``peak_extra_bytes`` is the high-water mark of allocations made while
    the operation ran, relative to its starting point. Nested calls are
    not supported (tracemalloc is process-global); if tracing is already
    active, the measurement still works but includes the enclosing
    trace's overhead baseline.

    If the operation raises, the exception still carries the footprint:
    the peak-so-far is attached as ``error.peak_extra_bytes`` and as an
    exception note, so a failed (e.g. budget-killed or faulted) run
    remains diagnosable.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        result = operation()
        _, peak = tracemalloc.get_traced_memory()
    except BaseException as error:
        _, peak = tracemalloc.get_traced_memory()
        extra = max(peak - baseline, 0)
        error.peak_extra_bytes = extra
        error.add_note(f"peak extra memory before failure: {extra} bytes")
        raise
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return result, max(peak - baseline, 0)
