"""Session memory budgets with graceful degradation (paper §3).

Ringo's value proposition is holding everything in RAM; on a shared
big-memory machine the failure mode is an OOM that kills the whole
interactive session. A :class:`MemoryBudget` makes the large transient
allocations — the sort-first conversion's sorted column copies, a join's
materialised output — *admission-controlled*: the engine estimates the
allocation up front (the same arithmetic :mod:`repro.memory.sizeof`
uses for Table 2) and either refuses with a typed
:class:`MemoryBudgetError` or degrades to a slower chunked build whose
transient footprint stays inside the budget.
"""

from __future__ import annotations

import threading

from repro.exceptions import MemoryBudgetError, RingoError

_INT64 = 8

ADMIT_OK = "ok"
ADMIT_DEGRADE = "degrade"


def estimate_graph_build_bytes(num_edges: int, directed: bool = True) -> int:
    """Transient bytes the sort-first build allocates for an edge table.

    Directed builds materialise two sorted copies of both int64 key
    columns (out- and in-adjacency orderings) plus the two lexsort index
    arrays; undirected builds symmetrise first (2x the pairs) but sort
    only once. Adjacency slices then roughly double the surviving pairs.
    """
    if num_edges < 0:
        raise RingoError(f"num_edges must be non-negative, got {num_edges}")
    if directed:
        # 2 sorts x (2 key copies + 1 index array) + adjacency copies.
        transient = 2 * (2 + 1) * num_edges * _INT64 + 2 * num_edges * _INT64
    else:
        sym = 2 * num_edges
        transient = (2 + 1) * sym * _INT64 + sym * _INT64
    return transient


def estimate_join_bytes(
    left_rows: int, right_rows: int, output_columns: int, output_rows: int | None = None
) -> int:
    """Transient bytes an equi-join materialises.

    The sort-probe engine argsorts the right keys and binary-searches the
    left keys, then gathers every output column. Without a known output
    cardinality the estimate assumes one match per left row — callers
    with duplicate-heavy keys can pass the exact ``output_rows``.
    """
    if left_rows < 0 or right_rows < 0:
        raise RingoError("row counts must be non-negative")
    rows = output_rows if output_rows is not None else left_rows
    probe = (left_rows + 3 * right_rows) * _INT64
    gather = rows * max(output_columns, 1) * _INT64
    return probe + gather


class MemoryBudget:
    """A byte ceiling for big transient allocations, with accounting.

    ``on_exceed`` picks the policy: ``"raise"`` (strict — the operation
    fails with :class:`MemoryBudgetError`) or ``"degrade"`` (the engine
    switches to a chunked execution strategy and records the downgrade).

    >>> budget = MemoryBudget(1 << 20)
    >>> budget.admit("ToGraph", 1000)
    'ok'
    >>> budget.admit("ToGraph", 1 << 30)
    Traceback (most recent call last):
        ...
    repro.exceptions.MemoryBudgetError: ToGraph estimated at 1073741824 \
bytes exceeds the session memory budget of 1048576 bytes
    """

    def __init__(self, limit_bytes: int, on_exceed: str = "raise") -> None:
        if limit_bytes <= 0:
            raise RingoError(f"memory budget must be positive, got {limit_bytes}")
        if on_exceed not in ("raise", ADMIT_DEGRADE):
            raise RingoError(
                f"on_exceed must be 'raise' or 'degrade', got {on_exceed!r}"
            )
        self.limit_bytes = int(limit_bytes)
        self.on_exceed = on_exceed
        self._lock = threading.Lock()
        self._admitted = 0
        self._denials = 0
        self._degradations = 0
        self._peak_request = 0

    @classmethod
    def coerce(
        cls, value: "MemoryBudget | int | None", on_exceed: str = "raise"
    ) -> "MemoryBudget | None":
        """Accept a budget object, a raw byte count, or ``None``."""
        if value is None or isinstance(value, MemoryBudget):
            return value
        return cls(int(value), on_exceed=on_exceed)

    def admit(self, operation: str, estimated_bytes: int) -> str:
        """Admission-check one operation's estimated transient allocation.

        Returns ``"ok"`` when it fits, ``"degrade"`` when it does not but
        the policy allows chunked execution; raises
        :class:`MemoryBudgetError` otherwise.
        """
        with self._lock:
            self._peak_request = max(self._peak_request, estimated_bytes)
            if estimated_bytes <= self.limit_bytes:
                self._admitted += 1
                return ADMIT_OK
            if self.on_exceed == ADMIT_DEGRADE:
                self._degradations += 1
                return ADMIT_DEGRADE
            self._denials += 1
        raise MemoryBudgetError(operation, estimated_bytes, self.limit_bytes)

    def snapshot(self) -> dict[str, object]:
        """Accounting for ``Ringo.health()``."""
        with self._lock:
            return {
                "limit_bytes": self.limit_bytes,
                "on_exceed": self.on_exceed,
                "admitted": self._admitted,
                "denials": self._denials,
                "degradations": self._degradations,
                "peak_request_bytes": self._peak_request,
            }
