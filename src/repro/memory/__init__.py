"""Memory accounting (paper §3: Table 2 object sizes and the
"memory footprint < 2x graph size" claim)."""

from repro.memory.footprint import peak_footprint
from repro.memory.sizeof import object_size_bytes, size_report

__all__ = ["object_size_bytes", "peak_footprint", "size_report"]
