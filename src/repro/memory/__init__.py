"""Memory accounting (paper §3: Table 2 object sizes and the
"memory footprint < 2x graph size" claim) and session memory budgets
with graceful degradation."""

from repro.memory.budget import (
    MemoryBudget,
    estimate_graph_build_bytes,
    estimate_join_bytes,
)
from repro.memory.footprint import peak_footprint
from repro.memory.sizeof import object_size_bytes, size_report

__all__ = [
    "MemoryBudget",
    "estimate_graph_build_bytes",
    "estimate_join_bytes",
    "object_size_bytes",
    "peak_footprint",
    "size_report",
]
