"""TSV input/output (paper §2.5 / §4.1, ``ringo.LoadTableTSV``).

The loader accepts the paper's call shape — a schema plus a path — and
accumulates per-column field lists (a column store from the first touch)
before one bulk numpy conversion per column.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.exceptions import CorruptInputError, SchemaError
from repro.faults import active_plan
from repro.obs.spans import trace
from repro.tables.schema import ColumnType, Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table


def _classify(value: str) -> str:
    try:
        int(value)
        return "int"
    except ValueError:
        pass
    try:
        float(value)
        return "float"
    except ValueError:
        return "string"


def infer_schema_tsv(
    path: "str | os.PathLike[str]",
    sep: str = "\t",
    has_header: bool = False,
    comment: str = "#",
    sample_rows: int = 1000,
) -> Schema:
    """Infer a schema from a delimited file's first ``sample_rows`` rows.

    Per column, types widen int → float → string. Column names come
    from the header when ``has_header=True``, else ``col0, col1, ...``.

    >>> import tempfile, os
    >>> fd, name = tempfile.mkstemp(); os.close(fd)
    >>> _ = open(name, "w").write("1\\t2.5\\tabc\\n")
    >>> [t.value for _, t in infer_schema_tsv(name)]
    ['int', 'float', 'string']
    >>> os.unlink(name)
    """
    header: list[str] | None = None
    kinds: list[str] | None = None
    sampled = 0
    rank = {"int": 0, "float": 1, "string": 2}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n").rstrip("\r")
            if not line or (comment and line.startswith(comment)):
                continue
            fields = line.split(sep)
            if has_header and header is None:
                header = fields
                continue
            if kinds is None:
                kinds = ["int"] * len(fields)
            if len(fields) != len(kinds):
                raise SchemaError(
                    f"{path}: inconsistent field count during inference "
                    f"({len(fields)} vs {len(kinds)})"
                )
            for index, field in enumerate(fields):
                kind = _classify(field)
                if rank[kind] > rank[kinds[index]]:
                    kinds[index] = kind
            sampled += 1
            if sampled >= sample_rows:
                break
    if kinds is None:
        raise SchemaError(f"{path}: no data rows to infer a schema from")
    if header is not None:
        if len(header) != len(kinds):
            raise SchemaError(f"{path}: header width disagrees with data")
        names = header
    else:
        names = [f"col{i}" for i in range(len(kinds))]
    return Schema(list(zip(names, kinds)))


def load_table_tsv(
    schema: "Schema | Sequence[tuple[str, object]] | None",
    path: "str | os.PathLike[str]",
    sep: str = "\t",
    has_header: bool = False,
    comment: str = "#",
    pool: StringPool | None = None,
) -> Table:
    """Load a delimited text file into a :class:`Table`.

    Mirrors ``ringo.LoadTableTSV(schema, 'posts.tsv')``. Lines starting
    with ``comment`` and blank lines are skipped; ``has_header=True``
    skips the first data line. Passing ``schema=None`` infers one from
    the file via :func:`infer_schema_tsv`.

    >>> import tempfile, os
    >>> fd, name = tempfile.mkstemp(); os.close(fd)
    >>> _ = open(name, "w").write("1\\tx\\n2\\ty\\n")
    >>> table = load_table_tsv([("id", "int"), ("tag", "string")], name)
    >>> table.num_rows
    2
    >>> os.unlink(name)
    """
    if schema is None:
        schema = infer_schema_tsv(
            path, sep=sep, has_header=has_header, comment=comment
        )
    elif not isinstance(schema, Schema):
        schema = Schema(schema)
    expected_fields = len(schema)
    with trace("io.load_tsv", path=str(path)) as span:
        raw_columns: list[list[str]] = [[] for _ in range(expected_fields)]
        skipped_header = not has_header
        # Hoisted so the per-row fault check costs nothing when no plan is
        # armed (the common case) and one dict lookup when one is.
        fault_plan = active_plan()
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, raw_line in enumerate(handle, start=1):
                terminated = raw_line.endswith("\n")
                line = raw_line.rstrip("\n").rstrip("\r")
                if not line or (comment and line.startswith(comment)):
                    continue
                if not skipped_header:
                    skipped_header = True
                    continue
                if fault_plan is not None:
                    fault_plan.check("io.tsv.parse_row")
                fields = line.split(sep)
                if len(fields) != expected_fields:
                    # A short, unterminated final row is a torn write
                    # (the producer died mid-row), not a schema problem.
                    if not terminated and len(fields) < expected_fields:
                        raise CorruptInputError(
                            os.fspath(path),
                            f"line {line_number}: final row truncated "
                            f"mid-write ({len(fields)} of "
                            f"{expected_fields} fields)",
                        )
                    raise SchemaError(
                        f"{path}:{line_number}: expected {expected_fields} fields, "
                        f"got {len(fields)}"
                    )
                for index, field in enumerate(fields):
                    raw_columns[index].append(field)
        columns: dict[str, object] = {}
        for index, (name, col_type) in enumerate(schema):
            raw = raw_columns[index]
            try:
                if col_type is ColumnType.INT:
                    columns[name] = np.array(raw, dtype=np.int64) if raw else np.empty(0, np.int64)
                elif col_type is ColumnType.FLOAT:
                    columns[name] = np.array(raw, dtype=np.float64) if raw else np.empty(0, np.float64)
                else:
                    columns[name] = raw  # encoded into pool codes by from_columns
            except ValueError as error:
                raise SchemaError(f"column {name!r}: {error}") from None
        table = Table.from_columns(columns, schema=schema, pool=pool)
        span.set_tag("rows", table.num_rows)
        return table


def save_table_tsv(
    table: Table,
    path: "str | os.PathLike[str]",
    sep: str = "\t",
    write_header: bool = False,
) -> int:
    """Write ``table`` as delimited text; returns the number of data rows.

    String cells are decoded; floats use ``repr`` so a round-trip through
    :func:`load_table_tsv` is exact.
    """
    names = table.schema.names
    rendered: list[list[str]] = []
    for name, col_type in table.schema:
        if col_type is ColumnType.STRING:
            rendered.append(table.values(name))
        elif col_type is ColumnType.INT:
            rendered.append([str(v) for v in table.column(name).tolist()])
        else:
            rendered.append([repr(v) for v in table.column(name).tolist()])
    with open(path, "w", encoding="utf-8") as handle:
        if write_header:
            handle.write(sep.join(names) + "\n")
        for row in zip(*rendered):
            handle.write(sep.join(row) + "\n")
    return table.num_rows
