"""Table schemas (paper §2.3).

"Tables in Ringo have a schema, which defines table columns and their
types (integer, floating point, or string)." — exactly those three types
are supported here, mapped onto numpy dtypes. String columns are stored
as int32 codes into a :class:`~repro.tables.strings.StringPool`.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import ColumnNotFoundError, SchemaError


class ColumnType(enum.Enum):
    """The three Ringo column types."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def dtype(self) -> np.dtype:
        """Physical numpy dtype backing columns of this type."""
        if self is ColumnType.INT:
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(np.int32)  # string code

    @classmethod
    def parse(cls, value: "ColumnType | str") -> "ColumnType":
        """Accept a :class:`ColumnType` or its case-insensitive name/value.

        >>> ColumnType.parse("int") is ColumnType.INT
        True
        >>> ColumnType.parse("STRING") is ColumnType.STRING
        True
        """
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError):
            raise SchemaError(f"unknown column type {value!r}; use int, float, or string")

    @classmethod
    def infer(cls, values: Iterable[object]) -> "ColumnType":
        """Infer a column type from Python values (used by ``from_rows``)."""
        saw_float = False
        saw_any = False
        for value in values:
            saw_any = True
            if isinstance(value, bool):
                raise SchemaError("boolean values are not a Ringo column type")
            if isinstance(value, (int, np.integer)):
                continue
            if isinstance(value, (float, np.floating)):
                saw_float = True
                continue
            if isinstance(value, str):
                return cls.STRING
            raise SchemaError(f"cannot infer a column type from value {value!r}")
        if not saw_any:
            raise SchemaError("cannot infer a column type from no values")
        return cls.FLOAT if saw_float else cls.INT


class Schema:
    """An ordered mapping of column names to :class:`ColumnType`.

    >>> schema = Schema([("UserId", "int"), ("Tag", "string")])
    >>> schema.names
    ('UserId', 'Tag')
    >>> schema["Tag"] is ColumnType.STRING
    True
    """

    def __init__(self, columns: Iterable[tuple[str, "ColumnType | str"]]) -> None:
        pairs = [(name, ColumnType.parse(col_type)) for name, col_type in columns]
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {', '.join(duplicates)}")
        for name in names:
            if not name or not isinstance(name, str):
                raise SchemaError(f"invalid column name {name!r}")
        self._types = dict(pairs)
        self._names = tuple(names)

    @property
    def names(self) -> tuple[str, ...]:
        """Column names, in declaration order."""
        return self._names

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[tuple[str, ColumnType]]:
        for name in self._names:
            yield name, self._types[name]

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __getitem__(self, name: str) -> ColumnType:
        try:
            return self._types[name]
        except KeyError:
            raise ColumnNotFoundError(name, self._names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return list(self) == list(other)

    def __repr__(self) -> str:
        cols = ", ".join(f"{name}: {ctype.value}" for name, ctype in self)
        return f"Schema({cols})"

    def require(self, name: str) -> ColumnType:
        """Return the type of ``name`` or raise :class:`ColumnNotFoundError`."""
        return self[name]

    def index_of(self, name: str) -> int:
        """Positional index of a column."""
        self.require(name)
        return self._names.index(name)

    def with_column(self, name: str, col_type: "ColumnType | str") -> "Schema":
        """New schema with ``name`` appended."""
        if name in self._types:
            raise SchemaError(f"column {name!r} already exists")
        return Schema(list(self) + [(name, ColumnType.parse(col_type))])

    def without_column(self, name: str) -> "Schema":
        """New schema with ``name`` removed."""
        self.require(name)
        return Schema([(n, t) for n, t in self if n != name])

    def renamed(self, old: str, new: str) -> "Schema":
        """New schema with column ``old`` renamed to ``new``."""
        self.require(old)
        if new in self._types and new != old:
            raise SchemaError(f"column {new!r} already exists")
        return Schema([(new if n == old else n, t) for n, t in self])

    def select(self, names: Iterable[str]) -> "Schema":
        """New schema restricted to ``names``, in the given order."""
        return Schema([(name, self[name]) for name in names])
