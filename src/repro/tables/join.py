"""Equi-join (paper §2.3, benchmarked in Table 4).

"Ringo join operation always produces a new table object." The engine here
is a vectorised sort-probe join: the right key column is argsorted once,
each left key finds its matching span with two binary searches, and the
output index pairs are materialised without Python-level loops. Name
clashes between the two inputs are resolved by suffixing ``-1`` (left) and
``-2`` (right) — which is exactly why the paper's StackOverflow join ends
up with ``UserId-1`` and ``UserId-2`` columns.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import TypeMismatchError
from repro.faults import fault_point
from repro.obs.spans import trace
from repro.tables.schema import ColumnType, Schema
from repro.tables.table import Table

LEFT_SUFFIX = "-1"
RIGHT_SUFFIX = "-2"
PROVENANCE_LEFT = "SrcRowId"
PROVENANCE_RIGHT = "DstRowId"


def _check_joinable(left: Table, right: Table, left_on: str, right_on: str) -> None:
    left_type = left.schema.require(left_on)
    right_type = right.schema.require(right_on)
    both_string = (left_type is ColumnType.STRING, right_type is ColumnType.STRING)
    if any(both_string) and not all(both_string):
        raise TypeMismatchError(
            f"cannot join {left_on!r} ({left_type.value}) with "
            f"{right_on!r} ({right_type.value})"
        )
    if all(both_string) and left.pool is not right.pool:
        raise TypeMismatchError(
            "string join requires both tables to share a string pool"
        )


def join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs ``(left_idx, right_idx)`` where the keys are equal.

    Pairs are produced for every match (inner join with duplicates),
    ordered by left index then right sort order.
    """
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    right_order = np.argsort(right_keys, kind="stable")
    right_sorted = right_keys[right_order]
    span_lo = np.searchsorted(right_sorted, left_keys, side="left")
    span_hi = np.searchsorted(right_sorted, left_keys, side="right")
    counts = span_hi - span_lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    # Positions into right_sorted: for each matching left row, the run
    # span_lo[i] .. span_hi[i). Built with the cumsum-of-steps trick: each
    # position advances by 1 within a run, and each run's first step jumps
    # from the previous run's last position to this run's span_lo.
    nonzero = counts > 0
    counts_nz = counts[nonzero]
    lo_nz = span_lo[nonzero]
    steps = np.ones(total, dtype=np.int64)
    run_starts = np.concatenate(([0], np.cumsum(counts_nz)[:-1]))
    prev_last = np.concatenate(([0], lo_nz[:-1] + counts_nz[:-1] - 1))
    steps[run_starts] = lo_nz - prev_last
    positions = np.cumsum(steps)
    return left_idx, right_order[positions]


def composite_keys(
    left_columns: Sequence[np.ndarray], right_columns: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Factorise multi-column keys into comparable int64 ids.

    Equal tuples across the two sides get equal ids, so a multi-column
    join reduces to a single-column join on the ids.
    """
    if len(left_columns) != len(right_columns):
        raise TypeMismatchError("key column lists must have equal length")
    n_left = len(left_columns[0]) if left_columns else 0
    stacked = np.column_stack(
        [
            np.concatenate([np.asarray(l), np.asarray(r)])
            for l, r in zip(left_columns, right_columns)
        ]
    )
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.astype(np.int64).reshape(-1)
    return inverse[:n_left], inverse[n_left:]


def join(
    left: Table,
    right: Table,
    left_on: "str | Sequence[str]",
    right_on: "str | Sequence[str] | None" = None,
    include_provenance: bool = False,
    how: str = "inner",
) -> Table:
    """Equi-join of two tables on one or more key columns.

    Always produces a new table (fresh row ids), as Ringo's join does.
    With ``include_provenance=True``, ``SrcRowId``/``DstRowId`` columns
    record which input rows produced each output row — the fine-grained
    data-tracking feature §2.3 highlights.

    ``how`` is ``inner`` (default) or ``left``. A left join keeps
    unmatched left rows; since columns have no null representation,
    their right-side cells are filled with 0 / 0.0 / "" by type (and
    their ``DstRowId`` provenance is -1).

    >>> users = Table.from_columns({"Id": [1, 2], "Name": ["ann", "bo"]})
    >>> posts = Table.from_columns({"UserId": [2, 2, 9]})
    >>> join(users, posts, "Id", "UserId").num_rows
    2
    >>> join(users, posts, "Id", "UserId", how="left").num_rows
    3
    """
    if how not in ("inner", "left"):
        raise TypeMismatchError(f"unknown join type {how!r}; use inner or left")
    left_cols = [left_on] if isinstance(left_on, str) else list(left_on)
    if right_on is None:
        right_cols = list(left_cols)
    else:
        right_cols = [right_on] if isinstance(right_on, str) else list(right_on)
    if len(left_cols) != len(right_cols):
        raise TypeMismatchError("left and right key lists must have equal length")
    if not left_cols:
        raise TypeMismatchError("join needs at least one key column")
    for l_name, r_name in zip(left_cols, right_cols):
        _check_joinable(left, right, l_name, r_name)
    fault_point("join.materialize")
    with trace(
        "table.join", left_rows=left.num_rows, right_rows=right.num_rows, how=how
    ) as span:
        if len(left_cols) == 1:
            left_keys = left.column(left_cols[0])
            right_keys = right.column(right_cols[0])
            if left_keys.dtype != right_keys.dtype:
                left_keys = left_keys.astype(np.float64)
                right_keys = right_keys.astype(np.float64)
            left_idx, right_idx = join_indices(left_keys, right_keys)
        else:
            left_ids, right_ids = composite_keys(
                [left.column(name) for name in left_cols],
                [right.column(name) for name in right_cols],
            )
            left_idx, right_idx = join_indices(left_ids, right_ids)

        unmatched = np.empty(0, dtype=np.int64)
        if how == "left":
            matched_mask = np.zeros(left.num_rows, dtype=bool)
            matched_mask[left_idx] = True
            unmatched = np.flatnonzero(~matched_mask)
            left_idx = np.concatenate([left_idx, unmatched])

        if left.pool is not right.pool:
            has_strings = any(t is ColumnType.STRING for _, t in left.schema) or any(
                t is ColumnType.STRING for _, t in right.schema
            )
            if has_strings:
                raise TypeMismatchError(
                    "joining tables with string columns requires a shared string pool"
                )

        out_schema_cols: list[tuple[str, ColumnType]] = []
        out_columns: dict[str, np.ndarray] = {}
        clashes = set(left.schema.names) & set(right.schema.names)

        def output_name(name: str, suffix: str) -> str:
            return f"{name}{suffix}" if name in clashes else name

        def right_fill(col_type: ColumnType) -> np.ndarray:
            if col_type is ColumnType.STRING:
                code = left.pool.encode("")
                return np.full(len(unmatched), code, dtype=np.int32)
            return np.zeros(len(unmatched), dtype=col_type.dtype)

        for name, col_type in left.schema:
            out_name = output_name(name, LEFT_SUFFIX)
            out_schema_cols.append((out_name, col_type))
            out_columns[out_name] = left._raw_column(name)[left_idx]
        for name, col_type in right.schema:
            out_name = output_name(name, RIGHT_SUFFIX)
            out_schema_cols.append((out_name, col_type))
            matched_values = right._raw_column(name)[right_idx]
            if len(unmatched):
                matched_values = np.concatenate([matched_values, right_fill(col_type)])
            out_columns[out_name] = matched_values
        if include_provenance:
            out_schema_cols.append((PROVENANCE_LEFT, ColumnType.INT))
            out_columns[PROVENANCE_LEFT] = left.row_ids[left_idx]
            out_schema_cols.append((PROVENANCE_RIGHT, ColumnType.INT))
            right_prov = right.row_ids[right_idx]
            if len(unmatched):
                right_prov = np.concatenate(
                    [right_prov, np.full(len(unmatched), -1, dtype=np.int64)]
                )
            out_columns[PROVENANCE_RIGHT] = right_prov
        result = Table(Schema(out_schema_cols), out_columns, pool=left.pool)
        span.set_tag("rows", result.num_rows)
        return result
