"""The column-store table object (paper §2.3).

Ringo "implements tables with a column based store" because "most tabular
operations ... primarily use iterations over columns". Each column is one
contiguous numpy array; string columns hold int32 codes into a shared
:class:`~repro.tables.strings.StringPool`.

"In Ringo each row has a persistent unique identifier. This allows for
fast in-place grouping, filtering and selection. Moreover, identifiers
allow for fine-grained data tracking" — every :class:`Table` carries a
``row_ids`` vector; in-place operations filter it alongside the data, so a
record keeps its identity through a pipeline of operations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import SchemaError, TypeMismatchError
from repro.tables.schema import ColumnType, Schema
from repro.tables.strings import StringPool, default_pool

_PREVIEW_ROWS = 8


class Table:
    """A relational table with typed numpy columns and persistent row ids.

    Most callers build tables through :meth:`from_columns`,
    :func:`repro.tables.io_tsv.load_table_tsv`, or the
    :class:`repro.core.engine.Ringo` session rather than this constructor.

    >>> table = Table.from_columns({"UserId": [1, 2], "Tag": ["java", "c"]})
    >>> table.num_rows
    2
    >>> table.values("Tag")
    ['java', 'c']
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        pool: StringPool | None = None,
        row_ids: np.ndarray | None = None,
    ) -> None:
        self._schema = schema
        self._pool = pool if pool is not None else default_pool()
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, col_type in schema:
            if name not in columns:
                raise SchemaError(f"schema column {name!r} missing from data")
            array = np.ascontiguousarray(columns[name], dtype=col_type.dtype)
            if array.ndim != 1:
                raise SchemaError(f"column {name!r} must be one-dimensional")
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise SchemaError(
                    f"column {name!r} has {len(array)} rows, expected {length}"
                )
            self._columns[name] = array
        extra = set(columns) - set(schema.names)
        if extra:
            raise SchemaError(f"data columns not in schema: {', '.join(sorted(extra))}")
        self._length = length if length is not None else 0
        if row_ids is None:
            row_ids = np.arange(self._length, dtype=np.int64)
        else:
            row_ids = np.ascontiguousarray(row_ids, dtype=np.int64)
            if len(row_ids) != self._length:
                raise SchemaError(
                    f"row_ids has {len(row_ids)} entries, expected {self._length}"
                )
        self._row_ids = row_ids

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        data: Mapping[str, Sequence[object] | np.ndarray],
        schema: Schema | Sequence[tuple[str, object]] | None = None,
        pool: StringPool | None = None,
    ) -> "Table":
        """Build a table from per-column data, inferring types if needed."""
        pool = pool if pool is not None else default_pool()
        if schema is None:
            inferred = []
            for name, values in data.items():
                if isinstance(values, np.ndarray):
                    if np.issubdtype(values.dtype, np.integer):
                        inferred.append((name, ColumnType.INT))
                    elif np.issubdtype(values.dtype, np.floating):
                        inferred.append((name, ColumnType.FLOAT))
                    else:
                        inferred.append((name, ColumnType.STRING))
                else:
                    inferred.append((name, ColumnType.infer(values)))
            schema = Schema(inferred)
        elif not isinstance(schema, Schema):
            schema = Schema(schema)
        columns: dict[str, np.ndarray] = {}
        for name, col_type in schema:
            if name not in data:
                raise SchemaError(f"schema column {name!r} missing from data")
            values = data[name]
            if col_type is ColumnType.STRING and not (
                isinstance(values, np.ndarray) and values.dtype == np.int32
            ):
                columns[name] = pool.encode_many(str(v) for v in values)
            else:
                columns[name] = np.asarray(values, dtype=col_type.dtype)
        return cls(schema, columns, pool=pool)

    @classmethod
    def from_rows(
        cls,
        schema: Schema | Sequence[tuple[str, object]],
        rows: Iterable[Sequence[object]],
        pool: StringPool | None = None,
    ) -> "Table":
        """Build a table from row tuples ordered like the schema."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        materialised = [tuple(row) for row in rows]
        for row in materialised:
            if len(row) != len(schema):
                raise SchemaError(
                    f"row has {len(row)} fields, schema has {len(schema)}"
                )
        data = {
            name: [row[index] for row in materialised]
            for index, name in enumerate(schema.names)
        }
        return cls.from_columns(data, schema=schema, pool=pool)

    @classmethod
    def empty(
        cls,
        schema: Schema | Sequence[tuple[str, object]],
        pool: StringPool | None = None,
    ) -> "Table":
        """A zero-row table with the given schema."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        columns = {
            name: np.empty(0, dtype=col_type.dtype) for name, col_type in schema
        }
        return cls(schema, columns, pool=pool)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def pool(self) -> StringPool:
        """The string pool backing this table's string columns."""
        return self._pool

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._length

    @property
    def num_cols(self) -> int:
        """Number of columns."""
        return len(self._schema)

    def __len__(self) -> int:
        return self._length

    @property
    def row_ids(self) -> np.ndarray:
        """Read-only view of the persistent row identifiers."""
        view = self._row_ids.view()
        view.flags.writeable = False
        return view

    def column(self, name: str) -> np.ndarray:
        """Read-only view of a column's physical array.

        For string columns this is the int32 code array; use
        :meth:`values` for decoded strings.
        """
        self._schema.require(name)
        view = self._columns[name].view()
        view.flags.writeable = False
        return view

    def values(self, name: str) -> "np.ndarray | list[str]":
        """Column contents with strings decoded."""
        col_type = self._schema.require(name)
        if col_type is ColumnType.STRING:
            return self._pool.decode_many(self._columns[name])
        return self.column(name)

    def row(self, index: int) -> dict[str, object]:
        """A single row as a ``{column: value}`` dict (strings decoded)."""
        if not -self._length <= index < self._length:
            raise IndexError(f"row index {index} out of range for {self._length} rows")
        out: dict[str, object] = {}
        for name, col_type in self._schema:
            raw = self._columns[name][index]
            if col_type is ColumnType.STRING:
                out[name] = self._pool.decode(int(raw))
            elif col_type is ColumnType.INT:
                out[name] = int(raw)
            else:
                out[name] = float(raw)
        return out

    def iter_rows(self) -> Iterator[dict[str, object]]:
        """Iterate rows as dicts. Convenient, not fast — use columns in bulk code."""
        for index in range(self._length):
            yield self.row(index)

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}:{t.value}" for n, t in self._schema)
        return f"Table({self._length} rows; {cols})"

    def head(self, count: int = _PREVIEW_ROWS) -> str:
        """A printable preview of the first ``count`` rows."""
        names = self._schema.names
        lines = ["\t".join(names)]
        for index in range(min(count, self._length)):
            row = self.row(index)
            lines.append("\t".join(str(row[name]) for name in names))
        if self._length > count:
            lines.append(f"... ({self._length - count} more rows)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Structural updates
    # ------------------------------------------------------------------

    def add_column(
        self,
        name: str,
        values: Sequence[object] | np.ndarray,
        col_type: ColumnType | str | None = None,
    ) -> None:
        """Append a column in place."""
        if col_type is None:
            if isinstance(values, np.ndarray) and np.issubdtype(values.dtype, np.integer):
                col_type = ColumnType.INT
            elif isinstance(values, np.ndarray) and np.issubdtype(values.dtype, np.floating):
                col_type = ColumnType.FLOAT
            else:
                col_type = ColumnType.infer(values)
        else:
            col_type = ColumnType.parse(col_type)
        if len(values) != self._length:
            raise SchemaError(
                f"column {name!r} has {len(values)} rows, table has {self._length}"
            )
        if col_type is ColumnType.STRING:
            array = self._pool.encode_many(str(v) for v in values)
        else:
            array = np.asarray(values, dtype=col_type.dtype)
        self._schema = self._schema.with_column(name, col_type)
        self._columns[name] = array

    def drop_column(self, name: str) -> None:
        """Remove a column in place."""
        self._schema = self._schema.without_column(name)
        del self._columns[name]

    def rename_column(self, old: str, new: str) -> None:
        """Rename a column in place."""
        self._schema = self._schema.renamed(old, new)
        if old != new:
            self._columns[new] = self._columns.pop(old)

    def clone(self) -> "Table":
        """Deep copy of data (the pool is shared, as in Ringo)."""
        columns = {name: array.copy() for name, array in self._columns.items()}
        return Table(self._schema, columns, pool=self._pool, row_ids=self._row_ids.copy())

    # ------------------------------------------------------------------
    # Row subsetting — the primitives the operators build on
    # ------------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Table":
        """New table containing the given row positions (ids preserved)."""
        indices = np.asarray(indices, dtype=np.int64)
        columns = {name: array[indices] for name, array in self._columns.items()}
        return Table(
            self._schema, columns, pool=self._pool, row_ids=self._row_ids[indices]
        )

    def filter_in_place(self, keep: np.ndarray) -> None:
        """Keep only rows selected by a boolean mask or index array, in place.

        This is the paper's "select in place ... the current table is
        modified": data and row ids shrink together so surviving rows keep
        their identities.
        """
        keep = np.asarray(keep)
        if keep.dtype == np.bool_:
            if len(keep) != self._length:
                raise SchemaError(
                    f"mask has {len(keep)} entries, table has {self._length} rows"
                )
            indices = np.flatnonzero(keep)
        else:
            indices = keep.astype(np.int64)
        for name in self._schema.names:
            self._columns[name] = self._columns[name][indices]
        self._row_ids = self._row_ids[indices]
        self._length = len(indices)

    def reorder_in_place(self, permutation: np.ndarray) -> None:
        """Apply a row permutation in place (used by in-place sort)."""
        permutation = np.asarray(permutation, dtype=np.int64)
        if len(permutation) != self._length:
            raise SchemaError("permutation length must equal the row count")
        for name in self._schema.names:
            self._columns[name] = self._columns[name][permutation]
        self._row_ids = self._row_ids[permutation]

    def _raw_column(self, name: str) -> np.ndarray:
        """Writable internal array — operator modules only."""
        self._schema.require(name)
        return self._columns[name]

    def _replace_columns(
        self, columns: dict[str, np.ndarray], row_ids: np.ndarray
    ) -> None:
        """Swap in new column arrays — operator modules only."""
        lengths = {len(array) for array in columns.values()} | {len(row_ids)}
        if len(lengths) > 1:
            raise SchemaError("replacement columns disagree on length")
        self._columns = columns
        self._row_ids = np.ascontiguousarray(row_ids, dtype=np.int64)
        self._length = len(row_ids)

    # ------------------------------------------------------------------
    # Memory accounting (Table 2)
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Bytes held by column arrays and row ids (pool excluded —
        it is shared across tables, as in Ringo)."""
        total = self._row_ids.nbytes
        for array in self._columns.values():
            total += array.nbytes
        return total

    # ------------------------------------------------------------------
    # Fluent operator façade (implementations live in sibling modules)
    # ------------------------------------------------------------------

    def select(self, predicate: object, in_place: bool = False) -> "Table":
        """Filter rows by a predicate string/AST/mask. See :mod:`repro.tables.select`."""
        from repro.tables.select import select

        return select(self, predicate, in_place=in_place)

    def join(self, other: "Table", left_on: str, right_on: str | None = None, **kwargs) -> "Table":
        """Inner equi-join. See :mod:`repro.tables.join`."""
        from repro.tables.join import join

        return join(self, other, left_on, right_on, **kwargs)

    def project(self, names: Sequence[str]) -> "Table":
        """Keep only ``names``. See :mod:`repro.tables.project`."""
        from repro.tables.project import project

        return project(self, names)

    def group_by(self, keys: Sequence[str] | str, aggregations: Mapping[str, tuple[str, str]] | None = None) -> "Table":
        """Group & aggregate. See :mod:`repro.tables.groupby`."""
        from repro.tables.groupby import group_by

        return group_by(self, keys, aggregations)

    def order_by(self, keys: Sequence[str] | str, ascending: bool = True, in_place: bool = False) -> "Table":
        """Sort rows. See :mod:`repro.tables.order`."""
        from repro.tables.order import order_by

        return order_by(self, keys, ascending=ascending, in_place=in_place)

    def union(self, other: "Table", distinct: bool = True) -> "Table":
        """Set union. See :mod:`repro.tables.setops`."""
        from repro.tables.setops import union

        return union(self, other, distinct=distinct)

    def intersect(self, other: "Table") -> "Table":
        """Set intersection. See :mod:`repro.tables.setops`."""
        from repro.tables.setops import intersect

        return intersect(self, other)

    def minus(self, other: "Table") -> "Table":
        """Set difference. See :mod:`repro.tables.setops`."""
        from repro.tables.setops import minus

        return minus(self, other)


def check_same_layout(left: Table, right: Table) -> None:
    """Require identical schemas and a shared pool (set operations need both)."""
    if left.schema != right.schema:
        raise TypeMismatchError(
            f"tables have different schemas: {left.schema} vs {right.schema}"
        )
    if left.pool is not right.pool:
        raise TypeMismatchError(
            "tables use different string pools; rebuild one with a shared pool"
        )
