"""Crosstab / pivot and quantiles — wide-format summaries for exploration."""

from __future__ import annotations

import numpy as np

from repro.exceptions import SchemaError, TypeMismatchError
from repro.tables.groupby import group_by
from repro.tables.schema import ColumnType, Schema
from repro.tables.table import Table
from repro.util.validation import check_fraction

_CROSSTAB_AGGS = ("count", "sum", "mean")


def crosstab(
    table: Table,
    row_col: str,
    col_col: str,
    agg: str = "count",
    value_col: str | None = None,
) -> Table:
    """Wide-format cross-tabulation of two key columns.

    One output row per distinct ``row_col`` value; one output column per
    distinct ``col_col`` value (stringified, prefixed by the column
    name), holding the count of co-occurrences — or the sum/mean of
    ``value_col`` for ``agg='sum'/'mean'``. Empty cells are 0.

    >>> t = Table.from_columns(
    ...     {"user": [1, 1, 2], "kind": ["q", "a", "q"]})
    >>> wide = crosstab(t, "user", "kind")
    >>> wide.schema.names
    ('user', 'kind=a', 'kind=q')
    >>> wide.column("kind=q").tolist()
    [1, 1]
    """
    if agg not in _CROSSTAB_AGGS:
        raise SchemaError(f"unknown crosstab aggregate {agg!r}; use {_CROSSTAB_AGGS}")
    if agg != "count":
        if value_col is None:
            raise SchemaError(f"agg={agg!r} requires value_col")
        if table.schema.require(value_col) is ColumnType.STRING:
            raise TypeMismatchError(f"cannot {agg} string column {value_col!r}")
    row_type = table.schema.require(row_col)
    table.schema.require(col_col)

    if agg == "count":
        narrow = group_by(table, [row_col, col_col])
        value_name = "Count"
    else:
        narrow = group_by(table, [row_col, col_col], {"Value": (agg, value_col)})
        value_name = "Value"

    row_keys = narrow.column(row_col)
    col_keys = narrow.column(col_col)
    values = narrow.column(value_name).astype(np.float64)

    distinct_rows, row_index = np.unique(row_keys, return_inverse=True)
    distinct_cols, col_index = np.unique(col_keys, return_inverse=True)
    wide = np.zeros((len(distinct_rows), len(distinct_cols)), dtype=np.float64)
    wide[row_index, col_index] = values

    if table.schema[col_col] is ColumnType.STRING:
        col_labels = [table.pool.decode(int(code)) for code in distinct_cols]
        # np.unique ordered by pool code; reorder columns by collation.
        label_order = np.argsort(np.asarray(col_labels, dtype=object))
        col_labels = [col_labels[i] for i in label_order]
        wide = wide[:, label_order]
    else:
        col_labels = [str(int(v)) for v in distinct_cols]

    out_schema: list[tuple[str, ColumnType]] = [(row_col, row_type)]
    out_columns: dict[str, np.ndarray] = {row_col: distinct_rows.astype(row_type.dtype)}
    value_type = ColumnType.INT if agg == "count" else ColumnType.FLOAT
    for position, label in enumerate(col_labels):
        out_name = f"{col_col}={label}"
        if out_name in dict(out_schema):
            raise SchemaError(f"duplicate pivot column {out_name!r}")
        out_schema.append((out_name, value_type))
        column = wide[:, position]
        out_columns[out_name] = (
            column.astype(np.int64) if value_type is ColumnType.INT else column
        )
    return Table(Schema(out_schema), out_columns, pool=table.pool)


def quantiles(
    table: Table, column: str, probabilities: "list[float]"
) -> list[float]:
    """Linear-interpolation quantiles of a numeric column.

    >>> t = Table.from_columns({"x": [1, 2, 3, 4]})
    >>> quantiles(t, "x", [0.0, 0.5, 1.0])
    [1.0, 2.5, 4.0]
    """
    if table.schema.require(column) is ColumnType.STRING:
        raise TypeMismatchError(f"cannot take quantiles of string column {column!r}")
    for p in probabilities:
        check_fraction(p, "probability")
    if table.num_rows == 0:
        raise SchemaError("cannot take quantiles of an empty column")
    values = table.column(column).astype(np.float64)
    return [float(v) for v in np.quantile(values, probabilities)]
