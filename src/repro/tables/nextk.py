"""NextK — temporal predecessor/successor join (paper §2.3).

"NextK ... joins predecessor-successor records": for each record, pair it
with its next (up to) K records in temporal order, optionally restricted
to records sharing a grouping key (e.g. the same user's events). The
typical use is building an interaction graph from an event log — connect
every event to the K events that follow it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SchemaError
from repro.obs.spans import trace
from repro.tables.order import sort_permutation
from repro.tables.schema import ColumnType, Schema
from repro.tables.table import Table
from repro.util.validation import check_positive

LEFT_SUFFIX = "-1"
RIGHT_SUFFIX = "-2"
RANK_COLUMN = "Rank"


def next_k_indices(
    order_values: np.ndarray,
    k: int,
    group_labels: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Predecessor/successor index pairs plus the successor rank (1..k).

    Rows are ordered by ``order_values`` (stable); each row pairs with the
    next ``k`` rows, constrained to identical ``group_labels`` when given.
    Returned indices refer to the *original* row positions.
    """
    check_positive(k, "k")
    count = len(order_values)
    if count == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    if group_labels is not None and len(group_labels) != count:
        raise SchemaError("group labels must align with the order column")
    if group_labels is None:
        order = np.argsort(order_values, kind="stable")
    else:
        order = np.lexsort((order_values, group_labels))
    pred_parts: list[np.ndarray] = []
    succ_parts: list[np.ndarray] = []
    rank_parts: list[np.ndarray] = []
    sorted_groups = group_labels[order] if group_labels is not None else None
    for step in range(1, min(k, count - 1) + 1):
        pred = order[:-step]
        succ = order[step:]
        if sorted_groups is not None:
            same = sorted_groups[:-step] == sorted_groups[step:]
            pred = pred[same]
            succ = succ[same]
        pred_parts.append(pred)
        succ_parts.append(succ)
        rank_parts.append(np.full(len(pred), step, dtype=np.int64))
    if not pred_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    return (
        np.concatenate(pred_parts),
        np.concatenate(succ_parts),
        np.concatenate(rank_parts),
    )


def next_k(
    table: Table,
    order_col: str,
    k: int,
    group_col: str | None = None,
    include_rank: bool = True,
) -> Table:
    """Pair each record with its up-to-``k`` successors in temporal order.

    The output holds every column twice — predecessor columns suffixed
    ``-1``, successor columns ``-2`` — plus a ``Rank`` column (1 = the
    immediately following record). With ``group_col``, successors must
    share the group value, which is how "the next K events *of the same
    user*" is expressed.

    >>> log = Table.from_columns({"t": [1, 2, 3], "node": [10, 20, 30]})
    >>> pairs = next_k(log, "t", k=1)
    >>> sorted(pairs.column("node-1").tolist())
    [10, 20]
    """
    order_type = table.schema.require(order_col)
    if order_type is ColumnType.STRING:
        # Sort by collation, consistent with order_by.
        order_values = sort_permutation(table, order_col).argsort()
    else:
        order_values = table.column(order_col)
    group_labels = None
    if group_col is not None:
        table.schema.require(group_col)
        group_labels = table.column(group_col)
    with trace("table.nextk", rows=table.num_rows, k=k) as _span:
        pred_idx, succ_idx, ranks = next_k_indices(order_values, k, group_labels)
        _span.set_tag("pairs", int(len(pred_idx)))

    out_schema_cols: list[tuple[str, ColumnType]] = []
    out_columns: dict[str, np.ndarray] = {}
    for name, col_type in table.schema:
        out_schema_cols.append((f"{name}{LEFT_SUFFIX}", col_type))
        out_columns[f"{name}{LEFT_SUFFIX}"] = table._raw_column(name)[pred_idx]
    for name, col_type in table.schema:
        out_schema_cols.append((f"{name}{RIGHT_SUFFIX}", col_type))
        out_columns[f"{name}{RIGHT_SUFFIX}"] = table._raw_column(name)[succ_idx]
    if include_rank:
        out_schema_cols.append((RANK_COLUMN, ColumnType.INT))
        out_columns[RANK_COLUMN] = ranks
    return Table(Schema(out_schema_cols), out_columns, pool=table.pool)
