"""Computed columns — arithmetic expressions over columns.

Interactive exploration constantly derives columns (score ratios,
normalised counts); this module evaluates arithmetic expression strings
vectorised over a table's numeric columns::

    with_column(table, "Ratio", "Score / (Views + 1)")

Grammar: ``+ - * / %`` with standard precedence, unary minus,
parentheses, numeric literals, and column names. String columns are not
valid operands.
"""

from __future__ import annotations

import re

import numpy as np

from repro.exceptions import ExpressionError, TypeMismatchError
from repro.tables.schema import ColumnType
from repro.tables.table import Table

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<op>[+\-*/%])
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<word>[A-Za-z_][A-Za-z0-9_.-]*)
    """,
    re.VERBOSE,
)


class _ArithmeticParser:
    """Recursive-descent parser evaluating directly against a table."""

    def __init__(self, text: str, table: Table) -> None:
        self._tokens = self._tokenise(text)
        self._pos = 0
        self._table = table
        self._text = text

    @staticmethod
    def _tokenise(text: str) -> list[tuple[str, str]]:
        tokens = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise ExpressionError(f"cannot tokenise expression at {text[pos:pos + 10]!r}")
            kind = match.lastgroup
            assert kind is not None
            if kind != "ws":
                tokens.append((kind, match.group()))
            pos = match.end()
        return tokens

    def evaluate(self) -> np.ndarray:
        result = self._parse_sum()
        if self._pos != len(self._tokens):
            raise ExpressionError(
                f"unexpected trailing token {self._tokens[self._pos][1]!r}"
            )
        return result

    def _peek_op(self) -> str | None:
        if self._pos < len(self._tokens) and self._tokens[self._pos][0] == "op":
            return self._tokens[self._pos][1]
        return None

    def _advance(self) -> tuple[str, str]:
        if self._pos >= len(self._tokens):
            raise ExpressionError(f"unexpected end of expression: {self._text!r}")
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _parse_sum(self) -> np.ndarray:
        value = self._parse_product()
        while self._peek_op() in ("+", "-"):
            op = self._advance()[1]
            right = self._parse_product()
            value = value + right if op == "+" else value - right
        return value

    def _parse_product(self) -> np.ndarray:
        value = self._parse_unary()
        while self._peek_op() in ("*", "/", "%"):
            op = self._advance()[1]
            right = self._parse_unary()
            if op == "*":
                value = value * right
            elif op == "/":
                with np.errstate(divide="ignore", invalid="ignore"):
                    value = np.true_divide(value, right)
            else:
                with np.errstate(divide="ignore", invalid="ignore"):
                    value = np.mod(value, right)
        return value

    def _parse_unary(self) -> np.ndarray:
        if self._peek_op() == "-":
            self._advance()
            return -self._parse_unary()
        if self._peek_op() == "+":
            self._advance()
            return self._parse_unary()
        return self._parse_atom()

    def _parse_atom(self) -> np.ndarray:
        kind, value = self._advance()
        if kind == "number":
            return np.float64(value) + np.zeros(self._table.num_rows)
        if kind == "lparen":
            inner = self._parse_sum()
            closing = self._advance()
            if closing[0] != "rparen":
                raise ExpressionError("expected closing parenthesis")
            return inner
        if kind == "word":
            col_type = self._table.schema.require(value)
            if col_type is ColumnType.STRING:
                raise TypeMismatchError(
                    f"string column {value!r} cannot appear in arithmetic"
                )
            return self._table.column(value).astype(np.float64)
        raise ExpressionError(f"unexpected token {value!r}")


def evaluate_expression(table: Table, expression: str) -> np.ndarray:
    """Evaluate an arithmetic expression to a float64 array over the table.

    >>> table = Table.from_columns({"a": [1, 2], "b": [10, 20]})
    >>> evaluate_expression(table, "a + b * 2").tolist()
    [21.0, 42.0]
    """
    if not expression or not expression.strip():
        raise ExpressionError("empty expression")
    return _ArithmeticParser(expression, table).evaluate()


def with_column(
    table: Table,
    name: str,
    expression: str,
    as_int: bool = False,
) -> Table:
    """Append a computed column in place and return the table.

    ``as_int=True`` truncates the float result to an integer column.
    """
    values = evaluate_expression(table, expression)
    if as_int:
        table.add_column(name, values.astype(np.int64), ColumnType.INT)
    else:
        table.add_column(name, values, ColumnType.FLOAT)
    return table
