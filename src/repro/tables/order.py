"""Sorting (paper §2.3 "order (sort)").

Multi-key sorts use :func:`numpy.lexsort`, which is stable — equal keys
keep their original relative order, so chained sorts compose the way SQL
``ORDER BY`` users expect.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import SchemaError
from repro.tables.schema import ColumnType
from repro.tables.table import Table


def sort_permutation(
    table: Table, keys: "Sequence[str] | str", ascending: bool = True
) -> np.ndarray:
    """Row permutation that sorts ``table`` by ``keys`` (stable).

    String columns sort lexicographically by decoded value, not by pool
    code (codes reflect interning order, not collation).
    """
    if isinstance(keys, str):
        keys = [keys]
    if not keys:
        raise SchemaError("sort needs at least one key column")
    arrays = []
    for name in keys:
        col_type = table.schema.require(name)
        if col_type is ColumnType.STRING:
            # Rank codes by their decoded strings so code order == collation.
            codes = table.column(name)
            unique_codes = np.unique(codes)
            decoded = [table.pool.decode(int(code)) for code in unique_codes]
            ranks_of_unique = np.argsort(np.argsort(np.asarray(decoded, dtype=object)))
            rank_lookup = dict(zip(unique_codes.tolist(), ranks_of_unique.tolist()))
            arrays.append(np.fromiter(
                (rank_lookup[code] for code in codes.tolist()),
                dtype=np.int64, count=len(codes),
            ))
        else:
            arrays.append(table.column(name))
    # lexsort sorts by the *last* key first; reverse so keys[0] is primary.
    permutation = np.lexsort(tuple(reversed(arrays)))
    if not ascending:
        permutation = permutation[::-1]
    return permutation


def order_by(
    table: Table,
    keys: "Sequence[str] | str",
    ascending: bool = True,
    in_place: bool = False,
) -> Table:
    """Sort rows by ``keys``; in place or as a new table (ids preserved).

    >>> table = Table.from_columns({"x": [3, 1, 2]})
    >>> order_by(table, "x").column("x").tolist()
    [1, 2, 3]
    """
    permutation = sort_permutation(table, keys, ascending=ascending)
    if in_place:
        table.reorder_in_place(permutation)
        return table
    return table.take(permutation)
