"""SimJoin — similarity join (paper §2.3).

"Ringo implements SimJoin, which joins two records if their distance is
smaller than a given threshold." Records join on numeric key columns; the
one-dimensional case runs as a sorted range probe (two binary searches per
left row), the multi-dimensional case uses grid blocking with cell width
equal to the threshold, so only 3^d neighbouring cells are verified.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import TypeMismatchError
from repro.obs.spans import trace
from repro.tables.schema import ColumnType, Schema
from repro.tables.table import Table
from repro.util.validation import check_positive

LEFT_SUFFIX = "-1"
RIGHT_SUFFIX = "-2"
DISTANCE_COLUMN = "Distance"

_METRICS = ("l1", "l2", "linf")


def _numeric_columns(table: Table, names: Sequence[str]) -> np.ndarray:
    arrays = []
    for name in names:
        if table.schema.require(name) is ColumnType.STRING:
            raise TypeMismatchError(f"SimJoin key {name!r} must be numeric")
        arrays.append(table.column(name).astype(np.float64))
    return np.column_stack(arrays)


def _distance(left: np.ndarray, right: np.ndarray, metric: str) -> np.ndarray:
    delta = np.abs(left - right)
    if metric == "l1":
        return delta.sum(axis=1)
    if metric == "l2":
        return np.sqrt((delta * delta).sum(axis=1))
    return delta.max(axis=1)


def sim_join_indices(
    left_points: np.ndarray,
    right_points: np.ndarray,
    threshold: float,
    metric: str = "l1",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index pairs within ``threshold`` plus their distances.

    ``left_points``/``right_points`` are ``(n, d)`` float arrays. Returns
    ``(left_idx, right_idx, distances)`` with strict ``< threshold``
    matching, as the paper specifies ("distance is smaller than a given
    threshold").
    """
    check_positive(threshold, "threshold")
    if metric not in _METRICS:
        raise TypeMismatchError(f"unknown metric {metric!r}; use one of {_METRICS}")
    empty = np.empty(0, dtype=np.int64)
    if len(left_points) == 0 or len(right_points) == 0:
        return empty, empty, np.empty(0, dtype=np.float64)
    dims = left_points.shape[1]
    if dims == 1:
        return _sim_join_1d(left_points[:, 0], right_points[:, 0], threshold)
    return _sim_join_grid(left_points, right_points, threshold, metric)


def _sim_join_1d(
    left: np.ndarray, right: np.ndarray, threshold: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    order = np.argsort(right, kind="stable")
    right_sorted = right[order]
    # The window bounds are computed in floats, so a candidate whose true
    # distance is a hair under the threshold can land exactly on (or one
    # ulp past) ``left ± threshold``. Widen the prefilter by one ulp per
    # side — the exact ``distances < threshold`` filter below decides.
    lo = np.searchsorted(
        right_sorted, np.nextafter(left - threshold, -np.inf), side="left"
    )
    hi = np.searchsorted(
        right_sorted, np.nextafter(left + threshold, np.inf), side="right"
    )
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    left_idx = np.repeat(np.arange(len(left), dtype=np.int64), counts)
    nonzero = counts > 0
    counts_nz = counts[nonzero]
    lo_nz = lo[nonzero]
    steps = np.ones(total, dtype=np.int64)
    run_starts = np.concatenate(([0], np.cumsum(counts_nz)[:-1]))
    prev_last = np.concatenate(([0], lo_nz[:-1] + counts_nz[:-1] - 1))
    steps[run_starts] = lo_nz - prev_last
    positions = np.cumsum(steps)
    right_idx = order[positions]
    distances = np.abs(left[left_idx] - right[right_idx])
    keep = distances < threshold
    return left_idx[keep], right_idx[keep], distances[keep]


def _sim_join_grid(
    left: np.ndarray, right: np.ndarray, threshold: float, metric: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    dims = left.shape[1]
    cells: dict[tuple[int, ...], list[int]] = {}
    right_cells = np.floor(right / threshold).astype(np.int64)
    for index, cell in enumerate(map(tuple, right_cells)):
        cells.setdefault(cell, []).append(index)
    left_cells = np.floor(left / threshold).astype(np.int64)
    neighbour_shifts = np.array(
        np.meshgrid(*([[-1, 0, 1]] * dims), indexing="ij")
    ).reshape(dims, -1).T
    left_out: list[np.ndarray] = []
    right_out: list[np.ndarray] = []
    dist_out: list[np.ndarray] = []
    for index in range(len(left)):
        candidates: list[int] = []
        base = left_cells[index]
        for shift in neighbour_shifts:
            bucket = cells.get(tuple(base + shift))
            if bucket:
                candidates.extend(bucket)
        if not candidates:
            continue
        cand = np.asarray(candidates, dtype=np.int64)
        distances = _distance(left[index][None, :], right[cand], metric)
        keep = distances < threshold
        if keep.any():
            kept = cand[keep]
            left_out.append(np.full(len(kept), index, dtype=np.int64))
            right_out.append(kept)
            dist_out.append(distances[keep])
    if not left_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    return (
        np.concatenate(left_out),
        np.concatenate(right_out),
        np.concatenate(dist_out),
    )


def sim_join(
    left: Table,
    right: Table,
    on: "str | Sequence[str]",
    threshold: float,
    right_on: "str | Sequence[str] | None" = None,
    metric: str = "l1",
    include_distance: bool = False,
) -> Table:
    """Join rows of ``left`` and ``right`` whose key distance is below
    ``threshold``.

    Produces a new table shaped like an equi-join output (clashing names
    suffixed ``-1``/``-2``); ``include_distance=True`` appends a
    ``Distance`` column.

    >>> events = Table.from_columns({"t": [0.0, 5.0]})
    >>> probes = Table.from_columns({"t": [0.4, 9.0]})
    >>> sim_join(events, probes, "t", threshold=1.0).num_rows
    1
    """
    left_names = [on] if isinstance(on, str) else list(on)
    if right_on is None:
        right_names = list(left_names)
    else:
        right_names = [right_on] if isinstance(right_on, str) else list(right_on)
    if len(left_names) != len(right_names):
        raise TypeMismatchError("left and right key lists must have equal length")
    left_points = _numeric_columns(left, left_names)
    right_points = _numeric_columns(right, right_names)
    if metric not in _METRICS:
        raise TypeMismatchError(f"unknown metric {metric!r}; use one of {_METRICS}")
    with trace(
        "table.simjoin",
        left_rows=left.num_rows,
        right_rows=right.num_rows,
        metric=metric,
    ) as _span:
        left_idx, right_idx, distances = sim_join_indices(
            left_points, right_points, threshold, metric
        )
        _span.set_tag("pairs", int(len(left_idx)))

    clashes = set(left.schema.names) & set(right.schema.names)

    def output_name(name: str, suffix: str) -> str:
        return f"{name}{suffix}" if name in clashes else name

    out_schema_cols: list[tuple[str, ColumnType]] = []
    out_columns: dict[str, np.ndarray] = {}
    for name, col_type in left.schema:
        out_name = output_name(name, LEFT_SUFFIX)
        out_schema_cols.append((out_name, col_type))
        out_columns[out_name] = left._raw_column(name)[left_idx]
    for name, col_type in right.schema:
        out_name = output_name(name, RIGHT_SUFFIX)
        out_schema_cols.append((out_name, col_type))
        out_columns[out_name] = right._raw_column(name)[right_idx]
    if include_distance:
        out_schema_cols.append((DISTANCE_COLUMN, ColumnType.FLOAT))
        out_columns[DISTANCE_COLUMN] = distances
    return Table(Schema(out_schema_cols), out_columns, pool=left.pool)
