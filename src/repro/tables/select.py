"""Row selection (paper §2.3, benchmarked in Table 4).

Ringo's benchmarked variant is the *in-place* select, which shrinks the
current table (row ids included) rather than allocating a copy; the
functional variant returning a new table is also provided.
"""

from __future__ import annotations

import numpy as np

from repro.obs.spans import trace
from repro.tables.expressions import Predicate, as_predicate
from repro.tables.table import Table


def select(
    table: Table,
    predicate: "Predicate | str | np.ndarray",
    in_place: bool = False,
) -> Table:
    """Keep rows matching ``predicate``.

    ``predicate`` may be a predicate string (``'Tag=Java'``), a parsed
    :class:`Predicate`, or a boolean mask. With ``in_place=True`` the
    input table itself is filtered and returned (the paper's benchmarked
    mode); otherwise a new table with preserved row ids is returned.

    >>> table = Table.from_columns({"x": [1, 2, 3]})
    >>> select(table, "x >= 2").num_rows
    2
    """
    with trace("table.select", rows=table.num_rows, in_place=in_place) as span:
        mask = as_predicate(predicate).mask(table)
        if in_place:
            table.filter_in_place(mask)
            span.set_tag("kept", table.num_rows)
            return table
        result = table.take(np.flatnonzero(mask))
        span.set_tag("kept", result.num_rows)
        return result


def count_matching(table: Table, predicate: "Predicate | str | np.ndarray") -> int:
    """Number of rows matching ``predicate`` without materialising them."""
    return int(as_predicate(predicate).mask(table).sum())
