"""String interning pool.

SNAP (and therefore Ringo) stores strings once in a pool and keeps int
codes in columns so string columns behave like integer columns: selects
compare codes against one encoded constant, joins join on codes, and the
whole column lives in one contiguous numpy array. A process-wide default
pool makes codes comparable across every table, which is what lets
cross-table operations skip decoding entirely.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

MISSING_CODE = -1
"""Code stored for missing/empty string cells."""


class StringPool:
    """Bidirectional mapping between strings and dense int32 codes.

    >>> pool = StringPool()
    >>> pool.encode("Java")
    0
    >>> pool.encode("Java")
    0
    >>> pool.decode(0)
    'Java'
    """

    def __init__(self) -> None:
        self._codes: dict[str, int] = {}
        self._strings: list[str] = []

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, value: str) -> bool:
        return value in self._codes

    def encode(self, value: str) -> int:
        """Return the code for ``value``, interning it if new."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._strings)
            self._codes[value] = code
            self._strings.append(value)
        return code

    def try_encode(self, value: str) -> int:
        """Return the code for ``value`` or :data:`MISSING_CODE` if unknown.

        Selection predicates use this: comparing a column against a string
        that was never interned must match nothing, not intern the string.
        """
        return self._codes.get(value, MISSING_CODE)

    def decode(self, code: int) -> str:
        """Return the string for ``code``; raises for unknown codes."""
        if code == MISSING_CODE:
            return ""
        if not 0 <= code < len(self._strings):
            raise KeyError(f"unknown string code {code}")
        return self._strings[code]

    def encode_many(self, values: Iterable[str]) -> np.ndarray:
        """Encode an iterable of strings into an int32 code array."""
        encode = self.encode
        return np.fromiter(
            (encode(value) for value in values), dtype=np.int32, count=-1
        )

    def decode_many(self, codes: np.ndarray) -> list[str]:
        """Decode a code array back into a list of strings."""
        strings = self._strings
        return [
            "" if code == MISSING_CODE else strings[code]
            for code in codes.tolist()
        ]

    def memory_bytes(self) -> int:
        """Approximate heap bytes held by the pool (Table 2 accounting)."""
        text = sum(len(value) for value in self._strings)
        # dict + list overhead approximated at 100 bytes/entry, matching
        # CPython's measured per-entry cost for str keys.
        return text + 100 * len(self._strings)


_DEFAULT_POOL = StringPool()


def default_pool() -> StringPool:
    """The process-wide pool shared by tables that don't specify one."""
    return _DEFAULT_POOL
