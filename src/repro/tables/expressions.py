"""Selection predicates (paper §2.3 / §4.1).

Ringo selects rows "based on a comparison with a constant value", written
in the demo as ``ringo.Select(P, 'Tag=Java')``. This module parses that
predicate language into a small AST evaluated vectorised over columns:

* comparisons: ``=`` (or ``==``), ``!=``, ``<``, ``<=``, ``>``, ``>=``
* operands: column names, numeric literals, quoted or bareword strings
* combinators: ``and``/``&``, ``or``/``|``, ``not``, parentheses

A bareword right-hand side that names a column compares two columns;
otherwise it is a string constant, so ``'Type=question'`` works unquoted
exactly as the paper writes it.
"""

from __future__ import annotations

import re
from typing import Callable

import numpy as np

from repro.exceptions import ExpressionError, TypeMismatchError
from repro.tables.schema import ColumnType
from repro.tables.strings import MISSING_CODE
from repro.tables.table import Table

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+\.\d*(?:[eE][+-]?\d+)?|-?\.\d+(?:[eE][+-]?\d+)?|-?\d+(?:[eE][+-]?\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op><=|>=|!=|==|=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<amp>&)
  | (?P<pipe>\|)
  | (?P<word>[A-Za-z_][A-Za-z0-9_.-]*)
    """,
    re.VERBOSE,
)


class Predicate:
    """Base class for predicate AST nodes."""

    def mask(self, table: Table) -> np.ndarray:
        """Boolean keep-mask over the table's rows."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class And(Predicate):
    """Logical conjunction of two predicates."""

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def mask(self, table: Table) -> np.ndarray:
        return self.left.mask(table) & self.right.mask(table)


class Or(Predicate):
    """Logical disjunction of two predicates."""

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def mask(self, table: Table) -> np.ndarray:
        return self.left.mask(table) | self.right.mask(table)


class Not(Predicate):
    """Logical negation of a predicate."""

    def __init__(self, operand: Predicate) -> None:
        self.operand = operand

    def mask(self, table: Table) -> np.ndarray:
        return ~self.operand.mask(table)


_NUMPY_OPS: dict[str, Callable[[np.ndarray, object], np.ndarray]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ORDER_OPS = ("<", "<=", ">", ">=")


class Comparison(Predicate):
    """``column <op> constant`` or ``column <op> column``."""

    def __init__(self, column: str, op: str, operand: object, operand_is_column: bool = False) -> None:
        if op == "==":
            op = "="
        if op not in _NUMPY_OPS:
            raise ExpressionError(f"unsupported operator {op!r}")
        self.column = column
        self.op = op
        self.operand = operand
        self.operand_is_column = operand_is_column

    def __repr__(self) -> str:
        rhs = self.operand if not self.operand_is_column else f"col({self.operand})"
        return f"Comparison({self.column} {self.op} {rhs!r})"

    def mask(self, table: Table) -> np.ndarray:
        left_type = table.schema.require(self.column)
        apply_op = _NUMPY_OPS[self.op]
        if self.operand_is_column:
            return self._column_vs_column(table, left_type, apply_op)
        if left_type is ColumnType.STRING:
            return self._string_vs_constant(table, apply_op)
        if isinstance(self.operand, str):
            raise TypeMismatchError(
                f"cannot compare numeric column {self.column!r} with string "
                f"{self.operand!r}"
            )
        return apply_op(table.column(self.column), self.operand)

    def _column_vs_column(
        self, table: Table, left_type: ColumnType, apply_op: Callable
    ) -> np.ndarray:
        right_name = str(self.operand)
        right_type = table.schema.require(right_name)
        string_sides = (left_type is ColumnType.STRING, right_type is ColumnType.STRING)
        if any(string_sides) and not all(string_sides):
            raise TypeMismatchError(
                f"cannot compare {self.column!r} ({left_type.value}) with "
                f"{right_name!r} ({right_type.value})"
            )
        if all(string_sides) and self.op in _ORDER_OPS:
            left = np.asarray(table.values(self.column), dtype=object)
            right = np.asarray(table.values(right_name), dtype=object)
            return apply_op(left, right).astype(bool)
        return apply_op(table.column(self.column), table.column(right_name))

    def _string_vs_constant(self, table: Table, apply_op: Callable) -> np.ndarray:
        constant = self.operand
        if not isinstance(constant, str):
            raise TypeMismatchError(
                f"cannot compare string column {self.column!r} with {constant!r}"
            )
        codes = table.column(self.column)
        if self.op in ("=", "!="):
            code = table.pool.try_encode(constant)
            if code == MISSING_CODE:
                # The constant was never interned: equality matches nothing.
                full = np.zeros(table.num_rows, dtype=bool)
                return ~full if self.op == "!=" else full
            return apply_op(codes, code)
        decoded = np.asarray(table.values(self.column), dtype=object)
        return apply_op(decoded, constant).astype(bool)


class MaskPredicate(Predicate):
    """Wraps a precomputed boolean mask so APIs accept raw masks uniformly."""

    def __init__(self, mask: np.ndarray) -> None:
        self._mask = np.asarray(mask, dtype=bool)

    def mask(self, table: Table) -> np.ndarray:
        if len(self._mask) != table.num_rows:
            raise ExpressionError(
                f"mask has {len(self._mask)} entries, table has {table.num_rows} rows"
            )
        return self._mask


class _Parser:
    """Recursive-descent parser for the predicate grammar."""

    def __init__(self, text: str) -> None:
        self._tokens = self._tokenise(text)
        self._pos = 0
        self._text = text

    @staticmethod
    def _tokenise(text: str) -> list[tuple[str, str]]:
        tokens = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise ExpressionError(
                    f"cannot tokenise predicate at {text[pos:pos + 10]!r}"
                )
            kind = match.lastgroup
            assert kind is not None
            if kind != "ws":
                tokens.append((kind, match.group()))
            pos = match.end()
        return tokens

    def parse(self) -> Predicate:
        node = self._parse_or()
        if self._pos != len(self._tokens):
            kind, value = self._tokens[self._pos]
            raise ExpressionError(f"unexpected trailing token {value!r}")
        return node

    def _peek(self) -> tuple[str, str] | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _advance(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ExpressionError(f"unexpected end of predicate: {self._text!r}")
        self._pos += 1
        return token

    def _parse_or(self) -> Predicate:
        node = self._parse_and()
        while True:
            token = self._peek()
            if token is None:
                return node
            kind, value = token
            if kind == "pipe" or (kind == "word" and value.lower() == "or"):
                self._advance()
                node = Or(node, self._parse_and())
            else:
                return node

    def _parse_and(self) -> Predicate:
        node = self._parse_not()
        while True:
            token = self._peek()
            if token is None:
                return node
            kind, value = token
            if kind == "amp" or (kind == "word" and value.lower() == "and"):
                self._advance()
                node = And(node, self._parse_not())
            else:
                return node

    def _parse_not(self) -> Predicate:
        token = self._peek()
        if token is not None and token[0] == "word" and token[1].lower() == "not":
            self._advance()
            return Not(self._parse_not())
        if token is not None and token[0] == "lparen":
            self._advance()
            node = self._parse_or()
            closing = self._advance()
            if closing[0] != "rparen":
                raise ExpressionError("expected closing parenthesis")
            return node
        return self._parse_comparison()

    def _parse_comparison(self) -> Predicate:
        kind, value = self._advance()
        if kind != "word":
            raise ExpressionError(f"expected a column name, got {value!r}")
        column = value
        op_kind, op = self._advance()
        if op_kind != "op":
            raise ExpressionError(f"expected a comparison operator, got {op!r}")
        operand_kind, operand = self._advance()
        if operand_kind == "number":
            numeric = float(operand)
            if numeric.is_integer() and "." not in operand and "e" not in operand.lower():
                return Comparison(column, op, int(operand))
            return Comparison(column, op, numeric)
        if operand_kind == "string":
            return Comparison(column, op, operand[1:-1])
        if operand_kind == "word":
            # Resolved at evaluation: column if it names one, else a string
            # constant (the paper's bareword style, 'Tag=Java').
            return _BarewordComparison(column, op, operand)
        raise ExpressionError(f"expected a value or column, got {operand!r}")


class _BarewordComparison(Predicate):
    """Defers bareword resolution (column vs string constant) to evaluation."""

    def __init__(self, column: str, op: str, word: str) -> None:
        self.column = column
        self.op = op
        self.word = word

    def mask(self, table: Table) -> np.ndarray:
        is_column = self.word in table.schema
        return Comparison(
            self.column, self.op, self.word, operand_is_column=is_column
        ).mask(table)


def parse_predicate(text: str) -> Predicate:
    """Parse a predicate string into an evaluable :class:`Predicate`.

    >>> pred = parse_predicate("Age >= 18 and Tag = 'Java'")
    >>> isinstance(pred, Predicate)
    True
    """
    if not text or not text.strip():
        raise ExpressionError("empty predicate")
    return _Parser(text).parse()


def as_predicate(value: "Predicate | str | np.ndarray") -> Predicate:
    """Coerce a string, mask, or Predicate into a :class:`Predicate`."""
    if isinstance(value, Predicate):
        return value
    if isinstance(value, str):
        return parse_predicate(value)
    if isinstance(value, np.ndarray):
        return MaskPredicate(value)
    raise ExpressionError(
        f"cannot interpret {type(value).__name__} as a predicate"
    )
