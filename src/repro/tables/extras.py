"""Convenience table operators layered on the §2.3 primitives.

distinct, limit, top-k, value counts, and row sampling — the small
verbs an interactive exploration session reaches for constantly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import SchemaError
from repro.tables.order import sort_permutation
from repro.tables.schema import ColumnType, Schema
from repro.tables.table import Table
from repro.util.validation import check_non_negative, check_positive


def distinct(table: Table, columns: "Sequence[str] | None" = None) -> Table:
    """Rows that are unique on ``columns`` (all columns by default).

    Keeps the first occurrence, preserving input order and row ids.

    >>> table = Table.from_columns({"x": [1, 1, 2]})
    >>> distinct(table).column("x").tolist()
    [1, 2]
    """
    names = list(columns) if columns is not None else list(table.schema.names)
    if not names:
        raise SchemaError("distinct needs at least one column")
    arrays = [table.column(name) for name in names]
    if len(arrays) == 1:
        _, first = np.unique(arrays[0], return_index=True)
    else:
        stacked = np.column_stack(arrays)
        _, first = np.unique(stacked, axis=0, return_index=True)
    return table.take(np.sort(first))


def limit(table: Table, count: int) -> Table:
    """The first ``count`` rows (all rows when the table is shorter)."""
    check_non_negative(count, "count")
    return table.take(np.arange(min(count, table.num_rows), dtype=np.int64))


def top_k(table: Table, column: str, k: int, ascending: bool = False) -> Table:
    """The ``k`` rows with the largest (default) or smallest values.

    Equivalent to sort + limit but selects before materialising the
    full ordering, so it stays cheap on wide tables.
    """
    check_positive(k, "k")
    permutation = sort_permutation(table, column, ascending=ascending)
    return table.take(permutation[:k])


def value_counts(table: Table, column: str, out: str = "Count") -> Table:
    """Distinct values of ``column`` with occurrence counts, descending.

    >>> table = Table.from_columns({"tag": ["a", "b", "a"]})
    >>> result = value_counts(table, "tag")
    >>> result.values("tag"), result.column("Count").tolist()
    (['a', 'b'], [2, 1])
    """
    col_type = table.schema.require(column)
    values, counts = np.unique(table.column(column), return_counts=True)
    order = np.lexsort((values, -counts))
    schema = Schema([(column, col_type), (out, ColumnType.INT)])
    return Table(
        schema,
        {column: values[order], out: counts[order].astype(np.int64)},
        pool=table.pool,
    )


def sample_rows(table: Table, count: int, seed: int = 0) -> Table:
    """A uniform random sample of ``count`` distinct rows (ids preserved)."""
    check_positive(count, "count")
    if count > table.num_rows:
        raise SchemaError(
            f"cannot sample {count} rows from a {table.num_rows}-row table"
        )
    rng = np.random.default_rng(seed)
    picks = rng.choice(table.num_rows, size=count, replace=False)
    return table.take(np.sort(picks))


def concat_rows(tables: Sequence[Table]) -> Table:
    """Stack tables with identical schemas (row ids renumbered densely)."""
    if not tables:
        raise SchemaError("concat_rows needs at least one table")
    first = tables[0]
    for other in tables[1:]:
        if other.schema != first.schema:
            raise SchemaError("all tables must share a schema")
        if other.pool is not first.pool:
            raise SchemaError("all tables must share a string pool")
    columns = {
        name: np.concatenate([t._raw_column(name) for t in tables])
        for name in first.schema.names
    }
    return Table(first.schema, columns, pool=first.pool)
