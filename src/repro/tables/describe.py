"""Per-column summary statistics (the interactive ``describe`` verb)."""

from __future__ import annotations

import numpy as np

from repro.tables.schema import ColumnType, Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table


def describe(table: Table, pool: StringPool | None = None) -> Table:
    """One row per column: type, count, distinct, min/max/mean.

    Numeric min/max/mean are rendered as floats; string columns report
    lexicographic min/max (as interned strings are decoded) and NaN mean.

    >>> t = Table.from_columns({"x": [1, 2, 2]})
    >>> d = describe(t)
    >>> d.values("Column"), d.column("Distinct").tolist()
    (['x'], [2])
    """
    names: list[str] = []
    types: list[str] = []
    counts: list[int] = []
    distincts: list[int] = []
    minima: list[float] = []
    maxima: list[float] = []
    means: list[float] = []
    mins_text: list[str] = []
    maxs_text: list[str] = []
    for name, col_type in table.schema:
        names.append(name)
        types.append(col_type.value)
        counts.append(table.num_rows)
        column = table.column(name)
        distincts.append(int(len(np.unique(column))) if len(column) else 0)
        if col_type is ColumnType.STRING:
            decoded = table.values(name)
            minima.append(float("nan"))
            maxima.append(float("nan"))
            means.append(float("nan"))
            mins_text.append(min(decoded) if decoded else "")
            maxs_text.append(max(decoded) if decoded else "")
        else:
            if len(column):
                minima.append(float(column.min()))
                maxima.append(float(column.max()))
                means.append(float(column.mean()))
            else:
                minima.append(float("nan"))
                maxima.append(float("nan"))
                means.append(float("nan"))
            mins_text.append("")
            maxs_text.append("")
    schema = Schema(
        [
            ("Column", ColumnType.STRING),
            ("Type", ColumnType.STRING),
            ("Count", ColumnType.INT),
            ("Distinct", ColumnType.INT),
            ("Min", ColumnType.FLOAT),
            ("Max", ColumnType.FLOAT),
            ("Mean", ColumnType.FLOAT),
            ("MinText", ColumnType.STRING),
            ("MaxText", ColumnType.STRING),
        ]
    )
    return Table.from_columns(
        {
            "Column": names,
            "Type": types,
            "Count": counts,
            "Distinct": distincts,
            "Min": minima,
            "Max": maxima,
            "Mean": means,
            "MinText": mins_text,
            "MaxText": maxs_text,
        },
        schema=schema,
        pool=pool,
    )
