"""Set operations over tables with identical schemas (paper §2.3).

Rows compare by *content*: two rows are equal when every column value is
equal (strings by decoded value; a shared pool makes that code equality).
``union``/``intersect``/``minus`` follow SQL semantics — distinct output,
with ``union(..., distinct=False)`` giving UNION ALL.
"""

from __future__ import annotations

import numpy as np

from repro.tables.table import Table, check_same_layout


def _row_keys(left: Table, right: Table) -> tuple[np.ndarray, np.ndarray]:
    """Factorise both tables' rows into comparable int64 keys."""
    n_left = left.num_rows
    columns = []
    for name in left.schema.names:
        merged = np.concatenate([left.column(name), right.column(name)])
        _, inverse = np.unique(merged, return_inverse=True)
        columns.append(inverse.astype(np.int64).reshape(-1))
    if len(columns) == 1:
        keys = columns[0]
    else:
        stacked = np.column_stack(columns)
        _, keys = np.unique(stacked, axis=0, return_inverse=True)
        keys = keys.astype(np.int64).reshape(-1)
    return keys[:n_left], keys[n_left:]


def _distinct_positions(keys: np.ndarray) -> np.ndarray:
    """Positions of the first occurrence of each key, in input order."""
    _, first = np.unique(keys, return_index=True)
    return np.sort(first)


def union(left: Table, right: Table, distinct: bool = True) -> Table:
    """Rows of both tables; duplicates removed unless ``distinct=False``.

    The result is a new table whose rows come from ``left`` first (keeping
    left row ids) then the ``right`` rows (ids offset past left's maximum
    so ids stay unique within the result).
    """
    check_same_layout(left, right)
    left_keys, right_keys = _row_keys(left, right)
    if distinct:
        left_take = _distinct_positions(left_keys)
        right_new = ~np.isin(right_keys, left_keys)
        right_take = np.flatnonzero(right_new)
        if len(right_take):
            right_take = right_take[_distinct_positions(right_keys[right_take])]
    else:
        left_take = np.arange(left.num_rows, dtype=np.int64)
        right_take = np.arange(right.num_rows, dtype=np.int64)
    columns = {
        name: np.concatenate(
            [left._raw_column(name)[left_take], right._raw_column(name)[right_take]]
        )
        for name in left.schema.names
    }
    offset = int(left.row_ids.max()) + 1 if left.num_rows else 0
    row_ids = np.concatenate(
        [left.row_ids[left_take], right.row_ids[right_take] + offset]
    )
    return Table(left.schema, columns, pool=left.pool, row_ids=row_ids)


def intersect(left: Table, right: Table) -> Table:
    """Distinct rows of ``left`` that also appear in ``right``."""
    check_same_layout(left, right)
    left_keys, right_keys = _row_keys(left, right)
    matching = np.flatnonzero(np.isin(left_keys, right_keys))
    if len(matching):
        matching = matching[_distinct_positions(left_keys[matching])]
    return left.take(matching)


def minus(left: Table, right: Table) -> Table:
    """Distinct rows of ``left`` that do not appear in ``right``."""
    check_same_layout(left, right)
    left_keys, right_keys = _row_keys(left, right)
    keep = np.flatnonzero(~np.isin(left_keys, right_keys))
    if len(keep):
        keep = keep[_distinct_positions(left_keys[keep])]
    return left.take(keep)
