"""Projection and column renaming (paper §2.3 "basic relational operations")."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import SchemaError
from repro.tables.table import Table


def project(table: Table, names: Sequence[str]) -> Table:
    """New table keeping only ``names``, in the given order.

    Row ids are preserved — projection narrows a record, it does not
    create a new one. Column arrays are shared (columns are immutable
    through the public API), so projection is O(1) per column.
    """
    if len(names) == 0:
        raise SchemaError("projection needs at least one column")
    if len(set(names)) != len(names):
        raise SchemaError("projection columns must be unique")
    schema = table.schema.select(names)
    columns = {name: table._raw_column(name) for name in names}
    return Table(schema, columns, pool=table.pool, row_ids=table.row_ids.copy())


def rename(table: Table, mapping: Mapping[str, str]) -> Table:
    """New table with columns renamed per ``mapping`` (data shared)."""
    schema = table.schema
    for old, new in mapping.items():
        schema = schema.renamed(old, new)
    columns = {}
    for old_name in table.schema.names:
        new_name = mapping.get(old_name, old_name)
        columns[new_name] = table._raw_column(old_name)
    return Table(schema, columns, pool=table.pool, row_ids=table.row_ids.copy())
