"""Ringo's native relational table engine (paper §2.3).

Column-store tables with persistent row ids, the basic relational
operators (select, join, project, group & aggregate, order, set ops), and
the graph-construction operators unique to Ringo (SimJoin, NextK).
"""

from repro.tables.compute import evaluate_expression, with_column
from repro.tables.describe import describe
from repro.tables.expressions import Predicate, parse_predicate
from repro.tables.extras import (
    concat_rows,
    distinct,
    limit,
    sample_rows,
    top_k,
    value_counts,
)
from repro.tables.groupby import add_group_column, group_by, group_ids
from repro.tables.io_npz import load_table_npz, save_table_npz
from repro.tables.io_tsv import infer_schema_tsv, load_table_tsv, save_table_tsv
from repro.tables.join import join
from repro.tables.nextk import next_k
from repro.tables.order import order_by
from repro.tables.pivot import crosstab, quantiles
from repro.tables.project import project, rename
from repro.tables.schema import ColumnType, Schema
from repro.tables.select import count_matching, select
from repro.tables.setops import intersect, minus, union
from repro.tables.simjoin import sim_join
from repro.tables.strings import StringPool, default_pool
from repro.tables.table import Table

__all__ = [
    "ColumnType",
    "Predicate",
    "Schema",
    "StringPool",
    "Table",
    "add_group_column",
    "concat_rows",
    "count_matching",
    "crosstab",
    "default_pool",
    "describe",
    "distinct",
    "evaluate_expression",
    "group_by",
    "limit",
    "sample_rows",
    "top_k",
    "value_counts",
    "with_column",
    "group_ids",
    "infer_schema_tsv",
    "intersect",
    "join",
    "load_table_npz",
    "load_table_tsv",
    "save_table_npz",
    "minus",
    "next_k",
    "order_by",
    "parse_predicate",
    "project",
    "quantiles",
    "rename",
    "save_table_tsv",
    "select",
    "sim_join",
    "union",
]
