"""Binary table snapshots (fast reload, the table analogue of
:mod:`repro.graphs.serialize`).

Tables serialise to ``.npz`` archives: one array per column (string
columns are decoded to a numpy unicode array so the snapshot is
pool-independent), the row ids, and the schema as parallel name/type
arrays.
"""

from __future__ import annotations

import os

import numpy as np

import zipfile

from repro.exceptions import CorruptInputError, SchemaError
from repro.faults import fault_point
from repro.obs.spans import trace
from repro.tables.schema import ColumnType, Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table

_FORMAT_VERSION = 1


def save_table_npz(table: Table, path: "str | os.PathLike[str]") -> None:
    """Write ``table`` to an ``.npz`` archive."""
    payload: dict[str, np.ndarray] = {
        "version": np.int64(_FORMAT_VERSION),
        "names": np.array(table.schema.names, dtype=np.str_),
        "types": np.array(
            [col_type.value for _, col_type in table.schema], dtype=np.str_
        ),
        "row_ids": np.asarray(table.row_ids),
    }
    for name, col_type in table.schema:
        if col_type is ColumnType.STRING:
            values = table.values(name)
            payload[f"col_{name}"] = np.array(values, dtype=np.str_)
            # numpy's fixed-width unicode dtype drops trailing NULs, so
            # record true lengths to re-pad on load.
            payload[f"len_{name}"] = np.array(
                [len(v) for v in values], dtype=np.int64
            )
        else:
            payload[f"col_{name}"] = table.column(name)
    np.savez(path, **payload)


def load_table_npz(
    path: "str | os.PathLike[str]", pool: StringPool | None = None
) -> Table:
    """Load a table saved by :func:`save_table_npz`.

    A truncated or garbled archive — or one whose arrays cannot be
    extracted — raises a typed
    :class:`~repro.exceptions.CorruptInputError` naming the file and
    the offending array, so callers (recovery in particular) can
    quarantine rather than crash on a low-level parse error.
    """
    fault_point("io.npz.load")
    current = None
    try:
        with trace("io.load_npz", path=str(path)), np.load(path) as archive:
            version = int(archive["version"])
            if version != _FORMAT_VERSION:
                raise SchemaError(f"unsupported table format version {version}")
            names = [str(n) for n in archive["names"]]
            types = [ColumnType.parse(str(t)) for t in archive["types"]]
            current = "row_ids"
            row_ids = archive["row_ids"]
            raw = {}
            lengths = {}
            for name in names:
                current = f"col_{name}"
                raw[name] = archive[current]
                if f"len_{name}" in archive.files:
                    current = f"len_{name}"
                    lengths[name] = archive[current]
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, KeyError, EOFError, OSError, ValueError) as error:
        raise CorruptInputError(
            os.fspath(path),
            f"not a readable table archive: {error}",
            array=current,
        )
    schema = Schema(list(zip(names, types)))
    the_pool = pool if pool is not None else None
    columns: dict[str, object] = {}
    for name, col_type in schema:
        if col_type is ColumnType.STRING:
            values = [str(v) for v in raw[name]]
            if name in lengths:
                values = [
                    v.ljust(int(n), "\x00")
                    for v, n in zip(values, lengths[name])
                ]
            columns[name] = values
        else:
            columns[name] = raw[name]
    table = Table.from_columns(columns, schema=schema, pool=the_pool)
    table._replace_columns(
        {name: table._raw_column(name) for name in schema.names}, row_ids
    )
    return table
