"""Group & aggregate (paper §2.3).

Two entry points mirror the two Ringo uses:

* :func:`group_ids` supports the "fast in-place grouping" the paper ties to
  persistent row ids — it labels each row with its group without moving
  data, and can append the labels as a column.
* :func:`group_by` produces a new aggregated table (count/sum/mean/...).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import SchemaError, TypeMismatchError
from repro.obs.spans import trace
from repro.tables.schema import ColumnType, Schema
from repro.tables.table import Table

_AGGREGATES = ("count", "sum", "mean", "min", "max", "first")


def group_ids(table: Table, keys: "Sequence[str] | str") -> np.ndarray:
    """Dense int64 group label per row; equal key tuples share a label.

    Labels number groups by first appearance order of their key tuple.
    """
    if isinstance(keys, str):
        keys = [keys]
    if not keys:
        raise SchemaError("grouping needs at least one key column")
    arrays = [table.column(name) for name in keys]
    if len(arrays) == 1:
        _, first_pos, inverse = np.unique(
            arrays[0], return_index=True, return_inverse=True
        )
    else:
        stacked = np.column_stack(arrays)
        _, first_pos, inverse = np.unique(
            stacked, axis=0, return_index=True, return_inverse=True
        )
    inverse = inverse.astype(np.int64).reshape(-1)
    # np.unique numbers groups by sorted key; renumber by first appearance.
    appearance = np.argsort(np.argsort(first_pos, kind="stable"), kind="stable")
    return appearance[inverse]


def add_group_column(
    table: Table, keys: "Sequence[str] | str", out: str = "GroupId"
) -> Table:
    """Append a group-label column in place (the in-place grouping mode)."""
    table.add_column(out, group_ids(table, keys), ColumnType.INT)
    return table


def group_by(
    table: Table,
    keys: "Sequence[str] | str",
    aggregations: "Mapping[str, tuple[str, str]] | None" = None,
) -> Table:
    """Aggregate ``table`` per distinct key tuple.

    ``aggregations`` maps output column name to ``(aggregate, column)``
    where aggregate is one of count, sum, mean, min, max, first. When
    omitted, a single ``Count`` column is produced.

    >>> table = Table.from_columns({"k": [1, 1, 2], "v": [10, 20, 5]})
    >>> result = group_by(table, "k", {"Total": ("sum", "v")})
    >>> result.column("Total").tolist()
    [30, 5]
    """
    if isinstance(keys, str):
        keys = [keys]
    if aggregations is None:
        aggregations = {"Count": ("count", keys[0])}
    with trace("table.groupby", rows=table.num_rows, keys=len(keys)) as span:
        labels = group_ids(table, keys)
        n_groups = int(labels.max()) + 1 if len(labels) else 0
        first_occurrence = _first_occurrence(labels, n_groups)

        out_schema_cols: list[tuple[str, ColumnType]] = []
        out_columns: dict[str, np.ndarray] = {}
        for name in keys:
            out_schema_cols.append((name, table.schema[name]))
            out_columns[name] = table._raw_column(name)[first_occurrence]

        for out_name, (agg, col_name) in aggregations.items():
            if out_name in dict(out_schema_cols):
                raise SchemaError(f"aggregate output {out_name!r} clashes with a key column")
            values, out_type = _aggregate(table, labels, n_groups, first_occurrence, agg, col_name)
            out_schema_cols.append((out_name, out_type))
            out_columns[out_name] = values
        span.set_tag("groups", n_groups)
        return Table(Schema(out_schema_cols), out_columns, pool=table.pool)


def _first_occurrence(labels: np.ndarray, n_groups: int) -> np.ndarray:
    """Index of the first row of each group, in label order."""
    first = np.full(n_groups, -1, dtype=np.int64)
    # Walk backwards so earlier rows overwrite later ones.
    first[labels[::-1]] = np.arange(len(labels) - 1, -1, -1, dtype=np.int64)
    return first


def _aggregate(
    table: Table,
    labels: np.ndarray,
    n_groups: int,
    first_occurrence: np.ndarray,
    agg: str,
    col_name: str,
) -> tuple[np.ndarray, ColumnType]:
    if agg not in _AGGREGATES:
        raise SchemaError(
            f"unknown aggregate {agg!r}; use one of {', '.join(_AGGREGATES)}"
        )
    col_type = table.schema.require(col_name)
    if agg == "count":
        return np.bincount(labels, minlength=n_groups).astype(np.int64), ColumnType.INT
    if agg == "first":
        return table._raw_column(col_name)[first_occurrence], col_type
    if col_type is ColumnType.STRING and agg in ("sum", "mean"):
        raise TypeMismatchError(f"cannot {agg} string column {col_name!r}")
    values = table.column(col_name)
    if agg == "sum":
        sums = np.bincount(labels, weights=values, minlength=n_groups)
        if col_type is ColumnType.INT:
            return sums.astype(np.int64), ColumnType.INT
        return sums, ColumnType.FLOAT
    if agg == "mean":
        sums = np.bincount(labels, weights=values, minlength=n_groups)
        counts = np.bincount(labels, minlength=n_groups)
        return sums / np.maximum(counts, 1), ColumnType.FLOAT
    # min/max via sort + reduceat over group-contiguous runs.
    order = np.argsort(labels, kind="stable")
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.diff(labels[order])) + 1
    starts = np.concatenate(([0], boundaries))
    if col_type is ColumnType.STRING:
        # Min/max of a string column means lexicographic min/max.
        decoded = np.asarray(table.values(col_name), dtype=object)[order]
        reducer = np.minimum if agg == "min" else np.maximum
        segments = np.split(decoded, boundaries)
        best = [seg.min() if agg == "min" else seg.max() for seg in segments]
        del reducer
        codes = table.pool.encode_many(str(v) for v in best)
        return codes, ColumnType.STRING
    reducer = np.minimum.reduceat if agg == "min" else np.maximum.reduceat
    return reducer(sorted_values, starts), col_type
