"""Small shared utilities: timing, validation, deterministic RNG helpers."""

from repro.util.timing import Stopwatch, Timer, format_duration
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    require,
)

__all__ = [
    "Stopwatch",
    "Timer",
    "format_duration",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "require",
]
