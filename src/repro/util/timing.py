"""Timing helpers used by the benchmark harness and the interactive engine.

The paper reports wall-clock times for every operation (Tables 3-6); the
benchmark modules use :class:`Stopwatch` for one-shot measurements and
:class:`Timer` to accumulate named stage timings for the workflow benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper's tables do (e.g. ``2.76s``).

    Durations under a fifth of a second render as ``<0.2s`` to match the
    paper's Table 4 convention for measurements below timer resolution.
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 0.2:
        return "<0.2s"
    return f"{seconds:.1f}s" if seconds >= 10 else f"{seconds:.2f}s"


class Stopwatch:
    """Context manager measuring wall-clock duration of a block.

    >>> with Stopwatch() as sw:
    ...     sum(range(10))
    45
    >>> sw.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self._elapsed = time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Seconds elapsed inside the ``with`` block."""
        if self._elapsed is None:
            if self._start is None:
                raise RuntimeError("Stopwatch was never started")
            return time.perf_counter() - self._start
        return self._elapsed


@dataclass
class Timer:
    """Accumulates named stage timings, e.g. for the Figure 2 workflow bench.

    >>> timer = Timer()
    >>> with timer.stage("load"):
    ...     pass
    >>> "load" in timer.stages
    True
    """

    stages: dict[str, float] = field(default_factory=dict)

    def stage(self, name: str) -> "_Stage":
        """Return a context manager that records the block under ``name``.

        Re-entering an existing stage accumulates into its total.
        """
        return _Stage(self, name)

    @property
    def total(self) -> float:
        """Sum of all recorded stage durations in seconds."""
        return sum(self.stages.values())

    def report(self) -> str:
        """Multi-line ``stage: duration`` summary, longest stage first."""
        ordered = sorted(self.stages.items(), key=lambda kv: kv[1], reverse=True)
        return "\n".join(f"{name}: {format_duration(elapsed)}" for name, elapsed in ordered)


class _Stage:
    """Context manager recording one stage into a :class:`Timer`."""

    def __init__(self, timer: Timer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Stage":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._timer.stages[self._name] = self._timer.stages.get(self._name, 0.0) + elapsed
