"""Argument validation helpers shared across the package.

The public API raises informative errors early (at the Python surface)
instead of letting malformed arguments fail deep inside a numpy kernel —
the interactive-use posture the paper emphasises.
"""

from __future__ import annotations

from typing import NoReturn

from repro.exceptions import RingoError


def require(condition: bool, message: str) -> None:
    """Raise :class:`RingoError` with ``message`` unless ``condition`` holds."""
    if not condition:
        _fail(message)


def check_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        _fail(f"{name} must be positive, got {value}")


def check_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        _fail(f"{name} must be non-negative, got {value}")


def check_fraction(value: float, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        _fail(f"{name} must be in [0, 1], got {value}")


def _fail(message: str) -> NoReturn:
    raise RingoError(message)
