"""The replica side of WAL shipping: verify, persist, replay, compare.

:class:`ReplicaApplier` owns one follower state per tenant. Each shipped
batch of CRC-framed WAL payloads is:

1. **verified** — every frame's CRC is recomputed from its canonical
   JSON; a mismatch is divergence, not a retry.
2. **persisted** — the frame is appended verbatim (byte-identical to the
   primary's line) to the replica's own ``wal.jsonl`` and fsync'd, so a
   replica crash recovers exactly like a primary crash would.
3. **replayed** — the record is re-executed against an in-memory
   *follower* session through the same operator registry recovery uses
   (:func:`repro.recovery.ops.replay_record`), keeping the standby's
   catalog — and, through ``ApplyOps``, the incremental engine's delta
   snapshots and dynamic algorithm state — warm rather than cold bytes.

Apply is idempotent by LSN cursor: frames at or below ``applied_lsn``
are skipped, so a shipper that times out and resends a batch never
double-applies. A gap (a frame beyond ``applied_lsn + 1``) is a typed
:class:`~repro.exceptions.ReplicationError`; the shipper resynchronises
its cursor from the status this applier reports.

Divergence — a CRC mismatch, a replay failure, or a digest exchange
that disagrees at a matched LSN — **quarantines** the tenant: reads
fail typed, applies fail typed, and only a re-seed
(:meth:`ReplicaApplier.apply_seed`, which renames the diverged state
aside and restores from the primary's shipped checkpoint + WAL) clears
it. A diverged replica never silently serves answers.

Promotion (:meth:`ReplicaApplier.promote`) fences the deposed primary's
directories at the new epoch *first*, then drains their on-disk WAL
tails, bumps the epoch in the replica's directories, and arms the
follower sessions for writes — returning them so the hosting service
can adopt them as live tenants. Fence-before-drain is the ordering that
makes "zero committed-state loss" true: once the fence lands, a
still-alive old primary's next append raises
:class:`~repro.exceptions.FencedError` instead of committing a record
the drain already missed.
"""

from __future__ import annotations

import contextlib
import os
import threading
import zlib
from base64 import b64decode
from pathlib import Path

from repro import obs
from repro.core.engine import Ringo
from repro.exceptions import (
    DivergenceError,
    FencedError,
    ReplicaLagError,
    ReplicationError,
)
from repro.faults import fault_point
from repro.recovery import ops as _ops
from repro.recovery.checkpoint import quarantine as _quarantine_path
from repro.recovery.digest import catalog_digest
from repro.recovery.epoch import fence, read_epoch, write_epoch
from repro.recovery.wal import (
    WAL_FILENAME,
    WalRecord,
    _canonical,
    frame_record,
    read_wal,
)


def _count(name: str, amount: int = 1) -> None:
    if obs.enabled():
        obs.registry().counter(name).inc(amount)


def _name_suffix(name: str) -> int:
    try:
        return int(name.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return 0


def validate_tenant_name(name: str) -> str:
    """Refuse tenant names that are not plain directory names.

    Replication verbs receive the tenant name off the wire and use it
    as a path component under the replica's spool; anything path-like
    (separators, ``..``, absolute paths) would let a malicious or buggy
    shipper create directories — and, via ``replicate_seed``, write
    arbitrary file content — outside the spool.
    """
    if (
        not name
        or name in (".", "..")
        or "\x00" in name
        or "\\" in name
        or name != Path(name).name
    ):
        raise ReplicationError(
            f"invalid tenant name {name!r}: tenant names must be plain "
            f"directory names (no separators, traversal, or NUL bytes)"
        )
    return name


def frame_payload(frame: dict) -> dict:
    """Verify one shipped frame's CRC; returns the payload without it.

    The payload's canonical JSON is exactly the bytes the primary framed,
    so the recomputed CRC32 must match the shipped one — anything else
    means the stream was corrupted in flight or at rest.
    """
    if not isinstance(frame, dict) or "crc" not in frame:
        raise ReplicationError("shipped frame is not a CRC-framed record object")
    payload = {key: value for key, value in frame.items() if key != "crc"}
    if zlib.crc32(_canonical(payload)) != frame["crc"]:
        raise DivergenceError(
            str(frame.get("tenant", "?")),
            int(frame.get("lsn", 0)),
            "shipped frame failed its CRC check",
        )
    return payload


class ReplicaTenant:
    """One tenant's follower state on the replica."""

    def __init__(self, applier: "ReplicaApplier", tenant: str) -> None:
        self.applier = applier
        self.tenant = tenant
        self.directory = Path(applier.spool_dir) / tenant
        self.lock = threading.Lock()
        self.session: "Ringo | None" = None
        self.applied_lsn = 0
        self.tip_lsn = 0
        self.epoch = 0
        self.quarantined: "str | None" = None
        self.applied_records = 0
        self.skipped_frames = 0
        self.digest_checks = 0
        self.reseeds = 0
        self._wal_handle = None

    # -- follower lifecycle ---------------------------------------------

    def open(self) -> None:
        """Recover (or freshly create) the unarmed follower session."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self.session = Ringo.recover(
            self.directory, arm=False, workers=self.applier.session_workers
        )
        records, _tail = read_wal(self.directory / WAL_FILENAME)
        self.applied_lsn = records[-1].lsn if records else 0
        self.tip_lsn = max(self.tip_lsn, self.applied_lsn)
        self.epoch = max(
            read_epoch(self.directory).epoch,
            records[-1].epoch if records else 0,
        )
        self._wal_handle = open(self.directory / WAL_FILENAME, "ab")

    def close(self) -> None:
        if self._wal_handle is not None and not self._wal_handle.closed:
            self._wal_handle.flush()
            self._wal_handle.close()
        self._wal_handle = None
        if self.session is not None:
            self.session.close()
            self.session = None

    # -- frame application ----------------------------------------------

    def apply_payload(self, payload: dict) -> bool:
        """Persist and replay one verified payload; False if already applied.

        Callers hold ``self.lock``. Any replay failure quarantines the
        tenant — the on-disk WAL and in-memory catalog could otherwise
        drift apart, which is exactly the divergence this layer exists
        to refuse.
        """
        lsn = int(payload.get("lsn", 0))
        if lsn <= self.applied_lsn:
            self.skipped_frames += 1
            return False
        if lsn != self.applied_lsn + 1:
            raise ReplicationError(
                f"shipped frame for tenant {self.tenant!r} jumps to LSN "
                f"{lsn} (replica has applied {self.applied_lsn}); the "
                f"shipper must resynchronise its cursor"
            )
        record = WalRecord(
            lsn=lsn,
            op=str(payload["op"]),
            args=payload.get("args") or {},
            inputs=tuple(payload.get("inputs") or ()),
            output=str(payload["output"]),
            epoch=int(payload.get("epoch", 0)),
        )
        session = self.session
        assert session is not None
        try:
            resolved = [session._catalog[name] for name in record.inputs]
            obj = _ops.replay_record(session, record, resolved)
            if not record.mutates:
                session._publish_as(record.output, obj)
                session._publish_counter = max(
                    session._publish_counter, _name_suffix(record.output)
                )
        except Exception as error:
            self.quarantined = (
                f"replay of shipped LSN {lsn} ({record.op}) failed: "
                f"{type(error).__name__}: {error}"
            )
            _count("replication.divergence_total")
            raise DivergenceError(self.tenant, lsn, self.quarantined)
        # Replay succeeded: commit the byte-identical frame to the
        # replica's own log, so the follower can itself be recovered
        # (or promoted) from disk at any point. A persist failure here
        # must quarantine too: the in-memory catalog already holds the
        # mutation, so letting the shipper's resend through would
        # replay it a second time.
        try:
            self._wal_handle.write(frame_record(payload))
            self._wal_handle.flush()
            os.fsync(self._wal_handle.fileno())
        except Exception as error:
            self.quarantined = (
                f"persisting shipped LSN {lsn} ({record.op}) failed after "
                f"replay: {type(error).__name__}: {error}"
            )
            _count("replication.divergence_total")
            raise DivergenceError(self.tenant, lsn, self.quarantined)
        self.applied_lsn = lsn
        self.applied_records += 1
        return True

    def check_digest(self, expected: dict) -> bool:
        """Compare a primary digest taken at ``expected["lsn"]``.

        Only checked when the follower sits exactly at that LSN — a
        digest for a watermark the replica has moved past (or not yet
        reached) proves nothing either way. A mismatch quarantines.
        """
        lsn = int(expected.get("lsn", -1))
        if lsn != self.applied_lsn:
            return False
        local = catalog_digest(self.session)
        if local != (expected.get("digest") or {}):
            self.quarantined = (
                f"catalog digest mismatch against primary at LSN {lsn}"
            )
            _count("replication.divergence_total")
            raise DivergenceError(self.tenant, lsn, self.quarantined)
        self.digest_checks += 1
        return True

    def snapshot(self) -> dict:
        return {
            "applied_lsn": self.applied_lsn,
            "tip_lsn": self.tip_lsn,
            "lag_records": max(0, self.tip_lsn - self.applied_lsn),
            "epoch": self.epoch,
            "quarantined": self.quarantined,
            "applied_records": self.applied_records,
            "skipped_frames": self.skipped_frames,
            "digest_checks": self.digest_checks,
            "reseeds": self.reseeds,
        }


class ReplicaApplier:
    """All follower tenants on one replica service."""

    def __init__(
        self,
        spool_dir,
        lag_degrade_records: int = 1024,
        session_workers: int = 1,
    ) -> None:
        self.spool_dir = Path(spool_dir)
        self.lag_degrade_records = lag_degrade_records
        self.session_workers = session_workers
        self.promoted_epoch: "int | None" = None
        self._tenants: dict[str, ReplicaTenant] = {}
        self._tenants_lock = threading.Lock()

    def tenant(self, name: str) -> ReplicaTenant:
        validate_tenant_name(name)
        with self._tenants_lock:
            record = self._tenants.get(name)
            if record is None:
                record = ReplicaTenant(self, name)
                self._tenants[name] = record
        if record.session is None:
            with record.lock:
                if record.session is None:
                    record.open()
        return record

    def close(self) -> None:
        with self._tenants_lock:
            tenants = list(self._tenants.values())
        for record in tenants:
            with record.lock:
                record.close()

    # -- the ship-stream surface ----------------------------------------

    def apply_batch(
        self,
        tenant: str,
        epoch: int = 0,
        frames: "list | None" = None,
        tip_lsn: "int | None" = None,
        digest: "dict | None" = None,
    ) -> dict:
        """Apply one shipped batch; returns the replica's status for it.

        The ``replication.apply`` fault site fires before any frame is
        touched — a firing is a retryable envelope to the shipper, and
        the eventual resend is absorbed by the LSN cursor. An empty
        ``frames`` list is the status probe shippers use to
        resynchronise after an error.
        """
        fault_point("replication.apply")
        record = self.tenant(tenant)
        with record.lock, obs.trace(
            "replication.apply", tenant=tenant, frames=len(frames or ())
        ):
            if record.quarantined is not None:
                raise DivergenceError(
                    tenant, record.applied_lsn,
                    f"replica state is quarantined ({record.quarantined}); "
                    f"re-seed it from the primary's latest checkpoint",
                )
            epoch = int(epoch)
            if epoch < record.epoch:
                raise FencedError(str(record.directory), epoch, record.epoch)
            record.epoch = max(record.epoch, epoch)
            if tip_lsn is not None:
                record.tip_lsn = max(record.tip_lsn, int(tip_lsn))
            applied = 0
            for frame in frames or ():
                try:
                    payload = frame_payload(frame)
                except DivergenceError as error:
                    # A corrupt frame is divergence, not a retry: the
                    # stream can no longer be trusted byte-for-byte.
                    record.quarantined = str(error)
                    _count("replication.divergence_total")
                    raise
                if record.apply_payload(payload):
                    applied += 1
            record.tip_lsn = max(record.tip_lsn, record.applied_lsn)
            digest_checked = False
            if digest is not None:
                digest_checked = record.check_digest(digest)
            _count("replication.applied_records", applied)
            return {
                "tenant": tenant,
                "applied": applied,
                "applied_lsn": record.applied_lsn,
                "epoch": record.epoch,
                "digest_checked": digest_checked,
            }

    def apply_seed(
        self, tenant: str, epoch: int = 0, files: "dict | None" = None
    ) -> dict:
        """Replace a tenant's follower state with a shipped seed.

        ``files`` maps paths relative to the tenant's durability
        directory (the primary's checkpoint artifacts plus its full
        ``wal.jsonl``) to base64 content. The existing replica state —
        diverged or merely stale — is renamed aside, never deleted.
        """
        record = self.tenant(tenant)
        with record.lock, obs.trace("replication.seed", tenant=tenant):
            record.close()
            if any(record.directory.iterdir()):
                moved = _quarantine_path(record.directory)
                _count("replication.reseeds_total")
            else:
                record.directory.rmdir()
                moved = None
            record.directory.mkdir(parents=True)
            for rel_path, encoded in (files or {}).items():
                rel = Path(rel_path)
                if rel.is_absolute() or ".." in rel.parts:
                    raise ReplicationError(
                        f"seed file path {rel_path!r} escapes the tenant directory"
                    )
                target = record.directory / rel
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(b64decode(encoded))
            if epoch:
                write_epoch(record.directory, int(epoch))
            record.quarantined = None
            record.reseeds += 1
            record.open()
            return {
                "tenant": tenant,
                "applied_lsn": record.applied_lsn,
                "epoch": record.epoch,
                "quarantined_to": None if moved is None else str(moved),
            }

    # -- reads ----------------------------------------------------------

    def ensure_readable(self, tenant: str) -> ReplicaTenant:
        """Gate a read: quarantined state and excess lag both fail typed."""
        record = self.tenant(tenant)
        if record.quarantined is not None:
            raise DivergenceError(tenant, record.applied_lsn, record.quarantined)
        lag = max(0, record.tip_lsn - record.applied_lsn)
        if lag > self.lag_degrade_records:
            _count("replication.degraded_reads_total")
            raise ReplicaLagError(tenant, lag, self.lag_degrade_records)
        return record

    # -- promotion -------------------------------------------------------

    def promote(
        self,
        new_epoch: "int | None" = None,
        fence_spool: "str | None" = None,
    ) -> "tuple[dict, dict[str, Ringo]]":
        """Promote this replica: fence, drain, bump epoch, arm.

        ``fence_spool`` is the deposed primary's spool root. Each of its
        tenant directories is fenced at the new epoch *before* anything
        else, so an old primary that is alive but wrongly declared dead
        stops committing (its per-append fence check raises
        :class:`~repro.exceptions.FencedError`) — only then are the
        tenants' WAL tails drained directly from disk (the committed
        suffix the ship stream had not delivered yet). Fence-then-drain
        is the zero-committed-state-loss ordering: drain-then-fence
        would let the old primary acknowledge records after the drain
        read its WAL, records the fence then silently discards.

        Returns ``(report, sessions)`` where ``sessions`` maps tenant
        names to armed, writable :class:`Ringo` sessions ready for the
        hosting service to adopt. The ``replication.promote`` fault site
        fires first: a firing aborts with nothing bumped or fenced.
        """
        fault_point("replication.promote")
        report: dict = {"tenants": {}, "drained_records": 0}
        with obs.trace("replication.promote"):
            tenant_names = set(self._known_tenants())
            if fence_spool is not None:
                tenant_names.update(self._spool_tenants(fence_spool))
            records = [self.tenant(name) for name in sorted(tenant_names)]
            with contextlib.ExitStack() as stack:
                for record in records:
                    stack.enter_context(record.lock)
                for record in records:
                    if record.quarantined is not None:
                        raise DivergenceError(
                            record.tenant, record.applied_lsn,
                            f"cannot promote a quarantined replica "
                            f"({record.quarantined}); re-seed first",
                        )
                if new_epoch is None:
                    highest = max((r.epoch for r in records), default=0)
                    if fence_spool is not None:
                        for name in tenant_names:
                            highest = max(
                                highest,
                                read_epoch(Path(fence_spool) / name).epoch,
                            )
                    new_epoch = highest + 1
                new_epoch = int(new_epoch)
                drained = 0
                if fence_spool is not None:
                    # Fence FIRST, drain SECOND. The primary's WAL
                    # re-checks the epoch file on every append, so once
                    # these fences land a not-actually-dead primary can
                    # commit at most one already-in-flight record; the
                    # drain that follows reads everything it managed to
                    # acknowledge. The reverse order would leave the
                    # whole promote duration as a window in which the
                    # old primary acks records the drain never saw.
                    for name in sorted(tenant_names):
                        fence(Path(fence_spool) / name, new_epoch)
                    for record in records:
                        drained += self._drain_tail(record, Path(fence_spool))
                report["drained_records"] = drained
                sessions: dict[str, Ringo] = {}
                for record in records:
                    write_epoch(record.directory, new_epoch)
                    record.epoch = new_epoch
                for record in records:
                    # Hand the *live* follower over instead of
                    # re-recovering from disk: its snapshot caches and
                    # dynamic algorithm state stay warm, which is the
                    # point of hot standby. Arming opens the replica's
                    # WAL (now at the new epoch) for writes.
                    if record._wal_handle is not None:
                        record._wal_handle.flush()
                        record._wal_handle.close()
                        record._wal_handle = None
                    session = record.session
                    record.session = None
                    session._arm_durability(record.directory, resume=True)
                    sessions[record.tenant] = session
                    report["tenants"][record.tenant] = {
                        "applied_lsn": record.applied_lsn,
                        "epoch": new_epoch,
                    }
                self.promoted_epoch = new_epoch
                report["epoch"] = new_epoch
                report["fenced_spool"] = fence_spool
                _count("replication.promotions_total")
                return report, sessions

    def _drain_tail(self, record: ReplicaTenant, primary_spool: Path) -> int:
        """Apply the committed suffix of the primary's on-disk WAL.

        ``read_wal`` yields the valid prefix only, so a SIGKILL-torn
        final frame on the primary — never acknowledged as committed —
        is excluded by construction.
        """
        wal_path = primary_spool / record.tenant / WAL_FILENAME
        primary_records, _tail = read_wal(wal_path)
        drained = 0
        for primary_record in primary_records:
            if primary_record.lsn <= record.applied_lsn:
                continue
            payload = {
                "lsn": primary_record.lsn,
                "op": primary_record.op,
                "args": primary_record.args,
                "inputs": list(primary_record.inputs),
                "output": primary_record.output,
            }
            if primary_record.epoch:
                payload["epoch"] = primary_record.epoch
            if record.apply_payload(payload):
                drained += 1
        return drained

    # -- reporting -------------------------------------------------------

    def _known_tenants(self) -> list[str]:
        with self._tenants_lock:
            known = set(self._tenants)
        if self.spool_dir.is_dir():
            known.update(self._spool_tenants(self.spool_dir))
        return sorted(known)

    @staticmethod
    def _spool_tenants(spool: "str | os.PathLike[str]") -> list[str]:
        spool = Path(spool)
        if not spool.is_dir():
            return []
        return sorted(
            entry.name
            for entry in spool.iterdir()
            if entry.is_dir()
            and (entry / WAL_FILENAME).exists()
            # Diverged state renamed aside by a re-seed is evidence to
            # inspect, not a tenant to follow (or promote).
            and ".quarantined" not in entry.name
        )

    def health(self) -> dict:
        """The ``health()["replication"]`` section for a replica."""
        with self._tenants_lock:
            tenants = dict(self._tenants)
        snapshots = {name: record.snapshot() for name, record in tenants.items()}
        return {
            "role": "replica",
            "lag_degrade_records": self.lag_degrade_records,
            "promoted_epoch": self.promoted_epoch,
            "tenants": snapshots,
        }
