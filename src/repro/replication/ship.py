"""The primary side of WAL shipping: a polling, retrying batch shipper.

:class:`WalShipper` is a daemon thread the primary service starts next
to its accept loop. Each cycle it scans the spool for tenants with a
WAL, tails each log from the byte offset its cursor already decoded
(O(new records) per cycle, not O(total WAL size)), and sends the new
frames — batched, CRC-framed, LSN-watermarked — to the
replica over the ordinary line-delimited-JSON wire protocol (the
``replicate`` verb), through a :class:`~repro.service.client.ServiceClient`
with the shared :class:`~repro.parallel.resilience.RetryPolicy`.
Backpressure falls out of that composition: a slow or faulted replica
answers with retryable envelopes, the policy backs off with jittered
delays, and the cursor makes every resend idempotent.

Every ``digest_every_batches`` batches per tenant the shipper pauses to
exchange digests: it asks its *own* service for ``digest_at`` (computed
inside the tenant's serialized dispatcher, so the digest is consistent
at one WAL watermark), ships frames up to exactly that LSN, and attaches
the digest for the replica to compare. A :class:`DivergenceError` reply
triggers the automatic re-seed: checkpoint the tenant through the same
dispatcher, ship the checkpoint artifacts plus the full WAL
(``replicate_seed``), and resume shipping from the replica's new cursor.

A :class:`FencedError` reply means this primary has been deposed — the
shipper marks itself fenced and stops shipping rather than fighting the
promoted service.
"""

from __future__ import annotations

import asyncio
import threading
import zlib
from base64 import b64encode
from collections import deque
from pathlib import Path

from repro import obs
from repro.exceptions import RingoError
from repro.faults import fault_point
from repro.parallel.resilience import RetryPolicy, run_with_retry
from repro.recovery.checkpoint import CHECKPOINT_SUBDIR, find_checkpoints
from repro.recovery.epoch import read_epoch
from repro.recovery.wal import WAL_FILENAME, _canonical, decode_line, read_wal
from repro.service.client import ServiceClient
from repro.service.protocol import RemoteError


def _count(name: str, amount: int = 1) -> None:
    if obs.enabled():
        obs.registry().counter(name).inc(amount)


def record_frame(record) -> dict:
    """Re-frame one decoded WAL record as its shippable payload + CRC.

    ``read_wal`` verified the on-disk CRC; re-deriving it from the
    canonical payload reproduces the identical value, so the replica can
    verify end-to-end and append a byte-identical line to its own log.
    """
    payload = {
        "lsn": record.lsn,
        "op": record.op,
        "args": record.args,
        "inputs": list(record.inputs),
        "output": record.output,
    }
    if record.epoch:
        payload["epoch"] = record.epoch
    frame = dict(payload)
    frame["crc"] = zlib.crc32(_canonical(payload))
    return frame


class ShipCursor:
    """Per-tenant shipping state: cursor, watermarks, divergence count.

    The cursor also owns the incremental WAL scan: ``scan_offset`` is
    the byte offset of the log's decoded-valid prefix, ``scan_next_lsn``
    the LSN the next on-disk frame must carry, and ``unacked`` the
    decoded records (with their on-disk line lengths) the replica has
    not yet acknowledged as applied. Each ship cycle decodes only the
    bytes appended since the last one — O(new records), not O(total WAL
    size) — and ``lag_bytes`` falls out of the retained line lengths.
    """

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        self.shipped_lsn = 0
        self.applied_lsn = 0
        self.tip_lsn = 0
        self.lag_bytes = 0
        self.epoch = 0
        self.batches = 0
        self.batches_since_digest = 0
        self.digests_exchanged = 0
        self.reseeds = 0
        self.fenced = False
        self.last_error: "str | None" = None
        self.scan_offset = 0
        self.scan_next_lsn = 1
        self.unacked: "deque[tuple]" = deque()
        self.unacked_bytes = 0

    def reset_scan(self) -> None:
        """Forget the incremental scan; the next cycle re-reads from 0."""
        self.scan_offset = 0
        self.scan_next_lsn = 1
        self.unacked.clear()
        self.unacked_bytes = 0

    def snapshot(self) -> dict:
        return {
            "shipped_lsn": self.shipped_lsn,
            "applied_lsn": self.applied_lsn,
            "tip_lsn": self.tip_lsn,
            "lag_records": max(0, self.tip_lsn - self.applied_lsn),
            "lag_bytes": self.lag_bytes,
            "epoch": self.epoch,
            "batches": self.batches,
            "digests_exchanged": self.digests_exchanged,
            "reseeds": self.reseeds,
            "fenced": self.fenced,
            "last_error": self.last_error,
        }


class WalShipper(threading.Thread):
    """Continuously ship committed WAL records to a replica service.

    ``service`` (optional) is the hosting :class:`SessionService`; when
    present the shipper uses it for consistent ``digest_at`` reads and
    re-seed checkpoints. Without it (tests driving the shipper against
    bare spool directories) digest exchange is skipped.
    """

    def __init__(
        self,
        spool_dir,
        addresses: "list[tuple[str, int]]",
        *,
        service=None,
        interval_s: float = 0.05,
        batch_records: int = 64,
        digest_every_batches: int = 4,
        retry_policy: "RetryPolicy | None" = None,
        client_timeout: float = 30.0,
    ) -> None:
        super().__init__(name="repro-wal-shipper", daemon=True)
        self.spool_dir = Path(spool_dir)
        self.interval_s = interval_s
        self.batch_records = batch_records
        self.digest_every_batches = digest_every_batches
        self.service = service
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=5, base_delay=0.02, max_delay=0.5
        )
        self.client = ServiceClient(
            addresses[0][0],
            addresses[0][1],
            tenant="__replication__",
            timeout=client_timeout,
            retry_policy=self.retry_policy,
            addresses=addresses,
        )
        self.cursors: dict[str, ShipCursor] = {}
        self.cycles = 0
        self._stop_event = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------

    def stop(self, timeout: "float | None" = 10.0) -> None:
        """Signal the ship loop to exit and join it."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout)
        self.client.close()

    def run(self) -> None:
        while not self._stop_event.is_set():
            try:
                self.ship_once()
            except Exception as error:
                # The ship loop must outlive any single failure: record
                # it and retry next cycle from the durable cursors.
                with self._lock:
                    for cursor in self.cursors.values():
                        cursor.last_error = f"{type(error).__name__}: {error}"
                _count("replication.ship_cycle_errors")
            self._stop_event.wait(self.interval_s)

    # -- one shipping cycle ---------------------------------------------

    def ship_once(self) -> dict:
        """Scan every tenant WAL and ship anything past its cursor."""
        shipped = {}
        for tenant in self._spool_tenants():
            cursor = self._cursor(tenant)
            if cursor.fenced:
                continue
            shipped[tenant] = self._ship_tenant(cursor)
        self.cycles += 1
        return shipped

    def _scan_new_frames(self, cursor: ShipCursor, wal_path: Path) -> None:
        """Decode only the WAL bytes appended since the last cycle.

        Seeks to the cursor's decoded-valid offset and tails forward.
        An unterminated or undecodable final line is left for the next
        cycle (the writer may still be mid-append); the offset never
        advances past it, mirroring :func:`read_wal`'s valid-prefix
        rule. The scan restarts from byte 0 only when the log shrank
        (a torn-tail truncation at session arm) or a resync/re-seed
        moved the ship cursor behind the retained record window.
        """
        try:
            size = wal_path.stat().st_size
        except OSError:
            size = 0
        retained_floor = (
            cursor.unacked[0][0].lsn if cursor.unacked else cursor.scan_next_lsn
        )
        if size < cursor.scan_offset or cursor.shipped_lsn + 1 < retained_floor:
            cursor.reset_scan()
        if size <= cursor.scan_offset:
            return
        with open(wal_path, "rb") as handle:
            handle.seek(cursor.scan_offset)
            for raw in handle:
                if raw[-1:] != b"\n":
                    break
                line = raw.rstrip(b"\n")
                if not line:
                    cursor.scan_offset += len(raw)
                    continue
                try:
                    record = decode_line(line, expected_lsn=cursor.scan_next_lsn)
                except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                    break
                cursor.unacked.append((record, len(raw)))
                cursor.unacked_bytes += len(raw)
                cursor.scan_offset += len(raw)
                cursor.scan_next_lsn += 1

    @staticmethod
    def _prune_acked(cursor: ShipCursor) -> None:
        """Drop replica-acknowledged records; lag is what remains."""
        while cursor.unacked and cursor.unacked[0][0].lsn <= cursor.applied_lsn:
            _record, nbytes = cursor.unacked.popleft()
            cursor.unacked_bytes -= nbytes
        cursor.lag_bytes = cursor.unacked_bytes

    def _ship_tenant(self, cursor: ShipCursor) -> int:
        directory = self.spool_dir / cursor.tenant
        state = read_epoch(directory)
        if state.fenced:
            cursor.fenced = True
            _count("replication.fenced_total")
            return 0
        cursor.epoch = max(cursor.epoch, state.epoch)
        self._scan_new_frames(cursor, directory / WAL_FILENAME)
        cursor.tip_lsn = cursor.scan_next_lsn - 1
        pending = [r for r, _bytes in cursor.unacked if r.lsn > cursor.shipped_lsn]
        sent = 0
        digest_due = (
            self.service is not None
            and self.digest_every_batches > 0
            and cursor.batches_since_digest >= self.digest_every_batches
        )
        while pending or digest_due:
            digest = None
            batch = pending[: self.batch_records]
            if digest_due:
                digest = self._consistent_digest(cursor.tenant)
                if digest is not None and digest["lsn"] > cursor.shipped_lsn:
                    # Ship exactly up to the digest watermark so the
                    # replica can compare at a matched LSN.
                    batch = [
                        r for r in pending if r.lsn <= digest["lsn"]
                    ][: self.batch_records]
                    if batch and batch[-1].lsn < digest["lsn"]:
                        digest = None  # watermark beyond this batch; next round
                elif digest is not None and digest["lsn"] == cursor.shipped_lsn:
                    batch = []  # compare at the cursor before shipping more
                else:
                    digest = None  # stale probe; nothing to compare
                digest_due = False
            try:
                with obs.trace("replication.ship", tenant=cursor.tenant,
                               frames=len(batch)):
                    self._send_batch(cursor, batch, digest)
            except RemoteError as error:
                self._handle_reject(cursor, error)
                break
            sent += len(batch)
            pending = [r for r in pending if r.lsn > cursor.shipped_lsn]
        self._prune_acked(cursor)
        return sent

    def _send_batch(self, cursor: ShipCursor, batch, digest) -> None:
        """One ``replicate`` call under the retry policy (backpressure)."""

        def attempt() -> dict:
            fault_point("replication.ship")
            return self.client.call(
                "replicate",
                tenant=cursor.tenant,
                epoch=cursor.epoch,
                frames=[record_frame(r) for r in batch],
                tip_lsn=cursor.tip_lsn,
                digest=digest,
            )

        status = run_with_retry(
            attempt, self.retry_policy, metric_prefix="replication.ship"
        )
        cursor.applied_lsn = int(status.get("applied_lsn", cursor.applied_lsn))
        if batch:
            cursor.shipped_lsn = max(cursor.shipped_lsn, batch[-1].lsn)
        cursor.shipped_lsn = max(cursor.shipped_lsn, cursor.applied_lsn)
        cursor.batches += 1
        cursor.batches_since_digest += 1
        cursor.last_error = None
        if digest is not None and status.get("digest_checked"):
            cursor.digests_exchanged += 1
            cursor.batches_since_digest = 0
        _count("replication.shipped_records", len(batch))

    def _handle_reject(self, cursor: ShipCursor, error: RemoteError) -> None:
        """A non-retryable replica reply: fence, re-seed, or resync."""
        cursor.last_error = str(error)
        if error.error_type == "FencedError":
            # This primary has been deposed; stop shipping, stay quiet.
            cursor.fenced = True
            _count("replication.fenced_total")
            return
        if error.error_type == "DivergenceError":
            self._reseed(cursor)
            return
        # A cursor gap or an unexpected typed error: resynchronise from
        # the replica's reported position with an empty status probe.
        try:
            status = self.client.call(
                "replicate", tenant=cursor.tenant, epoch=cursor.epoch, frames=[]
            )
            cursor.applied_lsn = int(status.get("applied_lsn", 0))
            cursor.shipped_lsn = cursor.applied_lsn
        except (RemoteError, RingoError, OSError) as probe_error:
            # Next cycle retries from the old cursor.
            cursor.last_error = f"resync probe failed: {probe_error}"

    # -- digest exchange and re-seed -------------------------------------

    def _service_call(self, tenant: str, op: str, **args):
        """A consistent read through our own service's dispatcher.

        Routing through ``submit`` serializes with the tenant's engine
        calls, so a ``digest_at`` or ``checkpoint`` observes a stable
        WAL watermark — no commit can interleave mid-computation.
        """
        service = self.service
        if service is None or service.loop is None:
            return None
        raw = {
            "id": f"ship-{tenant}-{op}",
            "tenant": tenant,
            "op": op,
            "args": args,
        }
        future = asyncio.run_coroutine_threadsafe(
            service.submit(raw), service.loop
        )
        envelope = future.result(self.client.timeout)
        if not envelope.get("ok"):
            return None
        return envelope.get("result")

    def _consistent_digest(self, tenant: str) -> "dict | None":
        result = self._service_call(tenant, "digest_at")
        if not isinstance(result, dict):
            return None
        return {"lsn": int(result.get("lsn", 0)), "digest": result.get("digest")}

    def _reseed(self, cursor: ShipCursor) -> None:
        """Automatic divergence recovery: checkpoint, ship state, resync.

        The tenant is checkpointed through its serialized dispatcher,
        then the newest checkpoint's artifacts plus the full WAL are
        shipped as one ``replicate_seed`` payload. The replica
        quarantines its diverged state aside and restores — after which
        shipping resumes from the replica's reported cursor.
        """
        tenant = cursor.tenant
        with obs.trace("replication.reseed", tenant=tenant):
            if self.service is not None:
                self._service_call(tenant, "checkpoint")
            directory = self.spool_dir / tenant
            files: dict[str, str] = {}
            wal_path = directory / WAL_FILENAME
            if wal_path.exists():
                # Ship only the committed prefix: a torn tail is not
                # committed state and must not seed the replica.
                _records, tail = read_wal(wal_path)
                with open(wal_path, "rb") as handle:
                    data = handle.read()
                if tail.torn:
                    data = data[: tail.valid_bytes]
                files[WAL_FILENAME] = b64encode(data).decode("ascii")
            checkpoints = find_checkpoints(directory)
            if checkpoints:
                newest = checkpoints[0]
                for path in sorted(newest.rglob("*")):
                    if path.is_file():
                        rel = Path(CHECKPOINT_SUBDIR) / newest.name / path.relative_to(newest)
                        files[str(rel)] = b64encode(path.read_bytes()).decode("ascii")
            try:
                status = self.client.call(
                    "replicate_seed",
                    tenant=tenant,
                    epoch=cursor.epoch,
                    files=files,
                )
            except (RemoteError, RingoError, OSError) as error:
                cursor.last_error = f"re-seed failed: {error}"
                return
            cursor.reseeds += 1
            cursor.applied_lsn = int(status.get("applied_lsn", 0))
            cursor.shipped_lsn = cursor.applied_lsn
            cursor.batches_since_digest = 0
            cursor.last_error = None
            _count("replication.reseeds_total")

    # -- bookkeeping -----------------------------------------------------

    def _cursor(self, tenant: str) -> ShipCursor:
        with self._lock:
            cursor = self.cursors.get(tenant)
            if cursor is None:
                cursor = ShipCursor(tenant)
                self.cursors[tenant] = cursor
            return cursor

    def _spool_tenants(self) -> list[str]:
        if not self.spool_dir.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.spool_dir.iterdir()
            if entry.is_dir()
            and (entry / WAL_FILENAME).exists()
            # State renamed aside by checkpoint quarantine or a re-seed
            # is not a tenant; never ship (or re-create) it.
            and ".quarantined" not in entry.name
        )

    def health(self) -> dict:
        """The ``health()["replication"]`` section for a primary."""
        with self._lock:
            cursors = dict(self.cursors)
        return {
            "role": "primary",
            "replica": list(self.client.addresses),
            "interval_s": self.interval_s,
            "cycles": self.cycles,
            "tenants": {name: c.snapshot() for name, c in cursors.items()},
        }
