"""Hot-standby replication: WAL shipping, fenced failover, divergence detection.

The single-big-memory-machine bet (PAPER.md §1) makes the running
process the availability blast radius. This package closes that gap
with the lineage-replay idea already powering recovery: the primary
session service continuously ships its committed provenance-WAL records
to a warm standby that replays them through the same operator registry,
so the replica's catalogs — and its incremental engine state — track
the primary live instead of being rebuilt after a disaster.

Three correctness mechanisms (see ``docs/replication.md``):

* **epoch fencing** (:mod:`repro.recovery.epoch`) — a monotonic term
  stamped into WAL frames and checkpoint manifests; a deposed primary's
  appends raise :class:`~repro.exceptions.FencedError`.
* **promotion** (:meth:`ReplicaApplier.promote`, the ``promote`` wire
  verb, ``repro promote``) — fence the old primary at the new epoch,
  drain its committed WAL tail, bump the replica's epoch, start
  accepting writes.
* **divergence detection** (:meth:`ReplicaTenant.check_digest`) —
  periodic ``catalog_digest`` exchange at ship watermarks; a mismatch
  raises :class:`~repro.exceptions.DivergenceError`, quarantines the
  replica state, and triggers automatic re-seed from the primary's
  latest checkpoint.

Lag is first-class: ``health()["replication"]`` exposes shipped/applied
LSN, lag bytes/records, and epoch; a replica past its lag threshold
degrades reads with the retryable
:class:`~repro.exceptions.ReplicaLagError` instead of serving stale
answers.
"""

from repro.exceptions import (
    DivergenceError,
    FencedError,
    ReplicaLagError,
    ReplicationError,
)
from repro.recovery.epoch import EpochState, fence, read_epoch, write_epoch
from repro.replication.apply import ReplicaApplier, ReplicaTenant
from repro.replication.ship import ShipCursor, WalShipper

__all__ = [
    "DivergenceError",
    "EpochState",
    "FencedError",
    "ReplicaApplier",
    "ReplicaLagError",
    "ReplicaTenant",
    "ReplicationError",
    "ShipCursor",
    "WalShipper",
    "fence",
    "read_epoch",
    "write_epoch",
]
