"""Ringo graph objects (paper §2.2).

Dynamic graphs as hash tables of nodes with sorted adjacency vectors
(directed, undirected, attributed, multi), an immutable CSR snapshot for
bulk analytics and the §2.2 design-tradeoff ablation, plus structural
operations and binary serialization.
"""

from repro.graphs.csr import CSRGraph
from repro.graphs.directed import DirectedGraph
from repro.graphs.multigraph import DirectedMultigraph
from repro.graphs.network import Network
from repro.graphs.ops import (
    degree_array,
    ego_network,
    filter_by_degree,
    intersect_graphs,
    merge_graphs,
    remove_self_loops,
    renumber,
    subgraph,
)
from repro.graphs.snapshot import SnapshotCache, csr_snapshot, snapshot_cache
from repro.graphs.serialize import (
    load_edge_list,
    load_graph,
    save_edge_list,
    save_graph,
)
from repro.graphs.undirected import UndirectedGraph

__all__ = [
    "CSRGraph",
    "DirectedGraph",
    "DirectedMultigraph",
    "Network",
    "SnapshotCache",
    "UndirectedGraph",
    "degree_array",
    "ego_network",
    "filter_by_degree",
    "intersect_graphs",
    "merge_graphs",
    "load_edge_list",
    "load_graph",
    "remove_self_loops",
    "renumber",
    "save_edge_list",
    "save_graph",
    "csr_snapshot",
    "snapshot_cache",
    "subgraph",
]
