"""Directed multigraph with explicit edge ids.

Event data often yields parallel edges (the same user answering the same
asker twice); before deduplicating into a simple
:class:`~repro.graphs.directed.DirectedGraph`, workflows can keep the
multiplicity here. Edges have dense ids so edge attributes and
edge-table conversions stay cheap.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import EdgeNotFoundError, GraphError
from repro.graphs.base import GraphBase


class DirectedMultigraph(GraphBase):
    """A directed graph allowing parallel edges, each with an edge id.

    >>> graph = DirectedMultigraph()
    >>> first = graph.add_edge(1, 2)
    >>> second = graph.add_edge(1, 2)
    >>> graph.num_edges
    2
    >>> graph.edge_endpoints(first)
    (1, 2)
    """

    def __init__(self) -> None:
        self._nodes: dict[int, tuple[list[int], list[int]]] = {}
        self._edge_src: list[int] = []
        self._edge_dst: list[int] = []
        self._deleted: set[int] = set()
        self._version = 0

    @property
    def is_directed(self) -> bool:
        """True; parallel directed edges are allowed."""
        return True

    @property
    def num_edges(self) -> int:
        """Number of live edges."""
        return len(self._edge_src) - len(self._deleted)

    def add_node(self, node_id: int) -> bool:
        """Add a node; returns False if it already existed."""
        node_id = int(node_id)
        if node_id < 0:
            raise GraphError(f"node ids must be non-negative, got {node_id}")
        if node_id in self._nodes:
            return False
        self._nodes[node_id] = ([], [])
        self._bump_version()
        return True

    def add_edge(self, src: int, dst: int) -> int:
        """Add an edge (endpoints auto-created); returns its edge id."""
        src = int(src)
        dst = int(dst)
        self.add_node(src)
        self.add_node(dst)
        edge_id = len(self._edge_src)
        self._edge_src.append(src)
        self._edge_dst.append(dst)
        self._nodes[src][1].append(edge_id)
        self._nodes[dst][0].append(edge_id)
        self._bump_version()
        return edge_id

    def del_edge(self, edge_id: int) -> None:
        """Delete an edge by id; raises if unknown or already deleted."""
        if not self.has_edge_id(edge_id):
            raise EdgeNotFoundError(-1, -1)
        self._deleted.add(edge_id)
        src = self._edge_src[edge_id]
        dst = self._edge_dst[edge_id]
        self._nodes[src][1].remove(edge_id)
        self._nodes[dst][0].remove(edge_id)
        self._bump_version()

    def has_edge_id(self, edge_id: int) -> bool:
        """Whether ``edge_id`` names a live edge."""
        return 0 <= edge_id < len(self._edge_src) and edge_id not in self._deleted

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        """The ``(src, dst)`` endpoints of a live edge."""
        if not self.has_edge_id(edge_id):
            raise EdgeNotFoundError(-1, -1)
        return self._edge_src[edge_id], self._edge_dst[edge_id]

    def edge_count(self, src: int, dst: int) -> int:
        """Number of parallel ``src -> dst`` edges."""
        record = self._nodes.get(src)
        if record is None:
            return 0
        return sum(1 for eid in record[1] if self._edge_dst[eid] == dst)

    def out_degree(self, node_id: int) -> int:
        """Out-degree counting parallel edges."""
        self._require_node(node_id)
        return len(self._nodes[node_id][1])

    def in_degree(self, node_id: int) -> int:
        """In-degree counting parallel edges."""
        self._require_node(node_id)
        return len(self._nodes[node_id][0])

    def out_edges(self, node_id: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(edge_id, dst)`` for a node's outgoing edges."""
        self._require_node(node_id)
        for eid in self._nodes[node_id][1]:
            yield eid, self._edge_dst[eid]

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Iterate live edges as ``(edge_id, src, dst)``."""
        for eid in range(len(self._edge_src)):
            if eid not in self._deleted:
                yield eid, self._edge_src[eid], self._edge_dst[eid]

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Live edges as parallel ``(src, dst)`` arrays."""
        if not self._deleted:
            return (
                np.asarray(self._edge_src, dtype=np.int64),
                np.asarray(self._edge_dst, dtype=np.int64),
            )
        live = [eid for eid in range(len(self._edge_src)) if eid not in self._deleted]
        src = np.asarray([self._edge_src[eid] for eid in live], dtype=np.int64)
        dst = np.asarray([self._edge_dst[eid] for eid in live], dtype=np.int64)
        return src, dst

    def to_simple(self) -> "DirectedGraph":
        """Collapse parallel edges into a simple :class:`DirectedGraph`."""
        from repro.graphs.directed import DirectedGraph

        simple = DirectedGraph()
        for node_id in self._nodes:
            simple.add_node(node_id)
        for _, src, dst in self.edges():
            simple.add_edge(src, dst)
        return simple

    def __repr__(self) -> str:
        return f"DirectedMultigraph({self.num_nodes} nodes, {self.num_edges} edges)"
