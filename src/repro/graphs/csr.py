"""Compressed Sparse Row snapshot — the representation Ringo decided
*against* for its dynamic graphs (paper §2.2), kept here for two reasons:

* the A2 ablation benchmark measures the design trade-off the paper
  describes (CSR traversal speed vs prohibitive update cost), and
* the bulk analytics kernels (PageRank, triangles) run fastest over a
  CSR snapshot, mirroring how Ringo's C++ loops stream over contiguous
  adjacency data.

A :class:`CSRGraph` is immutable. Node ids are densified to ``0..n-1``;
``node_ids[dense]`` recovers the original id and :meth:`dense_of` maps
the other way.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graphs.base import readonly
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph


class CSRGraph:
    """Immutable CSR snapshot of a directed graph (in- and out-adjacency).

    >>> csr = CSRGraph.from_edges([0, 0, 1], [1, 2, 2])
    >>> csr.out_neighbors(0).tolist()
    [1, 2]
    >>> csr.num_edges
    3
    """

    def __init__(
        self,
        node_ids: np.ndarray,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
    ) -> None:
        self._node_ids = np.ascontiguousarray(node_ids, dtype=np.int64)
        self._out_indptr = np.ascontiguousarray(out_indptr, dtype=np.int64)
        self._out_indices = np.ascontiguousarray(out_indices, dtype=np.int64)
        self._in_indptr = np.ascontiguousarray(in_indptr, dtype=np.int64)
        self._in_indices = np.ascontiguousarray(in_indices, dtype=np.int64)
        self._dense_lookup: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        sources: "np.ndarray | list[int]",
        targets: "np.ndarray | list[int]",
        deduplicate: bool = True,
    ) -> "CSRGraph":
        """Build from parallel edge arrays of original node ids.

        Node set = union of endpoints; parallel edges are removed unless
        ``deduplicate=False``.
        """
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        if len(sources) != len(targets):
            raise GraphError("edge arrays must have equal length")
        node_ids = np.unique(np.concatenate([sources, targets]))
        dense_src = np.searchsorted(node_ids, sources)
        dense_dst = np.searchsorted(node_ids, targets)
        if deduplicate and len(dense_src):
            pairs = np.stack([dense_src, dense_dst], axis=1)
            pairs = np.unique(pairs, axis=0)
            dense_src, dense_dst = pairs[:, 0], pairs[:, 1]
        return cls._from_dense_edges(node_ids, dense_src, dense_dst)

    @classmethod
    def _from_dense_edges(
        cls, node_ids: np.ndarray, dense_src: np.ndarray, dense_dst: np.ndarray
    ) -> "CSRGraph":
        count = len(node_ids)
        out_order = np.lexsort((dense_dst, dense_src))
        out_indices = dense_dst[out_order]
        out_degrees = np.bincount(dense_src, minlength=count)
        out_indptr = np.concatenate(([0], np.cumsum(out_degrees)))
        in_order = np.lexsort((dense_src, dense_dst))
        in_indices = dense_src[in_order]
        in_degrees = np.bincount(dense_dst, minlength=count)
        in_indptr = np.concatenate(([0], np.cumsum(in_degrees)))
        return cls(node_ids, out_indptr, out_indices, in_indptr, in_indices)

    @classmethod
    def from_graph(cls, graph: "DirectedGraph | UndirectedGraph") -> "CSRGraph":
        """Snapshot a dynamic graph (undirected edges become symmetric)."""
        sources, targets = graph.edge_arrays()
        if not graph.is_directed:
            keep = sources != targets
            sources, targets = (
                np.concatenate([sources, targets[keep]]),
                np.concatenate([targets, sources[keep]]),
            )
        csr = cls.from_edges(sources, targets, deduplicate=False)
        if graph.num_nodes != csr.num_nodes:
            # The dynamic graph has isolated nodes that edges alone miss.
            return cls._with_all_nodes(graph, sources, targets)
        return csr

    @classmethod
    def _with_all_nodes(
        cls, graph: "DirectedGraph | UndirectedGraph",
        sources: np.ndarray, targets: np.ndarray,
    ) -> "CSRGraph":
        node_ids = np.sort(graph.node_array())
        dense_src = np.searchsorted(node_ids, sources)
        dense_dst = np.searchsorted(node_ids, targets)
        return cls._from_dense_edges(node_ids, dense_src, dense_dst)

    # ------------------------------------------------------------------
    # Queries (dense indices unless stated otherwise)
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._node_ids)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self._out_indices)

    @property
    def node_ids(self) -> np.ndarray:
        """Original node id per dense index (sorted ascending)."""
        return readonly(self._node_ids)

    @property
    def out_indptr(self) -> np.ndarray:
        """CSR row pointer for out-adjacency."""
        return readonly(self._out_indptr)

    @property
    def out_indices(self) -> np.ndarray:
        """CSR column indices for out-adjacency (dense ids)."""
        return readonly(self._out_indices)

    @property
    def in_indptr(self) -> np.ndarray:
        """CSR row pointer for in-adjacency."""
        return readonly(self._in_indptr)

    @property
    def in_indices(self) -> np.ndarray:
        """CSR column indices for in-adjacency (dense ids)."""
        return readonly(self._in_indices)

    def dense_of(self, original_id: int) -> int:
        """Dense index of an original node id."""
        position = int(np.searchsorted(self._node_ids, original_id))
        if position >= len(self._node_ids) or self._node_ids[position] != original_id:
            raise NodeNotFoundError(original_id)
        return position

    def dense_of_many(self, original_ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`dense_of`."""
        positions = np.searchsorted(self._node_ids, original_ids)
        positions = np.clip(positions, 0, len(self._node_ids) - 1)
        if not np.array_equal(self._node_ids[positions], original_ids):
            missing = original_ids[self._node_ids[positions] != original_ids]
            raise NodeNotFoundError(int(missing[0]))
        return positions

    def out_neighbors(self, dense: int) -> np.ndarray:
        """Out-neighbours (dense ids, sorted) of a dense node index."""
        return readonly(
            self._out_indices[self._out_indptr[dense]:self._out_indptr[dense + 1]]
        )

    def in_neighbors(self, dense: int) -> np.ndarray:
        """In-neighbours (dense ids, sorted) of a dense node index."""
        return readonly(
            self._in_indices[self._in_indptr[dense]:self._in_indptr[dense + 1]]
        )

    def out_degrees(self) -> np.ndarray:
        """Out-degree per dense node index."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree per dense node index."""
        return np.diff(self._in_indptr)

    def memory_bytes(self) -> int:
        """Bytes held by the five CSR arrays (Table 2 / A2 accounting)."""
        return (
            self._node_ids.nbytes
            + self._out_indptr.nbytes
            + self._out_indices.nbytes
            + self._in_indptr.nbytes
            + self._in_indices.nbytes
        )

    def __repr__(self) -> str:
        return f"CSRGraph({self.num_nodes} nodes, {self.num_edges} edges)"

    # ------------------------------------------------------------------
    # The §2.2 design discussion: CSR updates are O(E)
    # ------------------------------------------------------------------

    def with_edge_deleted(self, src: int, dst: int) -> "CSRGraph":
        """A new CSR with one edge removed — deliberately O(E).

        The paper rejects CSR for dynamic graphs because "deleting a
        single edge requires time linear in the total number of edges".
        This method exists so the A2 ablation can measure that cost; it
        rebuilds both index arrays.
        """
        dense_src = self.dense_of(src)
        dense_dst = self.dense_of(dst)
        span = slice(self._out_indptr[dense_src], self._out_indptr[dense_src + 1])
        local = np.searchsorted(self._out_indices[span], dense_dst)
        position = int(self._out_indptr[dense_src]) + int(local)
        if (
            position >= self._out_indptr[dense_src + 1]
            or self._out_indices[position] != dense_dst
        ):
            raise GraphError(f"edge ({src} -> {dst}) not in graph")
        all_src = np.repeat(np.arange(self.num_nodes), self.out_degrees())
        keep = np.ones(self.num_edges, dtype=bool)
        keep[position] = False
        return CSRGraph._from_dense_edges(
            self._node_ids, all_src[keep], self._out_indices[keep]
        )
