"""Compressed Sparse Row snapshot — the representation Ringo decided
*against* for its dynamic graphs (paper §2.2), kept here for two reasons:

* the A2 ablation benchmark measures the design trade-off the paper
  describes (CSR traversal speed vs prohibitive update cost), and
* the bulk analytics kernels (PageRank, triangles) run fastest over a
  CSR snapshot, mirroring how Ringo's C++ loops stream over contiguous
  adjacency data.

A :class:`CSRGraph` is immutable. Node ids are densified to ``0..n-1``;
``node_ids[dense]`` recovers the original id and :meth:`dense_of` maps
the other way.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graphs.base import readonly
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph


class CSRGraph:
    """Immutable CSR snapshot of a directed graph (in- and out-adjacency).

    >>> csr = CSRGraph.from_edges([0, 0, 1], [1, 2, 2])
    >>> csr.out_neighbors(0).tolist()
    [1, 2]
    >>> csr.num_edges
    3
    """

    def __init__(
        self,
        node_ids: np.ndarray,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
    ) -> None:
        self._node_ids = np.ascontiguousarray(node_ids, dtype=np.int64)
        self._out_indptr = np.ascontiguousarray(out_indptr, dtype=np.int64)
        self._out_indices = np.ascontiguousarray(out_indices, dtype=np.int64)
        self._in_indptr = np.ascontiguousarray(in_indptr, dtype=np.int64)
        self._in_indices = np.ascontiguousarray(in_indices, dtype=np.int64)
        # Derived kernel inputs, computed lazily and exactly once — the
        # snapshot is immutable, so every algorithm invocation on the
        # same CSR shares these instead of rebuilding them per call.
        self._out_degrees: np.ndarray | None = None
        self._in_degrees: np.ndarray | None = None
        self._edge_sources: np.ndarray | None = None
        self._num_self_loops: int | None = None
        self._undirected: "CSRGraph | None" = None
        self._forward: "tuple[np.ndarray, np.ndarray] | None" = None
        self._forward_edge_keys: "np.ndarray | None" = None
        self._out_edge_keys: "np.ndarray | None" = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        sources: "np.ndarray | list[int]",
        targets: "np.ndarray | list[int]",
        deduplicate: bool = True,
    ) -> "CSRGraph":
        """Build from parallel edge arrays of original node ids.

        Node set = union of endpoints; parallel edges are removed unless
        ``deduplicate=False``.
        """
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        if len(sources) != len(targets):
            raise GraphError("edge arrays must have equal length")
        node_ids = np.unique(np.concatenate([sources, targets]))
        dense_src = np.searchsorted(node_ids, sources)
        dense_dst = np.searchsorted(node_ids, targets)
        if deduplicate and len(dense_src):
            pairs = np.stack([dense_src, dense_dst], axis=1)
            pairs = np.unique(pairs, axis=0)
            dense_src, dense_dst = pairs[:, 0], pairs[:, 1]
        return cls._from_dense_edges(node_ids, dense_src, dense_dst)

    @classmethod
    def _from_dense_edges(
        cls, node_ids: np.ndarray, dense_src: np.ndarray, dense_dst: np.ndarray
    ) -> "CSRGraph":
        count = len(node_ids)
        out_order = np.lexsort((dense_dst, dense_src))
        out_indices = dense_dst[out_order]
        out_degrees = np.bincount(dense_src, minlength=count)
        out_indptr = np.concatenate(([0], np.cumsum(out_degrees)))
        in_order = np.lexsort((dense_src, dense_dst))
        in_indices = dense_src[in_order]
        in_degrees = np.bincount(dense_dst, minlength=count)
        in_indptr = np.concatenate(([0], np.cumsum(in_degrees)))
        return cls(node_ids, out_indptr, out_indices, in_indptr, in_indices)

    @classmethod
    def from_graph(
        cls, graph: "DirectedGraph | UndirectedGraph", pool=None
    ) -> "CSRGraph":
        """Snapshot a dynamic graph (undirected edges become symmetric).

        One build path for all inputs — isolated nodes are included from
        the start, so no mismatch-detect-and-rebuild ever happens. The
        dynamic adjacency vectors are already sorted, which lets the
        build skip the edge-list lexsort entirely and run the paper's
        sort-first phases directly: **count** (per-node degrees off the
        adjacency vectors) then **copy** (densify each node's vectors
        into its CSR slice). Both phases partition the node range into
        disjoint spans, so a :class:`~repro.parallel.executor.WorkerPool`
        (``pool=``) runs them with no write contention.
        """
        from repro.parallel.executor import serial_pool

        if pool is None:
            pool = serial_pool()
        node_ids = np.sort(graph.node_array())
        if graph.is_directed:
            return cls._from_directed_records(graph, node_ids, pool)
        return cls._from_undirected_records(graph, node_ids, pool)

    @classmethod
    def _from_directed_records(
        cls, graph: "DirectedGraph", node_ids: np.ndarray, pool
    ) -> "CSRGraph":
        records = graph._nodes
        id_list = node_ids.tolist()
        count = len(id_list)
        out_deg = np.zeros(count, dtype=np.int64)
        in_deg = np.zeros(count, dtype=np.int64)

        def count_partition(lo: int, hi: int) -> None:
            for index in range(lo, hi):
                record = records[id_list[index]]
                out_deg[index] = len(record.out_nbrs)
                in_deg[index] = len(record.in_nbrs)

        if count:
            pool.map_range(count, count_partition)
        out_indptr = np.concatenate(([0], np.cumsum(out_deg)))
        in_indptr = np.concatenate(([0], np.cumsum(in_deg)))
        out_indices = np.empty(int(out_indptr[-1]), dtype=np.int64)
        in_indices = np.empty(int(in_indptr[-1]), dtype=np.int64)

        def copy_partition(lo: int, hi: int) -> None:
            # Adjacency vectors are sorted by original id and node_ids is
            # sorted, so the densified slices stay sorted per row.
            for index in range(lo, hi):
                record = records[id_list[index]]
                if len(record.out_nbrs):
                    out_indices[out_indptr[index]:out_indptr[index + 1]] = (
                        np.searchsorted(node_ids, record.out_nbrs)
                    )
                if len(record.in_nbrs):
                    in_indices[in_indptr[index]:in_indptr[index + 1]] = (
                        np.searchsorted(node_ids, record.in_nbrs)
                    )

        if count:
            pool.map_range(count, copy_partition)
        return cls(node_ids, out_indptr, out_indices, in_indptr, in_indices)

    @classmethod
    def _from_undirected_records(
        cls, graph: "UndirectedGraph", node_ids: np.ndarray, pool
    ) -> "CSRGraph":
        vectors = graph._nodes
        id_list = node_ids.tolist()
        count = len(id_list)
        degrees = np.zeros(count, dtype=np.int64)

        def count_partition(lo: int, hi: int) -> None:
            for index in range(lo, hi):
                degrees[index] = len(vectors[id_list[index]])

        if count:
            pool.map_range(count, count_partition)
        indptr = np.concatenate(([0], np.cumsum(degrees)))
        indices = np.empty(int(indptr[-1]), dtype=np.int64)

        def copy_partition(lo: int, hi: int) -> None:
            for index in range(lo, hi):
                nbrs = vectors[id_list[index]]
                if len(nbrs):
                    indices[indptr[index]:indptr[index + 1]] = (
                        np.searchsorted(node_ids, nbrs)
                    )

        if count:
            pool.map_range(count, copy_partition)
        # Undirected adjacency is symmetric: out- and in-CSR share the
        # same physical arrays (the snapshot is immutable).
        return cls(node_ids, indptr, indices, indptr, indices)

    # ------------------------------------------------------------------
    # Queries (dense indices unless stated otherwise)
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._node_ids)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self._out_indices)

    @property
    def node_ids(self) -> np.ndarray:
        """Original node id per dense index (sorted ascending)."""
        return readonly(self._node_ids)

    @property
    def out_indptr(self) -> np.ndarray:
        """CSR row pointer for out-adjacency."""
        return readonly(self._out_indptr)

    @property
    def out_indices(self) -> np.ndarray:
        """CSR column indices for out-adjacency (dense ids)."""
        return readonly(self._out_indices)

    @property
    def in_indptr(self) -> np.ndarray:
        """CSR row pointer for in-adjacency."""
        return readonly(self._in_indptr)

    @property
    def in_indices(self) -> np.ndarray:
        """CSR column indices for in-adjacency (dense ids)."""
        return readonly(self._in_indices)

    def dense_of(self, original_id: int) -> int:
        """Dense index of an original node id (binary search, no dict)."""
        position = int(np.searchsorted(self._node_ids, original_id))
        if position >= len(self._node_ids) or self._node_ids[position] != original_id:
            raise NodeNotFoundError(original_id)
        return position

    def dense_of_array(self, original_ids) -> np.ndarray:
        """Vectorised dense-id mapper: ``searchsorted`` over ``node_ids``.

        Accepts any array-like of original ids and returns the dense
        index of each; raises :class:`NodeNotFoundError` naming the first
        unknown id. This replaces per-id Python-dict lookups with one
        vectorised binary search, so bulk translations (personalisation
        vectors, link-prediction pairs) cost O(k log n) numpy work.

        >>> csr = CSRGraph.from_edges([10, 10], [20, 30])
        >>> csr.dense_of_array([30, 10]).tolist()
        [2, 0]
        """
        original_ids = np.ascontiguousarray(original_ids, dtype=np.int64)
        positions = np.searchsorted(self._node_ids, original_ids)
        if len(self._node_ids) == 0:
            if len(original_ids):
                raise NodeNotFoundError(int(original_ids[0]))
            return positions
        clipped = np.clip(positions, 0, len(self._node_ids) - 1)
        mismatch = self._node_ids[clipped] != original_ids
        if np.any(mismatch):
            raise NodeNotFoundError(int(original_ids[np.argmax(mismatch)]))
        return clipped

    def dense_of_many(self, original_ids: np.ndarray) -> np.ndarray:
        """Alias of :meth:`dense_of_array` (kept for callers of the old name)."""
        return self.dense_of_array(original_ids)

    def out_neighbors(self, dense: int) -> np.ndarray:
        """Out-neighbours (dense ids, sorted) of a dense node index."""
        return readonly(
            self._out_indices[self._out_indptr[dense]:self._out_indptr[dense + 1]]
        )

    def in_neighbors(self, dense: int) -> np.ndarray:
        """In-neighbours (dense ids, sorted) of a dense node index."""
        return readonly(
            self._in_indices[self._in_indptr[dense]:self._in_indptr[dense + 1]]
        )

    def out_degrees(self) -> np.ndarray:
        """Out-degree per dense node index (cached, read-only)."""
        if self._out_degrees is None:
            self._out_degrees = np.diff(self._out_indptr)
            self._out_degrees.flags.writeable = False
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        """In-degree per dense node index (cached, read-only)."""
        if self._in_degrees is None:
            self._in_degrees = np.diff(self._in_indptr)
            self._in_degrees.flags.writeable = False
        return self._in_degrees

    def edge_sources(self) -> np.ndarray:
        """Source dense id per out-edge, aligned with :attr:`out_indices`.

        The edge-list companion every scatter-add kernel (PageRank, HITS,
        Katz, ANF, …) needs; computed once per snapshot instead of a
        fresh ``np.repeat`` per algorithm invocation. Read-only.

        >>> CSRGraph.from_edges([0, 0, 1], [1, 2, 2]).edge_sources().tolist()
        [0, 0, 1]
        """
        if self._edge_sources is None:
            self._edge_sources = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64), self.out_degrees()
            )
            self._edge_sources.flags.writeable = False
        return self._edge_sources

    def num_self_loops(self) -> int:
        """Number of self-loop edges in the snapshot (cached)."""
        if self._num_self_loops is None:
            self._num_self_loops = int(
                np.sum(self.edge_sources() == self._out_indices)
            )
        return self._num_self_loops

    def undirected_projection(self) -> "CSRGraph":
        """Symmetrised, loop-free CSR over the same node ids (cached).

        The shared input of the triangle/clustering/community family;
        one symmetrisation now serves every such call on this snapshot.
        """
        if self._undirected is None:
            src = self.edge_sources()
            dst = self._out_indices
            keep = src != dst
            src, dst = src[keep], dst[keep]
            sym_src = np.concatenate([src, dst])
            sym_dst = np.concatenate([dst, src])
            pairs = np.unique(np.stack([sym_src, sym_dst], axis=1), axis=0)
            projection = CSRGraph._from_dense_edges(
                self._node_ids, pairs[:, 0], pairs[:, 1]
            )
            # The projection is its own fixed point: chained calls
            # (e.g. girth after triangles) hit the same object.
            projection._undirected = projection
            self._undirected = projection
        return self._undirected

    def forward_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Degree-ranked forward adjacency ``(indptr, indices)`` (cached).

        Each node keeps only its neighbours of strictly higher
        ``(degree, id)`` rank — the orientation that lets the triangle
        kernel close every triangle exactly once at its lowest-ranked
        vertex while hub work collapses to the O(m^1.5) bound. Indices
        stay sorted by dense id inside each node's slice. Like the other
        derived arrays this is computed once per snapshot; warm triangle
        and clustering calls skip the rebuild entirely.
        """
        if self._forward is None:
            count = self.num_nodes
            degrees = self.out_degrees()
            rank = np.empty(count, dtype=np.int64)
            rank[np.lexsort((np.arange(count), degrees))] = np.arange(count)
            src = self.edge_sources()
            dst = self._out_indices
            keep = rank[dst] > rank[src]
            fsrc, fdst = src[keep], dst[keep]
            fdeg = np.bincount(fsrc, minlength=count)
            findptr = np.concatenate(([0], np.cumsum(fdeg)))
            findptr.flags.writeable = False
            findices = np.ascontiguousarray(fdst)
            findices.flags.writeable = False
            self._forward = (findptr, findices)
        return self._forward

    def forward_edge_keys(self) -> np.ndarray:
        """Each forward edge ``(u, v)`` as the sortable key ``u*n + v``.

        The binary-search side of the triangle kernel's wedge-closure
        test. ``forward_indices`` are id-sorted within each node's
        slice, so the key array is globally ascending. Cached like the
        other derived arrays (and exported once per snapshot by the
        process backend instead of being rebuilt per dispatch).
        """
        if self._forward_edge_keys is None:
            findptr, findices = self.forward_adjacency()
            count = self.num_nodes
            keys = (
                np.repeat(np.arange(count, dtype=np.int64), np.diff(findptr))
                * count
                + findices
            )
            keys.flags.writeable = False
            self._forward_edge_keys = keys
        return self._forward_edge_keys

    def out_edge_keys(self) -> np.ndarray:
        """Each out edge ``(src, dst)`` as the sortable key ``src*n + dst``.

        Globally ascending for a simple graph (rows are sorted and
        grouped by ascending source), which makes whole-edge-set
        membership a single vectorised binary search — the delta
        sanitizer's no-dangling-delete / added-edge-present checks.
        Cached like the other derived arrays.
        """
        if self._out_edge_keys is None:
            keys = self.edge_sources() * self.num_nodes + self._out_indices
            keys.flags.writeable = False
            self._out_edge_keys = keys
        return self._out_edge_keys

    def memory_bytes(self) -> int:
        """Bytes held by the five CSR arrays (Table 2 / A2 accounting)."""
        return (
            self._node_ids.nbytes
            + self._out_indptr.nbytes
            + self._out_indices.nbytes
            + self._in_indptr.nbytes
            + self._in_indices.nbytes
        )

    def __repr__(self) -> str:
        return f"CSRGraph({self.num_nodes} nodes, {self.num_edges} edges)"

    # ------------------------------------------------------------------
    # The §2.2 design discussion: CSR updates are O(E)
    # ------------------------------------------------------------------

    def with_edge_deleted(self, src: int, dst: int) -> "CSRGraph":
        """A new CSR with one edge removed — deliberately O(E).

        The paper rejects CSR for dynamic graphs because "deleting a
        single edge requires time linear in the total number of edges".
        This method exists so the A2 ablation can measure that cost; it
        rebuilds both index arrays.
        """
        dense_src = self.dense_of(src)
        dense_dst = self.dense_of(dst)
        span = slice(self._out_indptr[dense_src], self._out_indptr[dense_src + 1])
        local = np.searchsorted(self._out_indices[span], dense_dst)
        position = int(self._out_indptr[dense_src]) + int(local)
        if (
            position >= self._out_indptr[dense_src + 1]
            or self._out_indices[position] != dense_dst
        ):
            raise GraphError(f"edge ({src} -> {dst}) not in graph")
        all_src = self.edge_sources()
        keep = np.ones(self.num_edges, dtype=bool)
        keep[position] = False
        return CSRGraph._from_dense_edges(
            self._node_ids, all_src[keep], self._out_indices[keep]
        )
