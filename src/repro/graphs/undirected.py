"""Undirected graph (SNAP's ``TUNGraph`` analog).

Same hash-table-of-nodes design as :class:`DirectedGraph`, with one
sorted adjacency vector per node. Used by the triangle-counting and
clustering-coefficient algorithms, which the paper runs on the
undirected projections of its datasets.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import EdgeNotFoundError, GraphError
from repro.graphs.base import (
    EMPTY_ADJACENCY,
    GraphBase,
    readonly,
    sorted_contains,
    sorted_insert,
    sorted_remove,
)


class UndirectedGraph(GraphBase):
    """A dynamic undirected graph over int node ids.

    At most one edge per unordered pair; self-loops allowed (stored once).

    >>> graph = UndirectedGraph()
    >>> graph.add_edge(1, 2)
    True
    >>> graph.has_edge(2, 1)
    True
    """

    def __init__(self) -> None:
        self._nodes: dict[int, np.ndarray] = {}
        self._num_edges = 0
        self._version = 0

    @property
    def is_directed(self) -> bool:
        """False; this is the undirected graph class."""
        return False

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return self._num_edges

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        nbrs = self._nodes.get(u)
        return nbrs is not None and sorted_contains(nbrs, v)

    def neighbors(self, node_id: int) -> np.ndarray:
        """Sorted neighbour ids (read-only view)."""
        self._require_node(node_id)
        return readonly(self._nodes[node_id])

    def degree(self, node_id: int) -> int:
        """Degree of ``node_id`` (a self-loop contributes one)."""
        self._require_node(node_id)
        return len(self._nodes[node_id])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each, as ``(min, max)`` pairs."""
        for node_id, nbrs in self._nodes.items():
            start = int(np.searchsorted(nbrs, node_id))
            for nbr in nbrs[start:].tolist():
                yield node_id, nbr

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All edges once each as parallel ``(u, v)`` arrays with u <= v."""
        sources = np.empty(self._num_edges, dtype=np.int64)
        targets = np.empty(self._num_edges, dtype=np.int64)
        cursor = 0
        for node_id, nbrs in self._nodes.items():
            upper = nbrs[int(np.searchsorted(nbrs, node_id)):]
            count = len(upper)
            if count:
                sources[cursor:cursor + count] = node_id
                targets[cursor:cursor + count] = upper
                cursor += count
        return sources, targets

    def add_node(self, node_id: int) -> bool:
        """Add a node; returns False if it already existed."""
        node_id = int(node_id)
        if node_id < 0:
            raise GraphError(f"node ids must be non-negative, got {node_id}")
        if node_id in self._nodes:
            return False
        self._nodes[node_id] = EMPTY_ADJACENCY
        self._bump_version()
        self._record_delta("add_node", node_id)
        return True

    def add_edge(self, u: int, v: int) -> bool:
        """Add the edge ``{u, v}`` (endpoints auto-created).

        Returns False if the edge already existed.
        """
        u = int(u)
        v = int(v)
        self.add_node(u)
        self.add_node(v)
        nbrs, inserted = sorted_insert(self._nodes[u], v)
        if not inserted:
            return False
        self._nodes[u] = nbrs
        if u != v:
            self._nodes[v], _ = sorted_insert(self._nodes[v], u)
        self._num_edges += 1
        self._bump_version()
        self._record_delta("add_edge", u, v)
        return True

    def del_edge(self, u: int, v: int) -> None:
        """Delete the edge ``{u, v}``; raises if absent."""
        nbrs = self._nodes.get(u)
        if nbrs is None:
            raise EdgeNotFoundError(u, v)
        new_nbrs, removed = sorted_remove(nbrs, v)
        if not removed:
            raise EdgeNotFoundError(u, v)
        self._nodes[u] = new_nbrs
        if u != v:
            self._nodes[v], _ = sorted_remove(self._nodes[v], u)
        self._num_edges -= 1
        self._bump_version()
        self._record_delta("del_edge", u, v)

    def del_node(self, node_id: int) -> None:
        """Delete a node and its incident edges; raises if absent."""
        self._require_node(node_id)
        nbrs = self._nodes[node_id]
        # Captured before deletion: the delta log records each incident
        # edge as an explicit delete stamped with the post-bump version.
        nbr_list = nbrs.tolist()
        for nbr in nbrs.tolist():
            if nbr != node_id:
                self._nodes[nbr], _ = sorted_remove(self._nodes[nbr], node_id)
        self._num_edges -= len(nbrs)
        del self._nodes[node_id]
        self._bump_version()
        for nbr in nbr_list:
            self._record_delta("del_edge", node_id, nbr)
        self._record_delta("del_node", node_id)

    def _set_adjacency(self, node_id: int, nbrs: np.ndarray) -> None:
        """Install a pre-sorted adjacency vector — bulk construction only."""
        self.add_node(node_id)
        self._nodes[node_id] = np.ascontiguousarray(nbrs, dtype=np.int64)
        self._bump_version()
        self._poison_delta("bulk adjacency install")

    def _set_edge_count(self, count: int) -> None:
        """Set the edge count after a bulk build."""
        self._num_edges = count
        self._bump_version()
        self._poison_delta("bulk edge-count install")

    def copy(self) -> "UndirectedGraph":
        """Deep copy."""
        result = UndirectedGraph()
        for node_id, nbrs in self._nodes.items():
            result._set_adjacency(node_id, nbrs.copy())
        result._set_edge_count(self._num_edges)
        return result

    def __repr__(self) -> str:
        return f"UndirectedGraph({self.num_nodes} nodes, {self.num_edges} edges)"

    def memory_bytes(self) -> int:
        """Bytes held by adjacency vectors plus hash-table overhead."""
        total = sum(nbrs.nbytes for nbrs in self._nodes.values())
        return total + 100 * len(self._nodes)
