"""Binary save/load for graphs (paper §2.5 — Ringo keeps binary snapshots
so reloading a big graph skips text parsing).

Graphs serialise to ``.npz`` archives holding the node id array and the
edge arrays; loading rebuilds adjacency with the bulk (sort-first style)
path rather than per-edge inserts.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph

_FORMAT_VERSION = 1


def save_graph(graph: "DirectedGraph | UndirectedGraph", path: "str | os.PathLike[str]") -> None:
    """Write a graph to an ``.npz`` archive."""
    sources, targets = graph.edge_arrays()
    np.savez(
        path,
        version=np.int64(_FORMAT_VERSION),
        directed=np.int64(1 if graph.is_directed else 0),
        nodes=graph.node_array(),
        sources=sources,
        targets=targets,
    )


def load_graph(path: "str | os.PathLike[str]") -> "DirectedGraph | UndirectedGraph":
    """Load a graph saved by :func:`save_graph`."""
    with np.load(path) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise GraphError(f"unsupported graph format version {version}")
        directed = bool(int(archive["directed"]))
        nodes = archive["nodes"]
        sources = archive["sources"]
        targets = archive["targets"]
    from repro.convert.table_to_graph import graph_from_edge_arrays

    graph = graph_from_edge_arrays(sources, targets, directed=directed)
    for node_id in nodes.tolist():
        graph.add_node(node_id)
    return graph


def save_edge_list(
    graph: "DirectedGraph | UndirectedGraph",
    path: "str | os.PathLike[str]",
    sep: str = "\t",
) -> int:
    """Write a plain text edge list (the Table 2 "text file" format).

    Returns the number of edges written.
    """
    sources, targets = graph.edge_arrays()
    with open(path, "w", encoding="utf-8") as handle:
        for src, dst in zip(sources.tolist(), targets.tolist()):
            handle.write(f"{src}{sep}{dst}\n")
    return len(sources)


def load_edge_list(
    path: "str | os.PathLike[str]",
    directed: bool = True,
    sep: str = "\t",
    comment: str = "#",
) -> "DirectedGraph | UndirectedGraph":
    """Read a text edge list into a graph (bulk construction path)."""
    sources: list[int] = []
    targets: list[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or (comment and line.startswith(comment)):
                continue
            fields = line.split(sep) if sep != " " else line.split()
            if len(fields) < 2:
                raise GraphError(f"malformed edge line: {line!r}")
            sources.append(int(fields[0]))
            targets.append(int(fields[1]))
    from repro.convert.table_to_graph import graph_from_edge_arrays

    return graph_from_edge_arrays(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        directed=directed,
    )
