"""Binary save/load for graphs (paper §2.5 — Ringo keeps binary snapshots
so reloading a big graph skips text parsing).

Graphs serialise to ``.npz`` archives holding the node id array and the
edge arrays; loading rebuilds adjacency with the bulk (sort-first style)
path rather than per-edge inserts. Format version 2 adds a CRC32 digest
per persisted array (``crc_nodes``/``crc_sources``/``crc_targets``) so
silent on-disk corruption is caught at load time; version-1 archives
(no digests) still load.
"""

from __future__ import annotations

import os
import warnings
import zipfile
import zlib

import numpy as np

from repro.exceptions import CorruptInputError, GraphError
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph

_FORMAT_VERSION = 2


def _array_crc(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def save_graph(graph: "DirectedGraph | UndirectedGraph", path: "str | os.PathLike[str]") -> None:
    """Write a graph to an ``.npz`` archive (with per-array CRC32 digests)."""
    sources, targets = graph.edge_arrays()
    nodes = graph.node_array()
    np.savez(
        path,
        version=np.int64(_FORMAT_VERSION),
        directed=np.int64(1 if graph.is_directed else 0),
        nodes=nodes,
        sources=sources,
        targets=targets,
        crc_nodes=np.int64(_array_crc(nodes)),
        crc_sources=np.int64(_array_crc(sources)),
        crc_targets=np.int64(_array_crc(targets)),
    )


def load_graph(
    path: "str | os.PathLike[str]", verify: "str | bool" = "raise"
) -> "DirectedGraph | UndirectedGraph":
    """Load a graph saved by :func:`save_graph`.

    ``verify`` controls what happens when a stored CRC32 digest does not
    match the loaded array: ``"raise"`` (default) raises
    :class:`~repro.exceptions.CorruptInputError` naming the array,
    ``"warn"`` emits a warning and loads anyway, and ``False`` skips
    verification. Version-1 archives carry no digests and load as-is.
    A garbled or truncated archive raises ``CorruptInputError`` too.
    """
    try:
        with np.load(path) as archive:
            version = int(archive["version"])
            if version not in (1, 2):
                raise GraphError(f"unsupported graph format version {version}")
            directed = bool(int(archive["directed"]))
            nodes = archive["nodes"]
            sources = archive["sources"]
            targets = archive["targets"]
            if version >= 2 and verify:
                for name, array in (
                    ("nodes", nodes), ("sources", sources), ("targets", targets),
                ):
                    expected = int(archive[f"crc_{name}"])
                    if _array_crc(array) != expected:
                        if verify == "warn":
                            warnings.warn(
                                f"{os.fspath(path)}: CRC mismatch in array "
                                f"{name!r}; loading anyway",
                                stacklevel=2,
                            )
                            continue
                        raise CorruptInputError(
                            os.fspath(path), "array CRC mismatch", array=name
                        )
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, KeyError, EOFError, OSError, ValueError) as error:
        raise CorruptInputError(
            os.fspath(path), f"not a readable graph archive: {error}"
        )
    from repro.convert.table_to_graph import graph_from_edge_arrays

    graph = graph_from_edge_arrays(sources, targets, directed=directed)
    for node_id in nodes.tolist():
        graph.add_node(node_id)
    return graph


def save_edge_list(
    graph: "DirectedGraph | UndirectedGraph",
    path: "str | os.PathLike[str]",
    sep: str = "\t",
) -> int:
    """Write a plain text edge list (the Table 2 "text file" format).

    Returns the number of edges written.
    """
    sources, targets = graph.edge_arrays()
    with open(path, "w", encoding="utf-8") as handle:
        for src, dst in zip(sources.tolist(), targets.tolist()):
            handle.write(f"{src}{sep}{dst}\n")
    return len(sources)


def load_edge_list(
    path: "str | os.PathLike[str]",
    directed: bool = True,
    sep: str = "\t",
    comment: str = "#",
) -> "DirectedGraph | UndirectedGraph":
    """Read a text edge list into a graph (bulk construction path)."""
    sources: list[int] = []
    targets: list[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or (comment and line.startswith(comment)):
                continue
            fields = line.split(sep) if sep != " " else line.split()
            if len(fields) < 2:
                raise GraphError(f"malformed edge line: {line!r}")
            sources.append(int(fields[0]))
            targets.append(int(fields[1]))
    from repro.convert.table_to_graph import graph_from_edge_arrays

    return graph_from_edge_arrays(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        directed=directed,
    )
