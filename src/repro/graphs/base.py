"""Shared machinery for Ringo graph objects (paper §2.2).

"Ringo supports dynamic graphs by representing a graph as a hash table of
nodes. Each node maintains sorted adjacency vector[s] of neighboring
nodes." The Python dict plays the node hash table; adjacency vectors are
sorted numpy int64 arrays, so membership is a binary search and edge
deletion is linear in the node degree — the trade-off against CSR the
paper describes (and the A2 ablation measures).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import NodeNotFoundError

EMPTY_ADJACENCY = np.empty(0, dtype=np.int64)


def sorted_insert(array: np.ndarray, value: int) -> tuple[np.ndarray, bool]:
    """Insert ``value`` into a sorted array unless present.

    Returns ``(new_array, inserted)``; the input array is never mutated.
    O(degree), as the paper notes for adjacency updates.
    """
    position = int(np.searchsorted(array, value))
    if position < len(array) and array[position] == value:
        return array, False
    return np.insert(array, position, value), True


def sorted_remove(array: np.ndarray, value: int) -> tuple[np.ndarray, bool]:
    """Remove ``value`` from a sorted array if present.

    Returns ``(new_array, removed)``; the input array is never mutated.
    """
    position = int(np.searchsorted(array, value))
    if position < len(array) and array[position] == value:
        return np.delete(array, position), True
    return array, False


def sorted_contains(array: np.ndarray, value: int) -> bool:
    """Binary-search membership test on a sorted adjacency vector."""
    position = int(np.searchsorted(array, value))
    return bool(position < len(array) and array[position] == value)


def readonly(array: np.ndarray) -> np.ndarray:
    """A read-only view of ``array`` (callers must not mutate adjacency)."""
    view = array.view()
    view.flags.writeable = False
    return view


class GraphBase:
    """Behaviour shared by the directed and undirected graph classes.

    Subclasses supply ``_nodes`` (the node hash table) and the edge
    bookkeeping; this base provides the derived queries algorithms use.

    Every structural mutation bumps :attr:`version`, a cheap monotonic
    counter. Snapshot consumers (the CSR cache in
    :mod:`repro.graphs.snapshot`) memoise on ``(graph, version)``, so an
    unchanged graph can be re-analysed without re-converting while any
    add/delete automatically invalidates stale snapshots.
    """

    _nodes: dict
    _version: int = 0
    # Attached by the snapshot cache when incremental maintenance is on
    # (see repro.incremental.delta.MutationLog); None costs one attribute
    # load per mutation and nothing else.
    _delta_log = None

    @property
    def version(self) -> int:
        """Monotonic structure version; bumped by every mutating op.

        Two reads returning the same value guarantee no node or edge was
        added or removed in between — the contract the snapshot cache
        relies on. Attribute-only updates (e.g. ``Network`` attributes)
        do not change structure and do not bump it.
        """
        return self._version

    def _bump_version(self) -> None:
        """Record one structural mutation (invalidates cached snapshots)."""
        self._version += 1

    def _record_delta(self, kind: str, a: int = -1, b: int = -1) -> None:
        """Append one mutation to the attached delta log, if any.

        Called by the mutators *after* their version bump so the record
        carries the version the mutation produced. Inert (one attribute
        load, one ``None`` check) unless the snapshot cache attached a
        log for incremental maintenance.
        """
        log = self._delta_log
        if log is not None:
            log.record(self._version, kind, a, b)

    def _poison_delta(self, reason: str) -> None:
        """Mark the attached delta log unusable (bulk-install paths)."""
        log = self._delta_log
        if log is not None:
            log.poison(reason)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def has_node(self, node_id: int) -> bool:
        """Whether ``node_id`` is present."""
        return node_id in self._nodes

    def nodes(self) -> Iterator[int]:
        """Iterate node ids (hash-table order: insertion order in CPython)."""
        return iter(self._nodes)

    def node_array(self) -> np.ndarray:
        """All node ids as an int64 array."""
        return np.fromiter(self._nodes.keys(), dtype=np.int64, count=len(self._nodes))

    def _require_node(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)

    def max_node_id(self) -> int:
        """Largest node id, or -1 for an empty graph."""
        return max(self._nodes, default=-1)
