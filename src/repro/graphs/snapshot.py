"""Versioned CSR snapshot cache — conversion reuse for the interactive loop.

Ringo's headline claim is *interactive* analytics: one dynamic graph,
many algorithm invocations (paper §2.2, §3, Fig 2). Each bulk kernel
runs over an immutable :class:`~repro.graphs.csr.CSRGraph` snapshot, and
before this cache every invocation paid the full O(V+E) re-snapshot even
when the graph had not changed. The cache memoises snapshots on
``(graph identity, graph version)``:

* the dynamic graph classes bump a monotonic ``version`` counter on
  every structural mutation (see :class:`repro.graphs.base.GraphBase`),
  so a stale snapshot is detected by one integer compare and rebuilt —
  no manual invalidation ever needed;
* entries hold the graph **weakly** (keyed by ``id(graph)`` with a
  ``weakref`` cleanup callback), so caching a graph never prevents it
  from being garbage-collected, and a collected graph's snapshot is
  dropped with it;
* admission is **byte-budgeted**: a snapshot larger than the configured
  ``max_bytes`` ceiling (counting all cached snapshots) is still
  returned to the caller but not retained, so the cache cannot blow the
  memory headroom an operator granted it;
* every build passes through the ``snapshot.build`` fault site, so
  :func:`repro.faults.inject_faults` can prove a failed conversion never
  leaves a partial entry behind.

The process-wide default cache is what
:func:`repro.algorithms.common.as_csr` consults, which is how all ~20
algorithm modules share snapshots without code changes at call sites.
``Ringo(snapshot_cache=...)`` toggles and budgets it, and
``Ringo.health()`` reports its counters.
"""

from __future__ import annotations

import sys
import threading
import weakref

import numpy as np

from repro.analysis.sanitize import maybe_sanitize, maybe_sanitize_delta
from repro.exceptions import RingoError
from repro.faults import fault_point
from repro.graphs.csr import CSRGraph
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph
from repro.incremental.delta import DeltaError, apply_delta
from repro.incremental.engine import incremental_engine
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.spans import enabled as _tracing_enabled
from repro.obs.spans import event as _obs_event
from repro.obs.spans import trace as _obs_trace


def _count(name: str) -> None:
    """Bump a snapshot.* counter — only while tracing is armed, so the
    untraced hot path pays a single module-global check."""
    if _tracing_enabled():
        _metrics_registry().counter(name).inc()


def _drop_shm_export(csr) -> None:
    """Tell the shared-memory registry a snapshot left the cache.

    Process-backend exports are keyed by the snapshot identity this
    cache stamps, so every eviction path (stale replacement, over-budget
    drop, graph collection, invalidate, clear) must invalidate them too
    — an export must never outlive the snapshot it was cut from. Looked
    up via ``sys.modules`` so sessions that never touch the process
    backend pay nothing and pull in no extra imports.
    """
    shm = sys.modules.get("repro.parallel.shm")
    if shm is not None and csr is not None:
        shm.notify_snapshot_dropped(csr)


class _Entry:
    """One cached snapshot: weak graph ref, version stamp, CSR, size."""

    __slots__ = ("ref", "version", "csr", "nbytes")

    def __init__(self, ref, version: int, csr: CSRGraph, nbytes: int) -> None:
        self.ref = ref
        self.version = version
        self.csr = csr
        self.nbytes = nbytes


class SnapshotCache:
    """Weakref-keyed, version-checked cache of CSR snapshots.

    ``max_bytes`` caps the total bytes of retained snapshots (``None``
    means unlimited); an over-budget snapshot is built and returned but
    not cached, recorded under ``rejected``. ``enabled=False`` turns the
    cache into a pass-through that still counts conversions.

    >>> from repro.graphs.directed import DirectedGraph
    >>> cache = SnapshotCache()
    >>> g = DirectedGraph(); _ = g.add_edge(1, 2)
    >>> cache.get(g) is cache.get(g)
    True
    >>> cache.stats()["hits"], cache.stats()["misses"]
    (1, 1)
    """

    def __init__(self, enabled: bool = True, max_bytes: "int | None" = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise RingoError(
                f"snapshot cache max_bytes must be positive, got {max_bytes}"
            )
        self._lock = threading.Lock()
        self._entries: dict[int, _Entry] = {}
        self.enabled = enabled
        self.max_bytes = max_bytes
        self._cached_bytes = 0
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._rejected = 0
        self._collected = 0
        self._conversions = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(
        self, graph: "DirectedGraph | UndirectedGraph", pool=None
    ) -> CSRGraph:
        """The CSR snapshot for ``graph`` at its current version.

        A hit costs one dict probe and one integer compare. On a miss
        (or a stale version) the snapshot is rebuilt — in parallel when
        ``pool`` is a multi-worker :class:`~repro.parallel.executor.WorkerPool`
        — and retained if it passes byte admission.
        """
        if not isinstance(graph, (DirectedGraph, UndirectedGraph)):
            raise RingoError(
                f"snapshot cache expects a dynamic graph, got {type(graph).__name__}"
            )
        key = id(graph)
        version = graph.version
        stale = False
        stale_entry = None
        if self.enabled:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    if entry.version == version:
                        self._hits += 1
                        _count("snapshot.hits_total")
                        _obs_event("snapshot.hit", version=version)
                        return entry.csr
                    stale = True
                    stale_entry = entry
        csr = None
        refreshed = False
        if stale:
            # Delta maintenance: merge the mutation-log overlay into the
            # stale base instead of rebuilding from scratch. Any failure
            # (gap, poisoned log, injected fault, merge invariant) falls
            # through to the full build — never a wrong answer.
            csr = self._refresh_from_delta(graph, stale_entry, version)
            refreshed = csr is not None
        if csr is None:
            csr = self._build(graph, pool)
            # Under RINGO_SANITIZE=1 every conversion is invariant-checked
            # before it is served or cached; passing the pre-build version
            # also proves the graph did not mutate mid-conversion (the
            # cache-key coherence check).
            maybe_sanitize(csr, graph=graph, expected_version=version)
        if not self.enabled:
            return csr
        nbytes = csr.memory_bytes()
        with self._lock:
            # Re-read under the lock: a racing thread may have stored.
            entry = self._entries.get(key)
            replaced = entry.nbytes if entry is not None else 0
            if stale:
                self._invalidations += 1
                _count("snapshot.invalidations_total")
            else:
                self._misses += 1
                _count("snapshot.misses_total")
            if (
                self.max_bytes is not None
                and self._cached_bytes - replaced + nbytes > self.max_bytes
            ):
                self._rejected += 1
                _count("snapshot.evictions_total")
                _obs_event("snapshot.evict", reason="over_budget", bytes=nbytes)
                if entry is not None:
                    # The retained snapshot is stale; drop it too.
                    del self._entries[key]
                    self._cached_bytes -= replaced
                    _drop_shm_export(entry.csr)
                return csr
            if entry is not None and entry.csr is not csr:
                # Stale snapshot replaced in place: its exports go with it.
                _drop_shm_export(entry.csr)
            # Stamp the cache identity so process-backend shared-memory
            # exports share this cache's invalidation (see repro.parallel.shm).
            csr._snapshot_key = (key, version)
            ref = weakref.ref(graph, self._make_cleanup(key))
            self._entries[key] = _Entry(ref, version, csr, nbytes)
            self._cached_bytes += nbytes - replaced
        engine = incremental_engine()
        if engine.enabled:
            if not refreshed:
                # A stored full build is the new delta base: make sure a
                # usable mutation log is anchored at its version.
                engine.ensure_log(graph, version)
            engine.trim_log(graph, version)
        return csr

    def _refresh_from_delta(self, graph, entry, version: int) -> "CSRGraph | None":
        """Fold the mutation-log overlay into a stale base snapshot.

        Returns the merged CSR — bitwise what a full rebuild would have
        produced — or ``None`` to fall back to the full conversion,
        recording the reason. Runs include the ``incremental.delta.apply``
        and ``incremental.compact`` fault sites so chaos tests can prove
        a failed merge degrades to a rebuild instead of a wrong answer.
        """
        engine = incremental_engine()
        if not engine.enabled:
            return None
        try:
            fault_point("incremental.delta.apply")
            pair = engine.delta_between(graph, entry.version, version)
            if pair is None:
                log = graph._delta_log
                reason = (
                    "no mutation log"
                    if log is None
                    else (log.poison_reason or "log window unavailable")
                )
                engine.record_fallback(reason)
                _count("incremental.fallback_full")
                return None
            delta, op_count = pair
            if op_count > engine.compact_threshold(entry.csr.num_edges):
                # The overlay outgrew the configured fraction of the
                # base: compact it into a fresh full conversion.
                fault_point("incremental.compact")
                engine.record_compaction()
                _count("incremental.compactions")
                _obs_event(
                    "snapshot.compact", base=entry.version, ops=op_count
                )
                return None
            if delta.empty():
                # The run cancelled out (e.g. add then delete): restamp
                # the existing arrays under the new version. The shm
                # export is keyed by the old stamp, so drop it first.
                merged = entry.csr
                _drop_shm_export(merged)
            else:
                merged = apply_delta(entry.csr, delta, graph.is_directed)
                self._verify_refresh(merged, graph)
            merged._delta_base_version = entry.version
            merged._delta_target_version = version
            maybe_sanitize_delta(
                merged, entry.csr, delta, graph=graph, expected_version=version
            )
            engine.record_delta_applied()
            _count("incremental.delta_applied")
            _obs_event(
                "snapshot.delta_refresh",
                base=entry.version, target=version, ops=op_count,
            )
            return merged
        except Exception as err:  # noqa: BLE001 — any failure must degrade
            engine.record_fallback(f"{type(err).__name__}: {err}")
            _count("incremental.fallback_full")
            _obs_event("snapshot.delta_fallback", error=type(err).__name__)
            return None

    @staticmethod
    def _verify_refresh(merged: CSRGraph, graph) -> None:
        """Always-on cheap guards on a merged view (vs the live graph)."""
        if not np.array_equal(merged.node_ids, np.sort(graph.node_array())):
            raise DeltaError("merged node set disagrees with the graph")
        if graph.is_directed:
            expected = graph.num_edges
        else:
            # Symmetric storage: each edge twice, self-loops once.
            expected = 2 * graph.num_edges - merged.num_self_loops()
        if merged.num_edges != expected:
            raise DeltaError(
                f"merged edge count {merged.num_edges} != expected {expected}"
            )

    def _build(self, graph, pool) -> CSRGraph:
        with _obs_trace(
            "snapshot.build", graph=type(graph).__name__, version=graph.version
        ) as span:
            fault_point("snapshot.build")
            with self._lock:
                self._conversions += 1
            _count("snapshot.builds_total")
            csr = CSRGraph.from_graph(graph, pool=pool)
            span.set_tag("nodes", csr.num_nodes)
            span.set_tag("edges", csr.num_edges)
            return csr

    def _make_cleanup(self, key: int):
        def cleanup(_ref) -> None:
            with self._lock:
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._cached_bytes -= entry.nbytes
                    self._collected += 1
                    _count("snapshot.evictions_total")
                    _obs_event(
                        "snapshot.evict", reason="collected", bytes=entry.nbytes
                    )
            if entry is not None:
                _drop_shm_export(entry.csr)

        return cleanup

    # ------------------------------------------------------------------
    # Management
    # ------------------------------------------------------------------

    def configure(
        self,
        enabled: "bool | None" = None,
        max_bytes: "int | None | str" = "unchanged",
    ) -> None:
        """Adjust the toggle and/or the byte ceiling in place."""
        if enabled is not None:
            self.enabled = bool(enabled)
        if max_bytes != "unchanged":
            if max_bytes is not None and max_bytes <= 0:
                raise RingoError(
                    f"snapshot cache max_bytes must be positive, got {max_bytes}"
                )
            self.max_bytes = max_bytes

    def invalidate(self, graph) -> bool:
        """Manually drop one graph's cached snapshot; True if present."""
        with self._lock:
            entry = self._entries.pop(id(graph), None)
            if entry is None:
                return False
            self._cached_bytes -= entry.nbytes
        _drop_shm_export(entry.csr)
        return True

    def clear(self, reset_stats: bool = False) -> None:
        """Drop every cached snapshot (optionally zero the counters)."""
        with self._lock:
            dropped = [entry.csr for entry in self._entries.values()]
            self._entries.clear()
            self._cached_bytes = 0
            if reset_stats:
                self._hits = 0
                self._misses = 0
                self._invalidations = 0
                self._rejected = 0
                self._collected = 0
                self._conversions = 0
        for csr in dropped:
            _drop_shm_export(csr)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counter snapshot for ``Ringo.health()`` and the benchmarks.

        ``conversions`` counts actual ``CSRGraph.from_graph`` builds the
        cache performed; on an unchanged graph a warm pass must add
        hits, never conversions.
        """
        with self._lock:
            return {
                "enabled": self.enabled,
                "entries": len(self._entries),
                "bytes": self._cached_bytes,
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "invalidations": self._invalidations,
                "rejected": self._rejected,
                "collected": self._collected,
                "conversions": self._conversions,
            }


# The process-wide cache: one interactive session per process is the
# paper's deployment model, and module-level algorithm entry points
# (``alg.pagerank(graph)``) have no session to hang a cache off.
_DEFAULT_CACHE = SnapshotCache()


def snapshot_cache() -> SnapshotCache:
    """The process-wide snapshot cache (what :func:`csr_snapshot` uses)."""
    return _DEFAULT_CACHE


def csr_snapshot(
    graph: "DirectedGraph | UndirectedGraph", pool=None
) -> CSRGraph:
    """Cached CSR snapshot of a dynamic graph via the process-wide cache.

    >>> from repro.graphs.directed import DirectedGraph
    >>> g = DirectedGraph(); _ = g.add_edge(1, 2)
    >>> csr_snapshot(g) is csr_snapshot(g)
    True
    >>> _ = g.add_edge(2, 3)  # mutation bumps g.version -> rebuild
    >>> csr_snapshot(g).num_edges
    2
    """
    return _DEFAULT_CACHE.get(graph, pool=pool)
