"""Structural graph operations: subgraphs, degree filtering, renumbering.

These are the SNAP-style "graph manipulation" constructs Ringo exposes
alongside the analytics algorithms.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph


def subgraph(
    graph: "DirectedGraph | UndirectedGraph", nodes: Iterable[int]
) -> "DirectedGraph | UndirectedGraph":
    """Induced subgraph on ``nodes`` (ids kept; absent ids ignored).

    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(2, 3)
    >>> sub = subgraph(g, [1, 2])
    >>> sub.num_edges
    1
    """
    keep = {node for node in nodes if graph.has_node(node)}
    result = DirectedGraph() if graph.is_directed else UndirectedGraph()
    for node in keep:
        result.add_node(node)
    if graph.is_directed:
        for node in keep:
            for nbr in graph.out_neighbors(node).tolist():
                if nbr in keep:
                    result.add_edge(node, nbr)
    else:
        for node in keep:
            for nbr in graph.neighbors(node).tolist():
                if nbr in keep and nbr >= node:
                    result.add_edge(node, nbr)
    return result


def remove_self_loops(graph: "DirectedGraph | UndirectedGraph") -> int:
    """Delete all self-loops in place; returns how many were removed."""
    loops = [node for node in graph.nodes() if graph.has_edge(node, node)]
    for node in loops:
        graph.del_edge(node, node)
    return len(loops)


def filter_by_degree(
    graph: "DirectedGraph | UndirectedGraph", min_degree: int
) -> "DirectedGraph | UndirectedGraph":
    """Induced subgraph on nodes with total degree >= ``min_degree``."""
    keep = [node for node in graph.nodes() if graph.degree(node) >= min_degree]
    return subgraph(graph, keep)


def renumber(
    graph: "DirectedGraph | UndirectedGraph",
) -> tuple["DirectedGraph | UndirectedGraph", dict[int, int]]:
    """Relabel nodes to dense ``0..n-1``; returns ``(graph, old->new)``.

    Useful before exporting to array-indexed tools.
    """
    mapping = {old: new for new, old in enumerate(sorted(graph.nodes()))}
    result = DirectedGraph() if graph.is_directed else UndirectedGraph()
    for old in graph.nodes():
        result.add_node(mapping[old])
    for edge in graph.edges():
        result.add_edge(mapping[edge[0]], mapping[edge[1]])
    return result, mapping


def ego_network(
    graph: "DirectedGraph | UndirectedGraph",
    center: int,
    radius: int = 1,
    direction: str = "both",
) -> "DirectedGraph | UndirectedGraph":
    """Induced subgraph on the center plus its ``radius``-hop neighbourhood.

    ``direction`` controls expansion on directed graphs: ``out``, ``in``,
    or ``both`` (default, the usual egonet convention).

    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2); _ = g.add_edge(2, 3); _ = g.add_edge(3, 4)
    >>> sorted(ego_network(g, 2, radius=1).nodes())
    [1, 2, 3]
    """
    from repro.algorithms.bfs import bfs_levels
    from repro.util.validation import check_positive

    check_positive(radius, "radius")
    levels = bfs_levels(graph, center, direction=direction if graph.is_directed else "both")
    members = [node for node, level in levels.items() if level <= radius]
    return subgraph(graph, members)


def merge_graphs(
    left: "DirectedGraph | UndirectedGraph",
    right: "DirectedGraph | UndirectedGraph",
) -> "DirectedGraph | UndirectedGraph":
    """Union of two graphs of the same kind: all nodes, all edges."""
    if left.is_directed != right.is_directed:
        raise GraphError("cannot merge directed with undirected graphs")
    result = left.copy()
    for node in right.nodes():
        result.add_node(node)
    for edge in right.edges():
        result.add_edge(edge[0], edge[1])
    return result


def intersect_graphs(
    left: "DirectedGraph | UndirectedGraph",
    right: "DirectedGraph | UndirectedGraph",
) -> "DirectedGraph | UndirectedGraph":
    """Graph with the shared nodes and shared edges of both inputs."""
    if left.is_directed != right.is_directed:
        raise GraphError("cannot intersect directed with undirected graphs")
    result = DirectedGraph() if left.is_directed else UndirectedGraph()
    for node in left.nodes():
        if right.has_node(node):
            result.add_node(node)
    for edge in left.edges():
        if right.has_edge(edge[0], edge[1]):
            result.add_edge(edge[0], edge[1])
    return result


def degree_array(graph: "DirectedGraph | UndirectedGraph") -> np.ndarray:
    """Total degree per node, aligned with :meth:`GraphBase.node_array`."""
    return np.fromiter(
        (graph.degree(node) for node in graph.nodes()),
        dtype=np.int64,
        count=graph.num_nodes,
    )
