"""Attributed network (SNAP's ``TNEANet`` analog, node/edge attributes).

Ringo's workflow writes algorithm results "back to tables" (Figure 2),
but SNAP also supports attributes directly on the graph; :class:`Network`
provides that: a :class:`DirectedGraph` plus named node and edge
attribute maps, so results like PageRank scores can live on the graph
between conversions.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs.directed import DirectedGraph


class Network(DirectedGraph):
    """A directed graph carrying named node and edge attributes.

    >>> net = Network()
    >>> net.add_edge(1, 2)
    True
    >>> net.set_node_attr(1, "name", "ann")
    >>> net.node_attr(1, "name")
    'ann'
    """

    def __init__(self) -> None:
        super().__init__()
        self._node_attrs: dict[str, dict[int, object]] = {}
        self._edge_attrs: dict[str, dict[tuple[int, int], object]] = {}

    # ------------------------------------------------------------------
    # Node attributes
    # ------------------------------------------------------------------

    def set_node_attr(self, node_id: int, name: str, value: object) -> None:
        """Set attribute ``name`` on a node."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        self._node_attrs.setdefault(name, {})[node_id] = value

    def node_attr(self, node_id: int, name: str, default: object = None) -> object:
        """Read attribute ``name`` from a node (``default`` if unset)."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        return self._node_attrs.get(name, {}).get(node_id, default)

    def set_node_attrs(self, name: str, values: Mapping[int, object]) -> None:
        """Bulk-set a node attribute from a mapping (e.g. PageRank output)."""
        store = self._node_attrs.setdefault(name, {})
        for node_id, value in values.items():
            if node_id not in self._nodes:
                raise NodeNotFoundError(node_id)
            store[node_id] = value

    def node_attr_names(self) -> tuple[str, ...]:
        """Names of node attributes that have been set."""
        return tuple(self._node_attrs)

    def iter_node_attr(self, name: str) -> Iterator[tuple[int, object]]:
        """Iterate ``(node_id, value)`` for a node attribute."""
        if name not in self._node_attrs:
            raise GraphError(f"unknown node attribute {name!r}")
        return iter(self._node_attrs[name].items())

    # ------------------------------------------------------------------
    # Edge attributes
    # ------------------------------------------------------------------

    def set_edge_attr(self, src: int, dst: int, name: str, value: object) -> None:
        """Set attribute ``name`` on the edge ``src -> dst``."""
        if not self.has_edge(src, dst):
            raise EdgeNotFoundError(src, dst)
        self._edge_attrs.setdefault(name, {})[(src, dst)] = value

    def edge_attr(self, src: int, dst: int, name: str, default: object = None) -> object:
        """Read attribute ``name`` from an edge (``default`` if unset)."""
        if not self.has_edge(src, dst):
            raise EdgeNotFoundError(src, dst)
        return self._edge_attrs.get(name, {}).get((src, dst), default)

    def edge_attr_names(self) -> tuple[str, ...]:
        """Names of edge attributes that have been set."""
        return tuple(self._edge_attrs)

    # ------------------------------------------------------------------
    # Mutation overrides keep attribute maps consistent
    # ------------------------------------------------------------------

    def del_edge(self, src: int, dst: int) -> None:
        """Delete an edge and its attribute values."""
        super().del_edge(src, dst)
        for store in self._edge_attrs.values():
            store.pop((src, dst), None)

    def del_node(self, node_id: int) -> None:
        """Delete a node, its edges, and all their attribute values."""
        super().del_node(node_id)
        for store in self._node_attrs.values():
            store.pop(node_id, None)
        for store in self._edge_attrs.values():
            stale = [key for key in store if node_id in key]
            for key in stale:
                del store[key]

    def __repr__(self) -> str:
        return (
            f"Network({self.num_nodes} nodes, {self.num_edges} edges, "
            f"{len(self._node_attrs)} node attrs, {len(self._edge_attrs)} edge attrs)"
        )
