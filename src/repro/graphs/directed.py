"""Directed graph — the paper's primary graph object (paper §2.2, §2.4).

"A directed graph in Ringo is represented as a node hash table, where
each node contains two sorted adjacency vectors providing its
in-neighbors and out-neighbors." Simple directed graph semantics (SNAP's
``TNGraph``): at most one edge per ordered pair, self-loops allowed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import EdgeNotFoundError, GraphError
from repro.graphs.base import (
    EMPTY_ADJACENCY,
    GraphBase,
    readonly,
    sorted_contains,
    sorted_insert,
    sorted_remove,
)


class _NodeRecord:
    """Per-node storage: the two sorted adjacency vectors."""

    __slots__ = ("in_nbrs", "out_nbrs")

    def __init__(self) -> None:
        self.in_nbrs = EMPTY_ADJACENCY
        self.out_nbrs = EMPTY_ADJACENCY


class DirectedGraph(GraphBase):
    """A dynamic directed graph over int node ids.

    >>> graph = DirectedGraph()
    >>> graph.add_edge(1, 2)
    True
    >>> graph.has_edge(1, 2)
    True
    >>> graph.out_neighbors(1).tolist()
    [2]
    """

    def __init__(self) -> None:
        self._nodes: dict[int, _NodeRecord] = {}
        self._num_edges = 0
        self._version = 0

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def is_directed(self) -> bool:
        """True; this is the directed graph class."""
        return True

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._num_edges

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the directed edge ``src -> dst`` exists."""
        record = self._nodes.get(src)
        return record is not None and sorted_contains(record.out_nbrs, dst)

    def out_neighbors(self, node_id: int) -> np.ndarray:
        """Sorted out-neighbour ids of ``node_id`` (read-only view)."""
        self._require_node(node_id)
        return readonly(self._nodes[node_id].out_nbrs)

    def in_neighbors(self, node_id: int) -> np.ndarray:
        """Sorted in-neighbour ids of ``node_id`` (read-only view)."""
        self._require_node(node_id)
        return readonly(self._nodes[node_id].in_nbrs)

    def out_degree(self, node_id: int) -> int:
        """Out-degree of ``node_id``."""
        self._require_node(node_id)
        return len(self._nodes[node_id].out_nbrs)

    def in_degree(self, node_id: int) -> int:
        """In-degree of ``node_id``."""
        self._require_node(node_id)
        return len(self._nodes[node_id].in_nbrs)

    def degree(self, node_id: int) -> int:
        """Total degree (in + out)."""
        self._require_node(node_id)
        record = self._nodes[node_id]
        return len(record.in_nbrs) + len(record.out_nbrs)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate directed edges as ``(src, dst)`` pairs."""
        for node_id, record in self._nodes.items():
            for dst in record.out_nbrs.tolist():
                yield node_id, dst

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All edges as parallel ``(src, dst)`` int64 arrays.

        Bulk export used by graph→table conversion and CSR snapshots;
        edges come out grouped by source node.
        """
        sources = np.empty(self._num_edges, dtype=np.int64)
        targets = np.empty(self._num_edges, dtype=np.int64)
        cursor = 0
        for node_id, record in self._nodes.items():
            count = len(record.out_nbrs)
            if count:
                sources[cursor:cursor + count] = node_id
                targets[cursor:cursor + count] = record.out_nbrs
                cursor += count
        return sources, targets

    # ------------------------------------------------------------------
    # Mutation — the "dynamic graph" requirement of §2.2
    # ------------------------------------------------------------------

    def add_node(self, node_id: int) -> bool:
        """Add a node; returns False if it already existed."""
        node_id = int(node_id)
        if node_id < 0:
            raise GraphError(f"node ids must be non-negative, got {node_id}")
        if node_id in self._nodes:
            return False
        self._nodes[node_id] = _NodeRecord()
        self._bump_version()
        self._record_delta("add_node", node_id)
        return True

    def add_edge(self, src: int, dst: int) -> bool:
        """Add the edge ``src -> dst`` (endpoints auto-created).

        Returns False if the edge already existed. O(degree) — the
        adjacency vectors stay sorted.
        """
        src = int(src)
        dst = int(dst)
        self.add_node(src)
        self.add_node(dst)
        src_record = self._nodes[src]
        out_nbrs, inserted = sorted_insert(src_record.out_nbrs, dst)
        if not inserted:
            return False
        src_record.out_nbrs = out_nbrs
        dst_record = self._nodes[dst]
        dst_record.in_nbrs, _ = sorted_insert(dst_record.in_nbrs, src)
        self._num_edges += 1
        self._bump_version()
        self._record_delta("add_edge", src, dst)
        return True

    def del_edge(self, src: int, dst: int) -> None:
        """Delete the edge ``src -> dst``; raises if absent. O(degree)."""
        record = self._nodes.get(src)
        if record is None:
            raise EdgeNotFoundError(src, dst)
        out_nbrs, removed = sorted_remove(record.out_nbrs, dst)
        if not removed:
            raise EdgeNotFoundError(src, dst)
        record.out_nbrs = out_nbrs
        dst_record = self._nodes[dst]
        dst_record.in_nbrs, _ = sorted_remove(dst_record.in_nbrs, src)
        self._num_edges -= 1
        self._bump_version()
        self._record_delta("del_edge", src, dst)

    def del_node(self, node_id: int) -> None:
        """Delete a node and every incident edge; raises if absent."""
        self._require_node(node_id)
        record = self._nodes[node_id]
        # Captured before deletion; the delta log needs every incident
        # edge as an explicit delete record (stamped with the single
        # post-bump version) so a node delete never leaves an implicit
        # cascade for the merge to reconstruct.
        out_list = record.out_nbrs.tolist()
        in_list = record.in_nbrs.tolist()
        for nbr in record.out_nbrs.tolist():
            if nbr != node_id:
                nbr_record = self._nodes[nbr]
                nbr_record.in_nbrs, _ = sorted_remove(nbr_record.in_nbrs, node_id)
        for nbr in record.in_nbrs.tolist():
            if nbr != node_id:
                nbr_record = self._nodes[nbr]
                nbr_record.out_nbrs, _ = sorted_remove(nbr_record.out_nbrs, node_id)
        removed_edges = len(record.out_nbrs) + len(record.in_nbrs)
        if sorted_contains(record.out_nbrs, node_id):
            removed_edges -= 1  # the self-loop was counted from both sides
        self._num_edges -= removed_edges
        del self._nodes[node_id]
        self._bump_version()
        for nbr in out_list:
            self._record_delta("del_edge", node_id, nbr)
        for nbr in in_list:
            if nbr != node_id:  # the self-loop is already in out_list
                self._record_delta("del_edge", nbr, node_id)
        self._record_delta("del_node", node_id)

    def _set_adjacency(
        self, node_id: int, in_nbrs: np.ndarray, out_nbrs: np.ndarray
    ) -> None:
        """Install pre-sorted adjacency vectors — bulk construction only.

        The sort-first converter (§2.4) computes whole neighbour vectors
        and installs them directly; it is responsible for sortedness,
        uniqueness, and the edge-count update via
        :meth:`_set_edge_count`.
        """
        self.add_node(node_id)
        record = self._nodes[node_id]
        record.in_nbrs = np.ascontiguousarray(in_nbrs, dtype=np.int64)
        record.out_nbrs = np.ascontiguousarray(out_nbrs, dtype=np.int64)
        self._bump_version()
        self._poison_delta("bulk adjacency install")

    def _set_edge_count(self, count: int) -> None:
        """Set the edge count after a bulk build."""
        self._num_edges = count
        self._bump_version()
        self._poison_delta("bulk edge-count install")

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def reverse(self) -> "DirectedGraph":
        """New graph with every edge direction flipped (vectors swap)."""
        result = DirectedGraph()
        for node_id, record in self._nodes.items():
            result._set_adjacency(node_id, record.out_nbrs.copy(), record.in_nbrs.copy())
        result._set_edge_count(self._num_edges)
        return result

    def to_undirected(self) -> "UndirectedGraph":
        """Undirected projection (edge directions dropped, dedup)."""
        from repro.graphs.undirected import UndirectedGraph

        result = UndirectedGraph()
        for node_id in self._nodes:
            result.add_node(node_id)
        for src, dst in self.edges():
            result.add_edge(src, dst)
        return result

    def copy(self) -> "DirectedGraph":
        """Deep copy."""
        result = DirectedGraph()
        for node_id, record in self._nodes.items():
            result._set_adjacency(node_id, record.in_nbrs.copy(), record.out_nbrs.copy())
        result._set_edge_count(self._num_edges)
        return result

    def __repr__(self) -> str:
        return f"DirectedGraph({self.num_nodes} nodes, {self.num_edges} edges)"

    def memory_bytes(self) -> int:
        """Bytes held by adjacency vectors plus hash-table overhead.

        Table 2's "In-memory Graph Size" accounting: adjacency array bytes
        plus ~100 bytes per node for the dict slot and record object.
        """
        total = 0
        for record in self._nodes.values():
            total += record.in_nbrs.nbytes + record.out_nbrs.nbytes
        return total + 100 * len(self._nodes)
