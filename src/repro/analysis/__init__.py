"""repro.analysis — static analysis and runtime checking for the engine.

Three layers of correctness tooling (the pure-Python stand-in for the
safety the paper gets from a compiled SNAP back-end and OpenMP's
structured parallelism):

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` +
  :mod:`repro.analysis.flow_rules` — ringo-lint, an AST lint framework
  with single-module rules R001–R007 and interprocedural flow rules
  R008–R012 (powered by the :mod:`repro.analysis.callgraph` project
  call graph and the :mod:`repro.analysis.flow` per-function CFG),
  per-line ``# ringo-lint: disable=RXXX`` suppressions, and a
  checked-in baseline. Run with ``python -m repro.analysis src/`` or
  ``repro lint``.
* :mod:`repro.analysis.races` — an Eraser-style lockset race detector
  shadowing the concurrent containers and worker-pool dispatch, armed
  via ``Ringo(race_check=True)`` / ``RINGO_RACE_CHECK=1``.
* :mod:`repro.analysis.sanitize` — a CSR snapshot sanitizer validating
  structural invariants after every conversion under ``RINGO_SANITIZE=1``.

Race and sanitizer counters surface in ``Ringo.health()["analysis"]``.
"""

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.flow import CFG, build_cfg
from repro.analysis.lint import (
    Finding,
    FlowRule,
    LintRule,
    Project,
    lint_paths,
    lint_source,
)
from repro.analysis.races import (
    Monitored,
    RaceDetector,
    TrackedLock,
    race_check,
)
from repro.analysis.sanitize import maybe_sanitize, sanitize_csr

__all__ = [
    "CFG",
    "CallGraph",
    "Finding",
    "FlowRule",
    "LintRule",
    "Monitored",
    "Project",
    "RaceDetector",
    "TrackedLock",
    "build_callgraph",
    "build_cfg",
    "lint_paths",
    "lint_source",
    "maybe_sanitize",
    "race_check",
    "sanitize_csr",
]
