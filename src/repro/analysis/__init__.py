"""repro.analysis — static analysis and runtime checking for the engine.

Three layers of correctness tooling (the pure-Python stand-in for the
safety the paper gets from a compiled SNAP back-end and OpenMP's
structured parallelism):

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` — ringo-lint,
  an AST lint framework with project rules R001–R006, per-line
  ``# ringo-lint: disable=RXXX`` suppressions, and a checked-in
  baseline. Run with ``python -m repro.analysis src/`` or ``repro lint``.
* :mod:`repro.analysis.races` — an Eraser-style lockset race detector
  shadowing the concurrent containers and worker-pool dispatch, armed
  via ``Ringo(race_check=True)`` / ``RINGO_RACE_CHECK=1``.
* :mod:`repro.analysis.sanitize` — a CSR snapshot sanitizer validating
  structural invariants after every conversion under ``RINGO_SANITIZE=1``.

Race and sanitizer counters surface in ``Ringo.health()["analysis"]``.
"""

from repro.analysis.lint import (
    Finding,
    LintRule,
    lint_paths,
    lint_source,
)
from repro.analysis.races import (
    Monitored,
    RaceDetector,
    TrackedLock,
    race_check,
)
from repro.analysis.sanitize import maybe_sanitize, sanitize_csr

__all__ = [
    "Finding",
    "LintRule",
    "Monitored",
    "RaceDetector",
    "TrackedLock",
    "lint_paths",
    "lint_source",
    "maybe_sanitize",
    "race_check",
    "sanitize_csr",
]
