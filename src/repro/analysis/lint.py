"""ringo-lint — the project-specific AST lint framework.

PRs 1–2 made correctness depend on cross-cutting conventions (every
structural mutation bumps the graph version, every kernel reaches CSR
through the snapshot cache, fault sites are registered strings, locks
are released on every path). The paper's back-end gets this safety from
a compiled C++ library and OpenMP's structured parallelism; a
pure-Python reproduction has to enforce its conventions itself. This
module is the enforcement framework:

* **rules** — each check is a :class:`LintRule` with a stable ``RXXX``
  code, registered in :data:`RULES` (see :mod:`repro.analysis.rules`
  for the single-module rules R001–R007 and
  :mod:`repro.analysis.flow_rules` for the interprocedural rules
  R008–R012, which subclass :class:`FlowRule` and see the whole
  :class:`Project` — call graph and CFGs included — at once);
* **suppressions** — a ``# ringo-lint: disable=RXXX`` comment on (or
  immediately above) a line silences matching findings there, so a
  deliberate exception is visible and justified in the source. A
  suppression that silences nothing is itself reported (advisory
  ``W001``) so the inventory cannot rot;
* **baseline** — a checked-in file of known findings lets the lint gate
  fail only on *new* violations while legacy ones are burned down. The
  shipped baseline is empty and CI keeps it that way
  (:func:`stale_baseline_keys` reports entries no finding matches);
* **parse failures** — an unparseable file is reported as a synthetic
  ``E000`` error finding at the parse-error location instead of
  crashing the whole run.

Run it as ``python -m repro.analysis src/`` or ``repro lint src/``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.exceptions import AnalysisError

SEVERITY_ERROR = "error"
SEVERITY_ADVISORY = "advisory"

#: Synthetic finding codes emitted by the framework itself (not rules).
CODE_PARSE_ERROR = "E000"
CODE_UNUSED_SUPPRESSION = "W001"

_DISABLE_RE = re.compile(r"ringo-lint:\s*disable=([A-Za-z0-9_,\s]+|all)")


@dataclass
class Finding:
    """One lint violation: where, what, and how severe."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    symbol: str = "<module>"
    severity: str = SEVERITY_ERROR
    suppressed: bool = False
    baselined: bool = False

    @property
    def key(self) -> str:
        """Line-number-free identity used for baseline matching.

        Keyed on ``(code, path, enclosing symbol)`` so a baselined
        finding survives unrelated edits that shift line numbers, while
        a new violation in a different function is still caught.
        """
        return f"{self.code}|{Path(self.path).as_posix()}|{self.symbol}"

    def format(self) -> str:
        """Render as a one-line ``path:line: code message`` report."""
        tag = "" if self.severity == SEVERITY_ERROR else " (advisory)"
        return f"{self.path}:{self.line}:{self.col}: {self.code}{tag} {self.message}"


class ModuleUnit:
    """One parsed module handed to every rule: source, AST, and helpers."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as err:
            raise AnalysisError(f"cannot parse {path}: {err}") from err
        self.suppressions = _parse_suppressions(source)
        # (line, code) pairs whose suppression actually silenced a
        # finding — the complement feeds the W001 unused report.
        self.used_suppressions: set[tuple[int, str]] = set()
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._scopes = _scope_spans(self.tree)

    @property
    def parts(self) -> tuple[str, ...]:
        """Normalised path components (for path-scoped rules)."""
        return Path(self.path).parts

    def parent(self, node: ast.AST) -> "ast.AST | None":
        """The AST parent of ``node`` (None for the module root)."""
        return self._parents.get(node)

    def qualname_at(self, node: ast.AST) -> str:
        """Dotted name of the innermost class/function enclosing ``node``."""
        line = getattr(node, "lineno", 0)
        best = "<module>"
        best_span = None
        for start, end, qualname in self._scopes:
            if start <= line <= end and (best_span is None or start >= best_span):
                best, best_span = qualname, start
        return best

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether a ``disable=`` comment covers ``code`` at ``line``."""
        for candidate in (line, line - 1):
            codes = self.suppressions.get(candidate)
            if codes and ("all" in codes or code in codes):
                # A comment on the preceding line only applies if that
                # line holds nothing but the comment.
                if candidate == line or self._comment_only(candidate):
                    matched = "all" if "all" in codes and code not in codes else code
                    self.used_suppressions.add((candidate, matched))
                    return True
        return False

    def unused_suppressions(self) -> "list[tuple[int, str]]":
        """``(line, code)`` pairs whose ``disable=`` silenced nothing."""
        unused: list[tuple[int, str]] = []
        for line, codes in sorted(self.suppressions.items()):
            if ("all" in codes and (line, "all") in self.used_suppressions):
                continue
            for code in sorted(codes):
                if (line, code) not in self.used_suppressions:
                    unused.append((line, code))
        return unused

    def _comment_only(self, line: int) -> bool:
        lines = self.source.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1].lstrip().startswith("#")
        return False


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of rule codes disabled by a comment there."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DISABLE_RE.search(token.string)
            if match is None:
                continue
            spec = match.group(1)
            codes = (
                {"all"}
                if spec.strip() == "all"
                else {code.strip() for code in spec.split(",") if code.strip()}
            )
            out.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass
    return out


def _scope_spans(tree: ast.Module) -> list[tuple[int, int, str]]:
    """``(start_line, end_line, qualname)`` for every class/function."""
    spans: list[tuple[int, int, str]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qualname = f"{prefix}{child.name}"
                spans.append((child.lineno, child.end_lineno or child.lineno, qualname))
                visit(child, f"{qualname}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return spans


class LintRule:
    """Base class for one check: a code, a severity, and ``check()``."""

    code = "R000"
    name = "unnamed"
    severity = SEVERITY_ERROR
    description = ""

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        """Yield findings for one module; implemented by subclasses."""
        raise NotImplementedError

    def finding(
        self, unit: ModuleUnit, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` with this rule's metadata."""
        return Finding(
            code=self.code,
            message=message,
            path=unit.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            symbol=unit.qualname_at(node),
            severity=self.severity,
        )


class Project:
    """Every parsed module of one lint run, plus its lazy call graph.

    Handed to :class:`FlowRule` subclasses, which need to see across
    module boundaries. The call graph (and through it every per-function
    CFG) is built once on first use and shared by all flow rules.
    """

    def __init__(self, units: "Iterable[ModuleUnit]") -> None:
        self.units = list(units)
        self._by_path = {unit.path: unit for unit in self.units}
        self._callgraph = None

    @property
    def callgraph(self):
        """The shared :class:`repro.analysis.callgraph.CallGraph`."""
        if self._callgraph is None:
            from repro.analysis.callgraph import build_callgraph

            self._callgraph = build_callgraph(self.units)
        return self._callgraph

    def unit_for(self, path: str) -> "ModuleUnit | None":
        return self._by_path.get(path)


class FlowRule(LintRule):
    """Base class for interprocedural rules: sees the whole project.

    A ``FlowRule`` implements :meth:`check_project` instead of
    :meth:`check`; the driver runs it once per lint invocation over a
    :class:`Project` built from every file in scope, then applies
    per-file suppressions to whatever it yields.
    """

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield findings for the whole project; implemented by subclasses."""
        raise NotImplementedError

    def project_finding(
        self, project: Project, path: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` in the file at ``path``."""
        unit = project.unit_for(path)
        return Finding(
            code=self.code,
            message=message,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            symbol=unit.qualname_at(node) if unit is not None else "<module>",
            severity=self.severity,
        )


#: The rule registry: code -> rule instance. Populated by
#: :func:`register` (repro.analysis.rules registers R001–R007 and
#: repro.analysis.flow_rules registers R008–R012 on import).
RULES: dict[str, LintRule] = {}


def register(rule_cls: "type[LintRule]") -> "type[LintRule]":
    """Class decorator adding a rule (by its ``code``) to :data:`RULES`."""
    rule = rule_cls()
    if rule.code in RULES:
        raise AnalysisError(f"duplicate lint rule code {rule.code}")
    RULES[rule.code] = rule
    return rule_cls


def active_rules(codes: "Sequence[str] | None" = None) -> list[LintRule]:
    """The selected rules (all registered ones when ``codes`` is None)."""
    _ensure_rules_loaded()
    if codes is None:
        return [RULES[code] for code in sorted(RULES)]
    unknown = [code for code in codes if code not in RULES]
    if unknown:
        raise AnalysisError(
            f"unknown lint rule(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return [RULES[code] for code in codes]


def _ensure_rules_loaded() -> None:
    # Importing the rule modules populates RULES via @register.
    from repro.analysis import flow_rules as _flow_rules  # noqa: F401
    from repro.analysis import rules as _rules  # noqa: F401


def _run_rules(
    units: "list[ModuleUnit]", codes: "Sequence[str] | None"
) -> list[Finding]:
    """Run module rules per unit and flow rules over the whole project."""
    rules = active_rules(codes)
    findings: list[Finding] = []
    flow_rules = [rule for rule in rules if isinstance(rule, FlowRule)]
    module_rules = [rule for rule in rules if not isinstance(rule, FlowRule)]
    for unit in units:
        for rule in module_rules:
            for finding in rule.check(unit):
                finding.suppressed = unit.is_suppressed(finding.code, finding.line)
                findings.append(finding)
    if flow_rules:
        project = Project(units)
        units_by_path = {unit.path: unit for unit in units}
        for rule in flow_rules:
            for finding in rule.check_project(project):
                unit = units_by_path.get(finding.path)
                if unit is not None:
                    finding.suppressed = unit.is_suppressed(
                        finding.code, finding.line
                    )
                findings.append(finding)
    if codes is None:
        # Only meaningful when every rule ran: with a filtered rule set
        # a suppression for an unrun rule would look spuriously unused.
        for unit in units:
            for line, code in unit.unused_suppressions():
                findings.append(
                    Finding(
                        code=CODE_UNUSED_SUPPRESSION,
                        message=(
                            f"suppression 'ringo-lint: disable={code}' "
                            "silences no finding on this line"
                        ),
                        path=unit.path,
                        line=line,
                        symbol=unit.qualname_at(_line_anchor(line)),
                        severity=SEVERITY_ADVISORY,
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


class _line_anchor:
    """A minimal node-like anchor carrying only a line number."""

    def __init__(self, line: int) -> None:
        self.lineno = line


def lint_source(
    source: str, path: str = "<string>", codes: "Sequence[str] | None" = None
) -> list[Finding]:
    """Lint one in-memory module; suppressed findings are marked, not dropped."""
    unit = ModuleUnit(path, source)
    return _run_rules([unit], codes)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into the .py files under them, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path
        else:
            raise AnalysisError(f"not a Python file or directory: {raw}")


def lint_paths(
    paths: Iterable[str], codes: "Sequence[str] | None" = None
) -> list[Finding]:
    """Lint every .py file under ``paths``; returns all findings.

    A file that fails to parse yields a synthetic :data:`E000
    <CODE_PARSE_ERROR>` error finding at the parse-error location
    instead of aborting the whole run.
    """
    units: list[ModuleUnit] = []
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        try:
            units.append(ModuleUnit(str(path), source))
        except AnalysisError as err:
            cause = err.__cause__
            line = getattr(cause, "lineno", None) or 1
            col = getattr(cause, "offset", None) or 1
            detail = getattr(cause, "msg", None) or str(err)
            findings.append(
                Finding(
                    code=CODE_PARSE_ERROR,
                    message=f"file does not parse: {detail}",
                    path=str(path),
                    line=line,
                    col=max(col - 1, 0),
                )
            )
    findings.extend(_run_rules(units, codes))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

BASELINE_HEADER = (
    "# ringo-lint baseline — one `CODE|path|symbol` key per known finding.\n"
    "# New findings not listed here fail `python -m repro.analysis`.\n"
    "# Regenerate with: python -m repro.analysis --write-baseline <paths>\n"
)


def load_baseline(path: "str | Path") -> set[str]:
    """Read a baseline file into a set of finding keys (empty if absent)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return set()
    keys: set[str] = set()
    for line in baseline_path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def write_baseline(path: "str | Path", findings: Iterable[Finding]) -> int:
    """Write the error-severity findings as the new baseline; returns count."""
    keys = sorted(
        {
            f.key
            for f in findings
            if f.severity == SEVERITY_ERROR and not f.suppressed
        }
    )
    Path(path).write_text(
        BASELINE_HEADER + "".join(key + "\n" for key in keys), encoding="utf-8"
    )
    return len(keys)


def apply_baseline(findings: Iterable[Finding], baseline: set[str]) -> None:
    """Mark findings whose keys appear in ``baseline`` as baselined."""
    for finding in findings:
        if finding.key in baseline:
            finding.baselined = True


def stale_baseline_keys(
    findings: Iterable[Finding], baseline: set[str]
) -> list[str]:
    """Baseline entries matching no current finding (sorted).

    A stale key means the violation it grandfathered was fixed — the
    entry should be deleted so the baseline reflects reality. The CI
    gate runs with ``--strict-baseline`` to enforce exactly that.
    """
    live = {finding.key for finding in findings}
    return sorted(key for key in baseline if key not in live)


def gating_findings(findings: Iterable[Finding]) -> list[Finding]:
    """The findings that should fail the lint gate.

    Advisory findings inform but never gate; suppressed and baselined
    findings are accounted for but accepted.
    """
    return [
        f
        for f in findings
        if f.severity == SEVERITY_ERROR and not f.suppressed and not f.baselined
    ]
