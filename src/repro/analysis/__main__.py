"""``python -m repro.analysis`` dispatches to the lint CLI."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
