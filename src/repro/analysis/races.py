"""Eraser-style lockset race detector for the parallel substrate.

The paper's parallelism is OpenMP's structured fork/join over C++ loops;
races there are excluded by construction (disjoint index ranges) or by
hardware atomics. Our reproduction expresses the same kernels as Python
closures on a thread pool, where nothing structural prevents a kernel
from scribbling on shared state. This module supplies the dynamic
checker: the classic lockset algorithm (Savage et al., *Eraser: A
Dynamic Data Race Detector for Multithreaded Programs*, TOCS 1997),
adapted to the objects this engine actually shares.

Per monitored object the detector keeps a shadow state machine::

    virgin -> exclusive(first thread) -> shared / shared-modified

and a **candidate lockset** — the intersection of the synchronisation
devices held at every access once a second thread appears. A write
finding the candidate set empty is reported as a race, with both access
stacks. "Devices" generalises locks slightly: the concurrent containers
report their internal mutate locks, and :class:`ConcurrentVector`
reports the :class:`AtomicCounter` whose fetch-and-add makes writer
cells disjoint — the moral equivalent of the paper's atomic increment.

Known false-negative limits (documented in ``docs/static-analysis.md``):
only instrumented/monitored objects are observed, lock-free snapshot
reads of the hash table are deliberately not reported, and a race whose
interleaving never occurs during the run is invisible — lockset analysis
finds *locking-discipline* violations, not all schedules.

Enable with ``Ringo(race_check=True)``, ``RINGO_RACE_CHECK=1``, or the
:func:`race_check` context manager; wrap ad-hoc shared objects with
:func:`monitor` and guard them with :class:`TrackedLock`.
"""

from __future__ import annotations

import os
import threading
import traceback
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.analysis import hooks
from repro.exceptions import RaceDetected

_ENV_VAR = "RINGO_RACE_CHECK"

_VIRGIN = "virgin"
_EXCLUSIVE = "exclusive"
_SHARED = "shared"
_SHARED_MODIFIED = "shared-modified"


def env_enabled() -> bool:
    """Whether ``RINGO_RACE_CHECK`` requests detection."""
    return os.environ.get(_ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on")


class _Shadow:
    """Per-object shadow word: state, owner, candidate lockset, first stack."""

    __slots__ = ("label", "state", "owner", "lockset", "first_thread", "first_stack")

    def __init__(self, label: str, owner: str) -> None:
        self.label = label
        self.state = _VIRGIN
        self.owner = owner
        self.lockset: "frozenset[int] | None" = None
        self.first_thread = owner
        self.first_stack = ""


class RaceReport:
    """One detected race: the object label and both conflicting stacks."""

    __slots__ = ("label", "first_thread", "second_thread", "first_stack", "second_stack")

    def __init__(
        self, label: str, first_thread: str, second_thread: str,
        first_stack: str, second_stack: str,
    ) -> None:
        self.label = label
        self.first_thread = first_thread
        self.second_thread = second_thread
        self.first_stack = first_stack
        self.second_stack = second_stack

    def to_exception(self) -> RaceDetected:
        """The typed exception equivalent of this report."""
        return RaceDetected(
            self.label, self.first_thread, self.second_thread,
            self.first_stack, self.second_stack,
        )

    def __repr__(self) -> str:
        return f"RaceReport({self.label!r}, {self.first_thread} vs {self.second_thread})"


class TrackedLock:
    """A lock the detector can see.

    Behaves like :class:`threading.Lock` but registers itself in the
    calling thread's held set, so accesses made while holding it carry
    it in their candidate locksets. Use it to guard shared state inside
    pool kernels under race checking.
    """

    def __init__(self, name: str = "tracked-lock") -> None:
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire; the detector sees the hold via the thread-held stack."""
        # The paired release() lives on the caller's with-block exit; the
        # wrapper itself is the release discipline.  # ringo-lint: disable=R004
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            hooks.push_held(self)
        return acquired

    def release(self) -> None:
        """Release and drop the hold from the thread's held set."""
        hooks.pop_held(self)
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        # __exit__ is the guaranteed release path for this acquire.
        self.acquire()  # ringo-lint: disable=R004
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class RaceDetector:
    """The lockset state machine plus reporting and counters.

    ``raise_on_race=True`` (the default) raises :class:`RaceDetected` at
    the racing access, which the worker pool propagates to the caller
    with sibling cancellation; ``False`` records a :class:`RaceReport`
    and keeps running — the mode a long interactive session uses, read
    back through ``Ringo.health()``.
    """

    def __init__(self, raise_on_race: bool = True, capture_stacks: bool = True) -> None:
        self.raise_on_race = raise_on_race
        self.capture_stacks = capture_stacks
        self.reports: list[RaceReport] = []
        self._lock = threading.Lock()
        self._shadows: dict[int, _Shadow] = {}
        self._accesses = 0
        self._dispatches = 0
        self._reported: set[int] = set()

    # -- instrumentation entry points ----------------------------------

    def record_access(
        self, obj: object, label: str, write: bool, guards: Iterable[object]
    ) -> None:
        """Fold one access into the object's shadow state (thread-safe)."""
        thread = threading.current_thread().name
        held = frozenset(
            [id(guard) for guard in guards] + [id(lock) for lock in hooks.held_locks()]
        )
        report: "RaceReport | None" = None
        with self._lock:
            self._accesses += 1
            key = id(obj)
            shadow = self._shadows.get(key)
            if shadow is None:
                shadow = _Shadow(f"{label}#{key:x}", thread)
                if self.capture_stacks:
                    shadow.first_stack = "".join(traceback.format_stack(limit=12)[:-2])
                self._shadows[key] = shadow
            if shadow.state == _VIRGIN:
                shadow.state = _EXCLUSIVE
                shadow.owner = thread
            elif shadow.state == _EXCLUSIVE and shadow.owner == thread:
                pass  # still single-threaded: no discipline required yet
            else:
                if shadow.state == _EXCLUSIVE:
                    # Second thread arrived: candidate set starts here.
                    shadow.lockset = held
                    shadow.state = _SHARED_MODIFIED if write else _SHARED
                else:
                    assert shadow.lockset is not None
                    shadow.lockset = shadow.lockset & held
                    if write:
                        shadow.state = _SHARED_MODIFIED
                if (
                    shadow.state == _SHARED_MODIFIED
                    and not shadow.lockset
                    and key not in self._reported
                ):
                    self._reported.add(key)
                    second_stack = (
                        "".join(traceback.format_stack(limit=12)[:-2])
                        if self.capture_stacks
                        else ""
                    )
                    report = RaceReport(
                        shadow.label, shadow.first_thread, thread,
                        shadow.first_stack, second_stack,
                    )
                    self.reports.append(report)
        if report is not None and self.raise_on_race:
            raise report.to_exception()

    def record_dispatch(self) -> None:
        """Count one worker-pool kernel dispatch (shadowed for visibility)."""
        with self._lock:
            self._dispatches += 1

    # -- management ----------------------------------------------------

    def forget(self, obj: object) -> None:
        """Drop an object's shadow state (e.g. between test phases)."""
        with self._lock:
            self._shadows.pop(id(obj), None)
            self._reported.discard(id(obj))

    def stats(self) -> dict:
        """Counter snapshot for ``Ringo.health()``."""
        with self._lock:
            return {
                "raise_on_race": self.raise_on_race,
                "objects_tracked": len(self._shadows),
                "accesses": self._accesses,
                "kernel_dispatches": self._dispatches,
                "races": len(self.reports),
                "race_labels": [report.label for report in self.reports],
            }


class Monitored:
    """Wrap an ad-hoc shared object so the detector observes its accesses.

    The concurrent containers are instrumented natively; plain dicts,
    lists, and result buffers shared by kernels are not observable
    without help. ``Monitored`` proxies item access, ``append``, and
    ``extend`` to the wrapped object while reporting each one::

        shared = Monitored({}, label="result-map")
        with TrackedLock("results") as lock: ...  # guarded: silent

    Unsynchronised writes from two pool threads raise
    :class:`RaceDetected` (or are recorded, per detector mode).
    """

    __slots__ = ("obj", "label")

    def __init__(self, obj: object, label: str = "monitored") -> None:
        self.obj = obj
        self.label = label

    def __getitem__(self, key):
        hooks.container_access(self.obj, self.label, write=False)
        return self.obj[key]

    def __setitem__(self, key, value) -> None:
        hooks.container_access(self.obj, self.label, write=True)
        self.obj[key] = value

    def __len__(self) -> int:
        return len(self.obj)

    def append(self, value) -> None:
        hooks.container_access(self.obj, self.label, write=True)
        self.obj.append(value)

    def extend(self, values) -> None:
        hooks.container_access(self.obj, self.label, write=True)
        self.obj.extend(values)


# ----------------------------------------------------------------------
# Process-wide enable/disable
# ----------------------------------------------------------------------


def enable(raise_on_race: bool = True) -> RaceDetector:
    """Install a fresh process-wide detector and return it."""
    detector = RaceDetector(raise_on_race=raise_on_race)
    hooks.set_detector(detector)
    return detector


def disable() -> None:
    """Remove the process-wide detector."""
    hooks.set_detector(None)


def current() -> "RaceDetector | None":
    """The installed detector, or ``None``."""
    return hooks.get_detector()


@contextmanager
def race_check(raise_on_race: bool = True) -> Iterator[RaceDetector]:
    """Context manager arming the detector for a block (restores prior).

    >>> from repro.analysis.races import race_check
    >>> with race_check() as detector:
    ...     detector.stats()["races"]
    0
    """
    previous = hooks.get_detector()
    detector = enable(raise_on_race=raise_on_race)
    try:
        yield detector
    finally:
        hooks.set_detector(previous)
