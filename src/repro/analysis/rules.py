"""The project-specific lint rules, R001–R007.

Each rule encodes one convention the engine's correctness depends on
(see ``docs/static-analysis.md`` for the full catalog with examples):

====  ==================================================================
R001  adjacency-mutating graph method missing ``_bump_version()``
R002  direct ``CSRGraph.from_graph`` call outside the snapshot cache
R003  ``fault_point`` site string not registered in ``faults.KNOWN_SITES``
R004  manual ``Lock.acquire()`` without a ``with`` / ``try…finally`` release
R005  Python-level ``for`` loop over numpy arrays in ``algorithms/`` (advisory)
R006  pool kernel closure writing shared state without a lock/AtomicCounter
R007  dispatched kernel is a lambda/nested def/bound method (unpicklable)
====  ==================================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import (
    Finding,
    LintRule,
    ModuleUnit,
    SEVERITY_ADVISORY,
    register,
)

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _is_self_attr(node: ast.AST, names: "set[str] | None" = None) -> bool:
    """Whether ``node`` is ``self.<attr>`` (optionally with attr in names)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (names is None or node.attr in names)
    )


def _contains_self_attr(node: ast.AST, names: set[str]) -> bool:
    """Whether any ``self.<watched>`` access appears in ``node``'s subtree."""
    return any(_is_self_attr(sub, names) for sub in ast.walk(node))


def _base_name(base: ast.expr) -> str:
    """The terminal name of a base-class expression (``x.Y`` -> ``Y``)."""
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return ""


def _call_attr(node: ast.AST) -> str:
    """The attribute name of a ``<expr>.<attr>(...)`` call, else ``""``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


# ----------------------------------------------------------------------
# R001 — graph mutations must bump the snapshot version
# ----------------------------------------------------------------------

_GRAPH_BASES = {
    "GraphBase",
    "DirectedGraph",
    "UndirectedGraph",
    "Network",
    "DirectedMultigraph",
}
# The structural state whose mutation invalidates CSR snapshots.
# Attribute stores (``_node_attrs`` etc.) are deliberately absent:
# attribute-only updates must NOT bump the version.
_STRUCTURAL_ATTRS = {"_nodes", "_edge_src", "_edge_dst", "_deleted", "_num_edges"}
_MUTATOR_METHODS = {
    "append", "add", "remove", "pop", "clear", "extend",
    "update", "discard", "insert", "setdefault", "popitem",
}


@register
class BumpVersionRule(LintRule):
    """R001: a graph method mutating adjacency must call ``_bump_version()``.

    The versioned snapshot cache (:mod:`repro.graphs.snapshot`) detects
    staleness by one integer compare of ``graph.version``; a mutation
    path that skips the bump silently serves stale CSR arrays to every
    algorithm afterwards.
    """

    code = "R001"
    name = "bump-version"
    description = "adjacency-mutating graph method missing _bump_version()"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for cls in ast.walk(unit.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not any(_base_name(b) in _GRAPH_BASES for b in cls.bases):
                continue
            for method in cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                if method.name == "__init__":
                    continue  # construction establishes state, never mutates it
                if not self._mutates_structure(method):
                    continue
                if self._bumps_version(method):
                    continue
                yield self.finding(
                    unit,
                    method,
                    f"{cls.name}.{method.name} mutates graph structure "
                    f"but never calls self._bump_version(); cached CSR "
                    f"snapshots will go stale",
                )

    @staticmethod
    def _mutates_structure(method: ast.FunctionDef) -> bool:
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    base = target.value if isinstance(target, ast.Subscript) else target
                    if _is_self_attr(base, _STRUCTURAL_ATTRS):
                        return True
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = target.value if isinstance(target, ast.Subscript) else target
                    if _is_self_attr(base, _STRUCTURAL_ATTRS):
                        return True
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and _contains_self_attr(node.func.value, _STRUCTURAL_ATTRS)
            ):
                return True
        return False

    @staticmethod
    def _bumps_version(method: ast.FunctionDef) -> bool:
        return any(
            isinstance(node, ast.Call)
            and _is_self_attr(node.func, {"_bump_version"})
            for node in ast.walk(method)
        )


# ----------------------------------------------------------------------
# R002 — CSR conversion must route through the snapshot cache
# ----------------------------------------------------------------------

_R002_ALLOWED_SUFFIXES = (("graphs", "snapshot.py"), ("graphs", "csr.py"))


@register
class FromGraphRule(LintRule):
    """R002: call ``as_csr``/``csr_snapshot``, not ``CSRGraph.from_graph``.

    A direct conversion bypasses the versioned cache — it is both a
    wasted O(V+E) rebuild on warm graphs and invisible to the cache's
    hit/byte accounting. Only the cache itself (and the CSR module) may
    call the raw constructor.
    """

    code = "R002"
    name = "csr-via-cache"
    description = "direct CSRGraph.from_graph call outside graphs/snapshot.py"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        parts = unit.parts
        if any(parts[-len(suffix):] == suffix for suffix in _R002_ALLOWED_SUFFIXES):
            return
        for node in ast.walk(unit.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "from_graph"
                and isinstance(node.func.value, (ast.Name, ast.Attribute))
                and _base_name(node.func.value) == "CSRGraph"
            ):
                yield self.finding(
                    unit,
                    node,
                    "direct CSRGraph.from_graph bypasses the versioned "
                    "snapshot cache; use repro.algorithms.common.as_csr or "
                    "repro.graphs.snapshot.csr_snapshot",
                )


# ----------------------------------------------------------------------
# R003 — fault-site strings must be registered
# ----------------------------------------------------------------------


@register
class KnownFaultSiteRule(LintRule):
    """R003: ``fault_point(<literal>)`` must name a registered site.

    Sites are wired by bare strings; a typo'd or unregistered name is a
    fault hook that silently never fires — the resilience test armed
    against it passes vacuously.
    """

    code = "R003"
    name = "known-fault-site"
    description = "fault-site string literal not registered in faults.KNOWN_SITES"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.parts[-1:] == ("faults.py",):
            return  # the registry module itself (doctest demo sites)
        from repro.faults import KNOWN_SITES

        known = set(KNOWN_SITES)
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name != "fault_point" or not node.args:
                continue
            site = node.args[0]
            if isinstance(site, ast.Constant) and isinstance(site.value, str):
                if site.value not in known:
                    yield self.finding(
                        unit,
                        node,
                        f"fault site {site.value!r} is not in "
                        f"repro.faults.KNOWN_SITES; register it or fix the "
                        f"typo (tests arming it would never fire)",
                    )


# ----------------------------------------------------------------------
# R004 — no bare Lock.acquire without a guaranteed release
# ----------------------------------------------------------------------


@register
class LockDisciplineRule(LintRule):
    """R004: manual ``.acquire()`` needs a ``try…finally`` release.

    An exception between ``acquire()`` and ``release()`` wedges every
    other thread forever — in an interactive session that is a hang, not
    a crash. ``with lock:`` (or acquire directly followed by
    ``try…finally: release()``) is the only accepted shape.
    """

    code = "R004"
    name = "lock-discipline"
    description = "manual Lock.acquire() without with/finally release"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if _call_attr(node) != "acquire":
                continue
            if self._released_on_all_paths(unit, node):
                continue
            yield self.finding(
                unit,
                node,
                "manual .acquire() with no try/finally .release(); an "
                "exception here deadlocks every other thread — use "
                "`with lock:` instead",
            )

    def _released_on_all_paths(self, unit: ModuleUnit, call: ast.Call) -> bool:
        # Accept (a) acquire inside a Try whose finalbody releases, and
        # (b) the classic `lock.acquire()` statement immediately followed
        # by a Try whose finalbody releases.
        node: ast.AST = call
        statement: "ast.stmt | None" = None
        while node is not None:
            parent = unit.parent(node)
            if isinstance(node, ast.stmt) and statement is None:
                statement = node
            if isinstance(parent, ast.Try) and node in parent.body:
                if self._finally_releases(parent):
                    return True
            node = parent
        if statement is not None:
            parent = unit.parent(statement)
            for block_name in ("body", "orelse", "finalbody"):
                block = getattr(parent, block_name, None)
                if isinstance(block, list) and statement in block:
                    index = block.index(statement)
                    if (
                        index + 1 < len(block)
                        and isinstance(block[index + 1], ast.Try)
                        and self._finally_releases(block[index + 1])
                    ):
                        return True
        return False

    @staticmethod
    def _finally_releases(try_node: ast.Try) -> bool:
        return any(
            _call_attr(node) == "release"
            for stmt in try_node.finalbody
            for node in ast.walk(stmt)
        )


# ----------------------------------------------------------------------
# R005 — no Python-level loops over numpy arrays in hot paths (advisory)
# ----------------------------------------------------------------------

_NUMPY_MODULES = {"np", "numpy"}


def _is_numpy_call(node: ast.AST) -> bool:
    """Whether ``node`` is a ``np.<...>(...)`` call (possibly dotted)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    while isinstance(func, ast.Attribute):
        func = func.value
    return isinstance(func, ast.Name) and func.id in _NUMPY_MODULES


@register
class NumpyLoopRule(LintRule):
    """R005 (advisory): Python ``for`` over a numpy array in ``algorithms/``.

    Iterating an ndarray element-by-element boxes every value and runs
    ~100x slower than a vectorised kernel or an explicit ``.tolist()``
    materialisation (the project's accepted escape hatch for genuinely
    scalar loops). Advisory because some control-flow-heavy algorithms
    legitimately iterate; the finding is a nudge, not a gate.
    """

    code = "R005"
    name = "numpy-python-loop"
    severity = SEVERITY_ADVISORY
    description = "Python-level for loop over a numpy array in algorithms/"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if "algorithms" not in unit.parts[:-1]:
            return
        for scope in ast.walk(unit.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            array_names = self._numpy_bound_names(scope)
            for node in ast.walk(scope):
                if not isinstance(node, ast.For):
                    continue
                iterable = node.iter
                if _is_numpy_call(iterable) or (
                    isinstance(iterable, ast.Name) and iterable.id in array_names
                ):
                    yield self.finding(
                        unit,
                        node,
                        "Python-level for loop over a numpy array; "
                        "vectorise the kernel or iterate `.tolist()` "
                        "explicitly if the loop is genuinely scalar",
                    )

    @staticmethod
    def _numpy_bound_names(scope: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and _is_numpy_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names


# ----------------------------------------------------------------------
# R006 — pool kernels must not write shared state unsynchronized
# ----------------------------------------------------------------------

_POOL_METHODS = {"map_range": 1, "map_chunks": 1, "run_tasks": 0}
_SYNC_NAME_HINT = "lock"


@register
class SharedKernelStateRule(LintRule):
    """R006: a pool kernel closure writing captured state needs a lock.

    ``WorkerPool`` runs kernels on real threads; a closure that mutates
    a captured dict/list/counter without an :class:`AtomicCounter` or a
    lock races its siblings. The safe patterns are per-partition return
    values (combined by the caller), **disjoint-span writes** — a
    subscript store whose index derives from the kernel's own partition
    parameters (``arr[lo:hi] = ...``, the paper's §2.5 pattern, which
    this rule recognises and accepts) — or explicit synchronisation.
    """

    code = "R006"
    name = "kernel-shared-state"
    description = (
        "worker-pool kernel closure writes shared mutable state "
        "without an AtomicCounter/lock"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for scope in ast.walk(unit.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_defs = {
                stmt.name: stmt
                for stmt in ast.walk(scope)
                if isinstance(stmt, ast.FunctionDef) and stmt is not scope
            }
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                method = _call_attr(node)
                if method not in _POOL_METHODS:
                    continue
                kernel = self._kernel_expr(node, method)
                if kernel is None:
                    continue
                body: "ast.AST | None" = None
                if isinstance(kernel, ast.Lambda):
                    body = kernel
                elif isinstance(kernel, ast.Name) and kernel.id in local_defs:
                    body = local_defs[kernel.id]
                if body is None:
                    continue
                written = self._unsynchronized_captured_writes(body)
                if written:
                    yield self.finding(
                        unit,
                        node,
                        f"kernel passed to .{method}() writes captured "
                        f"state ({', '.join(sorted(written))}) with no "
                        f"lock/AtomicCounter; return per-partition results "
                        f"or synchronise the writes",
                    )

    @staticmethod
    def _kernel_expr(call: ast.Call, method: str) -> "ast.expr | None":
        index = _POOL_METHODS[method]
        if len(call.args) > index:
            return call.args[index]
        for keyword in call.keywords:
            if keyword.arg in ("kernel", "tasks"):
                return keyword.value
        return None

    def _unsynchronized_captured_writes(self, kernel: ast.AST) -> set[str]:
        bound = self._locally_bound(kernel)
        derived = self._partition_derived(kernel)
        written: set[str] = set()
        synchronized = False
        for node in ast.walk(kernel):
            if isinstance(node, ast.With):
                synchronized = True
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                receiver = node.func.value
                if attr == "fetch_add" or attr == "acquire":
                    synchronized = True
                elif (
                    isinstance(receiver, ast.Name)
                    and _SYNC_NAME_HINT in receiver.id.lower()
                ):
                    synchronized = True
                elif (
                    attr in _MUTATOR_METHODS
                    and isinstance(receiver, ast.Name)
                    and receiver.id not in bound
                ):
                    written.add(receiver.id)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id not in bound
                        and not self._index_is_partition_local(target, derived)
                    ):
                        written.add(target.value.id)
        return set() if synchronized else written

    @staticmethod
    def _partition_derived(kernel: ast.AST) -> set[str]:
        """Names whose values derive from the kernel's own parameters.

        A write indexed by such a name targets this partition's disjoint
        span (``for i in range(lo, hi): arr[i] = ...``) — the §2.5
        no-contention pattern — and is not shared-state mutation.
        """
        if isinstance(kernel, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            derived = {arg.arg for arg in kernel.args.args}
            derived.update(arg.arg for arg in kernel.args.posonlyargs)
        else:
            return set()

        def mentions(node: ast.AST) -> bool:
            return any(
                isinstance(sub, ast.Name) and sub.id in derived
                for sub in ast.walk(node)
            )

        # Two propagation passes cover the chains real kernels use
        # (param -> loop index -> offset pair); a full fixpoint is not
        # worth the cost in a linter.
        for _ in range(2):
            for node in ast.walk(kernel):
                if isinstance(node, ast.Assign) and mentions(node.value):
                    for target in node.targets:
                        for sub in ast.walk(target):
                            if isinstance(sub, ast.Name) and isinstance(
                                sub.ctx, ast.Store
                            ):
                                derived.add(sub.id)
                elif isinstance(node, ast.For) and mentions(node.iter):
                    for sub in ast.walk(node.target):
                        if isinstance(sub, ast.Name):
                            derived.add(sub.id)
        return derived

    @staticmethod
    def _index_is_partition_local(target: ast.Subscript, derived: set[str]) -> bool:
        return any(
            isinstance(sub, ast.Name) and sub.id in derived
            for sub in ast.walk(target.slice)
        )

    @staticmethod
    def _locally_bound(kernel: ast.AST) -> set[str]:
        bound: set[str] = set()
        if isinstance(kernel, ast.Lambda):
            args = kernel.args
        elif isinstance(kernel, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = kernel.args
        else:
            return bound
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            bound.add(arg.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        for node in ast.walk(kernel):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node, ast.comprehension):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
        return bound

# ----------------------------------------------------------------------
# R007 — dispatched kernels must be module-level (picklable by reference)
# ----------------------------------------------------------------------

_DISPATCH_METHODS = {"run_kernel": 1}


@register
class DispatchableKernelRule(LintRule):
    """R007: a kernel at a dispatch site must be a module-level function.

    The kernel dispatcher may route a call to the process backend, which
    pickles the kernel *by reference* into worker processes. A lambda or
    a nested ``def`` has no importable reference and fails at dispatch
    time; a bound method (``self.kernel``) drags its whole instance —
    a :class:`Ringo` session with its locks and pools — through pickle.
    Hoist the kernel to module level with signature
    ``fn(arrays, lo, hi, *extra)`` and pass state via ``extra``.
    """

    code = "R007"
    name = "dispatchable-kernel"
    description = (
        "kernel at a dispatch site is a lambda/nested def/bound method "
        "the process backend cannot pickle by reference"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for scope in ast.walk(unit.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_defs = {
                stmt.name
                for stmt in ast.walk(scope)
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt is not scope
            }
            for node in ast.walk(scope):
                method = _call_attr(node)
                if method not in _DISPATCH_METHODS:
                    continue
                kernel = self._kernel_expr(node, method)
                if kernel is None:
                    continue
                problem = self._unpicklable_shape(kernel, local_defs)
                if problem:
                    yield self.finding(
                        unit,
                        node,
                        f"kernel passed to .{method}() is {problem}; the "
                        f"process backend pickles kernels by reference — "
                        f"hoist it to a module-level "
                        f"fn(arrays, lo, hi, *extra) and pass state via "
                        f"extra=",
                    )

    @staticmethod
    def _kernel_expr(call: ast.Call, method: str) -> "ast.expr | None":
        index = _DISPATCH_METHODS[method]
        if len(call.args) > index:
            return call.args[index]
        for keyword in call.keywords:
            if keyword.arg == "fn":
                return keyword.value
        return None

    @staticmethod
    def _unpicklable_shape(kernel: ast.expr, local_defs: set[str]) -> str:
        if isinstance(kernel, ast.Lambda):
            return "a lambda"
        if isinstance(kernel, ast.Name) and kernel.id in local_defs:
            return f"the nested function {kernel.id!r}"
        if _is_self_attr(kernel):
            return f"the bound method self.{kernel.attr}"
        return ""
