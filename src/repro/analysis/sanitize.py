"""CSR snapshot sanitizer — post-conversion invariant validation.

A :class:`~repro.graphs.csr.CSRGraph` is trusted blindly by every bulk
kernel: PageRank gathers over ``in_indptr``/``in_indices``, triangle
counting intersects *sorted* rows, degree vectors steer partitioning.
A corrupted snapshot (a conversion bug, a mutation racing the build, a
fault injected mid-copy) does not crash — it silently produces wrong
analytics. The sanitizer is the runtime tripwire: under
``RINGO_SANITIZE=1`` (or :func:`enable`) every conversion the snapshot
cache performs is validated before being served:

* ``indptr`` monotone non-decreasing, starting at 0, ending at nnz;
* per-row ``indices`` sorted (the binary-search/merge contract);
* ``indices`` within ``[0, num_nodes)``;
* degree arrays summing to nnz on both orientations;
* ``node_ids`` strictly increasing (densification contract);
* cache-key coherence: the live graph's ``version`` still equals the
  version the cache is about to stamp — a mismatch means the graph
  mutated *during* the build and the snapshot is torn.

Violations raise :class:`~repro.exceptions.SanitizerError`; counters are
process-wide and surface in ``Ringo.health()["analysis"]``.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.exceptions import SanitizerError

_ENV_VAR = "RINGO_SANITIZE"

_STATE_LOCK = threading.Lock()
_FORCED: "bool | None" = None  # programmatic override; None defers to the env
_CHECKS = 0
_VIOLATIONS = 0
_LAST_VIOLATION: "str | None" = None


def env_enabled() -> bool:
    """Whether ``RINGO_SANITIZE`` requests validation."""
    return os.environ.get(_ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on")


def enabled() -> bool:
    """Whether conversions should currently be sanitized."""
    forced = _FORCED
    if forced is not None:
        return forced
    return env_enabled()


def enable() -> None:
    """Force sanitizing on, regardless of the environment."""
    global _FORCED
    with _STATE_LOCK:
        _FORCED = True


def disable() -> None:
    """Force sanitizing off, regardless of the environment."""
    global _FORCED
    with _STATE_LOCK:
        _FORCED = False


def reset() -> None:
    """Return control to ``RINGO_SANITIZE`` and zero the counters."""
    global _FORCED, _CHECKS, _VIOLATIONS, _LAST_VIOLATION
    with _STATE_LOCK:
        _FORCED = None
        _CHECKS = 0
        _VIOLATIONS = 0
        _LAST_VIOLATION = None


def stats() -> dict:
    """Counter snapshot for ``Ringo.health()``."""
    with _STATE_LOCK:
        return {
            "enabled": enabled(),
            "checks": _CHECKS,
            "violations": _VIOLATIONS,
            "last_violation": _LAST_VIOLATION,
        }


def _fail(check: str, detail: str) -> None:
    global _VIOLATIONS, _LAST_VIOLATION
    with _STATE_LOCK:
        _VIOLATIONS += 1
        _LAST_VIOLATION = f"{check}: {detail}"
    raise SanitizerError(check, detail)


def _check_orientation(
    side: str, indptr: np.ndarray, indices: np.ndarray,
    degrees: np.ndarray, num_nodes: int,
) -> None:
    if len(indptr) != num_nodes + 1:
        _fail(
            f"{side}.indptr-length",
            f"len(indptr)={len(indptr)} for {num_nodes} nodes",
        )
    if num_nodes == 0:
        return
    if indptr[0] != 0:
        _fail(f"{side}.indptr-origin", f"indptr[0]={int(indptr[0])}, expected 0")
    steps = np.diff(indptr)
    if len(steps) and int(steps.min()) < 0:
        row = int(np.argmax(steps < 0))
        _fail(
            f"{side}.indptr-monotone",
            f"indptr decreases at row {row} "
            f"({int(indptr[row])} -> {int(indptr[row + 1])})",
        )
    nnz = int(indptr[-1])
    if nnz != len(indices):
        _fail(
            f"{side}.indptr-extent",
            f"indptr[-1]={nnz} but len(indices)={len(indices)}",
        )
    if len(indices):
        low = int(indices.min())
        high = int(indices.max())
        if low < 0 or high >= num_nodes:
            _fail(
                f"{side}.indices-range",
                f"indices span [{low}, {high}] outside [0, {num_nodes})",
            )
        # Per-row sortedness, vectorised: within a row every step is
        # non-decreasing, so the only positions where indices may drop
        # are row boundaries (the starts listed in indptr[1:-1]).
        drops = np.flatnonzero(np.diff(indices) < 0) + 1
        if len(drops):
            boundaries = indptr[1:-1]
            bad = np.setdiff1d(drops, boundaries, assume_unique=False)
            if len(bad):
                position = int(bad[0])
                row = int(np.searchsorted(indptr, position, side="right")) - 1
                _fail(
                    f"{side}.row-sorted",
                    f"row {row} is unsorted at offset {position} "
                    f"({int(indices[position - 1])} then {int(indices[position])})",
                )
    if int(degrees.sum()) != nnz:
        _fail(
            f"{side}.degree-sum",
            f"degrees sum to {int(degrees.sum())} but nnz={nnz}",
        )
    if not np.array_equal(np.diff(indptr), degrees):
        _fail(
            f"{side}.degree-indptr",
            "degree array disagrees with indptr row widths",
        )


def sanitize_csr(csr, graph=None, expected_version: "int | None" = None) -> dict:
    """Validate one CSR snapshot; raises :class:`SanitizerError` on violation.

    ``graph``/``expected_version`` arm the cache-coherence check: if the
    live graph's ``version`` no longer equals the version captured when
    the conversion started, the graph mutated mid-build and the snapshot
    cannot be trusted (or cached). Returns the check summary on success.

    >>> from repro.graphs.csr import CSRGraph
    >>> csr = CSRGraph.from_edges([0, 1], [1, 2])
    >>> sanitize_csr(csr)["nodes"]
    3
    """
    global _CHECKS
    with _STATE_LOCK:
        _CHECKS += 1
    node_ids = csr.node_ids
    num_nodes = csr.num_nodes
    if len(node_ids) != num_nodes:
        _fail(
            "node-ids-length",
            f"{len(node_ids)} ids for {num_nodes} nodes",
        )
    if len(node_ids) > 1 and int(np.diff(node_ids).min()) <= 0:
        _fail(
            "node-ids-sorted",
            "node_ids must be strictly increasing (densification contract)",
        )
    _check_orientation(
        "out", csr.out_indptr, csr.out_indices, csr.out_degrees(), num_nodes
    )
    _check_orientation(
        "in", csr.in_indptr, csr.in_indices, csr.in_degrees(), num_nodes
    )
    if int(csr.out_indptr[-1] if num_nodes else 0) != int(
        csr.in_indptr[-1] if num_nodes else 0
    ):
        _fail(
            "orientation-nnz",
            f"out nnz {int(csr.out_indptr[-1])} != in nnz {int(csr.in_indptr[-1])}",
        )
    if graph is not None and expected_version is not None:
        live = graph.version
        if live != expected_version:
            _fail(
                "version-coherence",
                f"graph version moved {expected_version} -> {live} during "
                f"conversion; the snapshot may be torn",
            )
    return {
        "nodes": num_nodes,
        "edges": int(csr.out_indptr[-1]) if num_nodes else 0,
        "version_checked": expected_version is not None,
    }


def maybe_sanitize(csr, graph=None, expected_version: "int | None" = None) -> None:
    """Run :func:`sanitize_csr` only when sanitizing is enabled."""
    if enabled():
        sanitize_csr(csr, graph=graph, expected_version=expected_version)


def _dense_lookup(node_ids: np.ndarray, values: np.ndarray):
    """``(positions, found_mask)`` of original ids in sorted ``node_ids``."""
    positions = np.searchsorted(node_ids, values)
    if len(node_ids) == 0:
        return positions, np.zeros(len(values), dtype=bool)
    clipped = np.minimum(positions, len(node_ids) - 1)
    return clipped, node_ids[clipped] == values


def _merged_membership(merged, pairs) -> tuple[np.ndarray, np.ndarray]:
    """Per delta edge: ``(present_in_merged, both_endpoints_exist)``.

    Presence is a binary search over the merged snapshot's globally
    ascending out-edge keys ``src * n + dst`` (global ascent follows
    from the indptr/row-sortedness invariants checked just before).
    """
    node_ids = merged.node_ids
    count = merged.num_nodes
    array = np.asarray(sorted(pairs), dtype=np.int64).reshape(-1, 2)
    src_pos, src_ok = _dense_lookup(node_ids, array[:, 0])
    dst_pos, dst_ok = _dense_lookup(node_ids, array[:, 1])
    both = src_ok & dst_ok
    present = np.zeros(len(array), dtype=bool)
    if np.any(both) and count:
        keys = merged.out_edge_keys()
        query = src_pos[both] * count + dst_pos[both]
        positions = np.searchsorted(keys, query)
        if len(keys):
            hit = keys[np.minimum(positions, len(keys) - 1)] == query
            hit &= positions < len(keys)
        else:
            hit = np.zeros(len(query), dtype=bool)
        present[both] = hit
    return present, both


def sanitize_delta_view(
    merged, base, delta, graph=None, expected_version: "int | None" = None
) -> dict:
    """Validate a delta-merged snapshot against its base and overlay.

    Beyond the full :func:`sanitize_csr` pass this checks the merge
    actually honoured the overlay:

    * the version watermark the cache stamped on the merged view
      (``_delta_target_version``) matches the version it is about to be
      cached under (the overlay-LSN coherence check);
    * node arithmetic: ``merged nodes == base - deleted + added``;
    * no dangling deletes: every net-deleted edge is absent from the
      merged view (a surviving one means a stale read waiting to
      happen);
    * every net-added edge whose endpoints exist is present.

    Raises :class:`~repro.exceptions.SanitizerError` on violation.
    """
    summary = sanitize_csr(merged, graph=graph, expected_version=expected_version)
    watermark = getattr(merged, "_delta_target_version", None)
    if expected_version is not None and watermark != expected_version:
        _fail(
            "delta.watermark",
            f"merged view stamped for v{watermark} but cached at "
            f"v{expected_version}",
        )
    expected_nodes = (
        base.num_nodes - len(delta.nodes_deleted) + len(delta.nodes_added)
    )
    if merged.num_nodes != expected_nodes:
        _fail(
            "delta.node-count",
            f"merged has {merged.num_nodes} nodes, "
            f"base {base.num_nodes} - {len(delta.nodes_deleted)} deleted "
            f"+ {len(delta.nodes_added)} added = {expected_nodes}",
        )
    if delta.edges_deleted:
        present, _ = _merged_membership(merged, delta.edges_deleted)
        if np.any(present):
            _fail(
                "delta.dangling-delete",
                f"{int(present.sum())} net-deleted edge(s) survive in the "
                f"merged view",
            )
    if delta.edges_added:
        present, both = _merged_membership(merged, delta.edges_added)
        if not np.all(both):
            _fail(
                "delta.add-endpoint",
                "a net-added edge references a node absent from the merged view",
            )
        if not np.all(present):
            _fail(
                "delta.missing-add",
                f"{int((~present).sum())} net-added edge(s) absent from the "
                f"merged view",
            )
    summary["delta_checked"] = True
    return summary


def maybe_sanitize_delta(
    merged, base, delta, graph=None, expected_version: "int | None" = None
) -> None:
    """Run :func:`sanitize_delta_view` only when sanitizing is enabled."""
    if enabled():
        sanitize_delta_view(
            merged, base, delta, graph=graph, expected_version=expected_version
        )
