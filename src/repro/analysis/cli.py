"""The ``python -m repro.analysis`` / ``repro lint`` entry point.

Exit codes: 0 — no gating findings (advisory, suppressed, and baselined
findings are reported but accepted); 1 — at least one unsuppressed,
unbaselined error finding; 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import lint
from repro.exceptions import AnalysisError

DEFAULT_BASELINE = ".ringo-lint-baseline"


def build_parser() -> argparse.ArgumentParser:
    """The lint CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="ringo-lint: project-specific static analysis (rules R001-R006)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule codes to run (default: all registered)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--no-advisory", action="store_true",
        help="hide advisory findings from the report",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> int:
    for rule in lint.active_rules():
        print(f"{rule.code}  [{rule.severity:<8}]  {rule.name}: {rule.description}")
    return 0


def _report_text(findings, show_advisory: bool) -> None:
    shown = 0
    for finding in findings:
        if finding.severity == lint.SEVERITY_ADVISORY and not show_advisory:
            continue
        suffix = ""
        if finding.suppressed:
            suffix = "  [suppressed]"
        elif finding.baselined:
            suffix = "  [baselined]"
        print(finding.format() + suffix)
        shown += 1
    gating = lint.gating_findings(findings)
    advisory = sum(1 for f in findings if f.severity == lint.SEVERITY_ADVISORY)
    suppressed = sum(1 for f in findings if f.suppressed)
    baselined = sum(1 for f in findings if f.baselined and not f.suppressed)
    print(
        f"ringo-lint: {len(gating)} gating finding(s), {advisory} advisory, "
        f"{suppressed} suppressed, {baselined} baselined"
    )


def _report_json(findings) -> None:
    payload = [
        {
            "code": f.code,
            "message": f.message,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "symbol": f.symbol,
            "severity": f.severity,
            "suppressed": f.suppressed,
            "baselined": f.baselined,
        }
        for f in findings
    ]
    json.dump({"findings": payload}, sys.stdout, indent=2)
    print()


def main(argv: "list[str] | None" = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()
    codes = (
        [code.strip() for code in args.rules.split(",") if code.strip()]
        if args.rules
        else None
    )
    try:
        findings = lint.lint_paths(args.paths, codes)
        if args.write_baseline:
            count = lint.write_baseline(args.baseline, findings)
            print(f"ringo-lint: wrote {count} finding(s) to {args.baseline}")
            return 0
        lint.apply_baseline(findings, lint.load_baseline(args.baseline))
    except (AnalysisError, OSError) as error:
        print(f"repro.analysis: error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        _report_json(findings)
    else:
        _report_text(findings, show_advisory=not args.no_advisory)
    return 1 if lint.gating_findings(findings) else 0


if __name__ == "__main__":
    raise SystemExit(main())
