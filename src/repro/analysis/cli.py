"""The ``python -m repro.analysis`` / ``repro lint`` entry point.

Exit codes: 0 — no gating findings (advisory, suppressed, and baselined
findings are reported but accepted); 1 — at least one unsuppressed,
unbaselined error finding, or (under ``--strict-baseline``) a stale
baseline entry; 2 — usage error.

Report formats: ``text`` (default), ``json``, and ``sarif`` (SARIF
2.1.0, for code-scanning upload). ``--list-rules`` prints the rule
catalog; with ``--format markdown`` it emits the table embedded in
``docs/static-analysis.md`` (see the docs-sync test).
"""

from __future__ import annotations

import argparse
import inspect
import json
import re
import sys

from repro.analysis import lint
from repro.exceptions import AnalysisError

DEFAULT_BASELINE = ".ringo-lint-baseline"

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def build_parser() -> argparse.ArgumentParser:
    """The lint CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="ringo-lint: project-specific static analysis (rules R001-R012)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule codes to run (default: all registered)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--no-advisory", action="store_true",
        help="hide advisory findings from the report",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif", "markdown"), default="text",
        help="report format (markdown is only valid with --list-rules)",
    )
    parser.add_argument(
        "--strict-baseline", action="store_true",
        help="also fail (exit 1) when the baseline holds stale entries "
             "that match no current finding",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def rule_summary(rule) -> str:
    """One-line summary of a rule, taken from its class docstring.

    The first paragraph is collapsed to a single line and the leading
    ``RXXX:`` / ``RXXX (advisory):`` prefix is stripped (the code gets
    its own column). Falls back to ``rule.description``.
    """
    doc = inspect.getdoc(type(rule)) or ""
    paragraph = doc.split("\n\n", 1)[0]
    summary = " ".join(paragraph.split())
    summary = re.sub(r"^R\d+\s*(\(advisory\))?\s*:\s*", "", summary)
    sentence_end = summary.find(". ")
    if sentence_end != -1:
        summary = summary[: sentence_end + 1]
    return summary or rule.description


def _list_rules(fmt: str) -> int:
    rules = lint.active_rules()
    if fmt == "markdown":
        print("| Code | Severity | Rule | Summary |")
        print("| --- | --- | --- | --- |")
        for rule in rules:
            print(
                f"| {rule.code} | {rule.severity} | `{rule.name}` "
                f"| {rule_summary(rule)} |"
            )
    else:
        for rule in rules:
            print(f"{rule.code}  [{rule.severity:<8}]  {rule.name}: {rule.description}")
    return 0


def _report_text(findings, show_advisory: bool) -> None:
    shown = 0
    for finding in findings:
        if finding.severity == lint.SEVERITY_ADVISORY and not show_advisory:
            continue
        suffix = ""
        if finding.suppressed:
            suffix = "  [suppressed]"
        elif finding.baselined:
            suffix = "  [baselined]"
        print(finding.format() + suffix)
        shown += 1
    gating = lint.gating_findings(findings)
    advisory = sum(
        1
        for f in findings
        if f.severity == lint.SEVERITY_ADVISORY
        and not f.suppressed
        and not f.baselined
    )
    suppressed = sum(1 for f in findings if f.suppressed)
    baselined = sum(1 for f in findings if f.baselined and not f.suppressed)
    print(
        f"ringo-lint: {len(gating)} gating finding(s), {advisory} advisory, "
        f"{suppressed} suppressed, {baselined} baselined"
    )


def _report_json(findings) -> None:
    payload = [
        {
            "code": f.code,
            "message": f.message,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "symbol": f.symbol,
            "severity": f.severity,
            "suppressed": f.suppressed,
            "baselined": f.baselined,
        }
        for f in findings
    ]
    json.dump({"findings": payload}, sys.stdout, indent=2)
    print()


_SYNTHETIC_RULES = {
    lint.CODE_PARSE_ERROR: (
        "parse-error",
        "the file does not parse; no rule ran over it",
        lint.SEVERITY_ERROR,
    ),
    lint.CODE_UNUSED_SUPPRESSION: (
        "unused-suppression",
        "a 'ringo-lint: disable=' comment suppresses no finding",
        lint.SEVERITY_ADVISORY,
    ),
}


def sarif_report(findings) -> dict:
    """The findings as a SARIF 2.1.0 ``log`` dict (exposed for testing).

    Suppressed and baselined findings are included with a populated
    ``suppressions`` array so code-scanning UIs show them as resolved
    rather than dropping them from history.
    """
    descriptors = []
    for rule in lint.active_rules():
        descriptors.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
                "fullDescription": {"text": rule_summary(rule)},
                "defaultConfiguration": {
                    "level": "error"
                    if rule.severity == lint.SEVERITY_ERROR
                    else "note",
                },
            }
        )
    for code, (name, text, severity) in sorted(_SYNTHETIC_RULES.items()):
        descriptors.append(
            {
                "id": code,
                "name": name,
                "shortDescription": {"text": text},
                "defaultConfiguration": {
                    "level": "error" if severity == lint.SEVERITY_ERROR else "note",
                },
            }
        )
    results = []
    for f in findings:
        suppressions = []
        if f.suppressed:
            suppressions.append(
                {"kind": "inSource", "justification": "ringo-lint: disable comment"}
            )
        if f.baselined:
            suppressions.append(
                {"kind": "external", "justification": "baseline entry"}
            )
        results.append(
            {
                "ruleId": f.code,
                "level": "error" if f.severity == lint.SEVERITY_ERROR else "note",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": max(f.line, 1),
                                "startColumn": f.col + 1,
                            },
                        },
                        "logicalLocations": (
                            [{"fullyQualifiedName": f.symbol}] if f.symbol else []
                        ),
                    }
                ],
                "suppressions": suppressions,
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "ringo-lint",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


def _report_sarif(findings) -> None:
    json.dump(sarif_report(findings), sys.stdout, indent=2)
    print()


def main(argv: "list[str] | None" = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules(args.format)
    if args.format == "markdown":
        print(
            "repro.analysis: error: --format markdown requires --list-rules",
            file=sys.stderr,
        )
        return 2
    codes = (
        [code.strip() for code in args.rules.split(",") if code.strip()]
        if args.rules
        else None
    )
    try:
        findings = lint.lint_paths(args.paths, codes)
        if args.write_baseline:
            count = lint.write_baseline(args.baseline, findings)
            print(f"ringo-lint: wrote {count} finding(s) to {args.baseline}")
            return 0
        baseline = lint.load_baseline(args.baseline)
        lint.apply_baseline(findings, baseline)
    except (AnalysisError, OSError) as error:
        print(f"repro.analysis: error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        _report_json(findings)
    elif args.format == "sarif":
        _report_sarif(findings)
    else:
        _report_text(findings, show_advisory=not args.no_advisory)
    failed = bool(lint.gating_findings(findings))
    if args.strict_baseline:
        stale = lint.stale_baseline_keys(findings, baseline)
        for key in stale:
            print(
                f"ringo-lint: stale baseline entry (no matching finding): {key}",
                file=sys.stderr,
            )
        failed = failed or bool(stale)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
