"""Interprocedural lint rules R008–R012.

Every rule here subclasses :class:`repro.analysis.lint.FlowRule`: it
sees the whole :class:`~repro.analysis.lint.Project` at once — the
call graph (:mod:`repro.analysis.callgraph`) for reachability and type
questions, and per-function CFGs (:mod:`repro.analysis.flow`) for
all-paths questions. The single-module rules R001–R007 live in
:mod:`repro.analysis.rules`.

Honesty notes shared by all five rules:

* the call graph resolves ~85% of call sites; an unresolved callee is
  *not* traversed, so a blocking call hiding behind one is missed
  (false negative, never a false positive);
* functions passed by reference (``loop.run_in_executor(pool, fn)``,
  ``asyncio.to_thread(fn)``) create no call edge — which is exactly
  the executor-hop semantics R008 wants;
* R012 reads ``KNOWN_SITES`` from the *linted* ``faults`` module's own
  AST, so the rule is silent when no faults module is in scope (e.g.
  when linting a single subpackage).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.callgraph import (
    EXTERNAL,
    INTERNAL,
    CallGraph,
    CallSite,
    FunctionInfo,
)
from repro.analysis.flow import CFG, build_cfg
from repro.analysis.lint import (
    SEVERITY_ADVISORY,
    Finding,
    FlowRule,
    Project,
    register,
)

# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

#: threading primitives whose acquisition blocks the calling thread.
_LOCK_TYPE_NAMES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)


def _is_lock_type(name: "str | None") -> bool:
    if name is None:
        return False
    return name in _LOCK_TYPE_NAMES or name.rsplit(".", 1)[-1] == "TrackedLock"


def _terminal(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _own_subnodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function/class defs."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _stmt_exprs(stmt: ast.AST) -> Iterator[ast.expr]:
    """The expressions evaluated *at* a statement (compound headers only).

    For a compound statement the body belongs to other CFG nodes; only
    the header expression is evaluated when control passes this node.
    """
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
        yield stmt.target
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            yield stmt.exc
    elif isinstance(stmt, (ast.Try, ast.ExceptHandler)):
        return
    elif isinstance(stmt, ast.stmt):
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield child


def _stmt_calls(stmt: ast.AST) -> Iterator[ast.Call]:
    """Call expressions evaluated at this statement (header-only)."""
    for expr in _stmt_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


def _call_terminal(call: ast.Call) -> "str | None":
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _sites_by_node(graph: CallGraph, qualname: str) -> "dict[int, CallSite]":
    return {id(site.node): site for site in graph.calls_from(qualname)}


def _function_display(qualname: str) -> str:
    """Trim the module prefix for messages (keep Class.method)."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


# ---------------------------------------------------------------------------
# R008 — blocking calls reachable from async defs
# ---------------------------------------------------------------------------

#: External callables that block the calling thread (event-loop stall
#: when that thread runs an asyncio loop).
_BLOCKING_EXTERNAL = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.sync",
        "os.system",
        "builtins.open",
        "builtins.input",
        "select.select",
        "socket.create_connection",
        "socket.socket.connect",
        "socket.socket.accept",
        "socket.socket.recv",
        "socket.socket.sendall",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen.wait",
        "subprocess.Popen.communicate",
        "shutil.rmtree",
        "shutil.copyfile",
        "shutil.copytree",
        "pathlib.Path.read_text",
        "pathlib.Path.read_bytes",
        "pathlib.Path.write_text",
        "pathlib.Path.write_bytes",
        "concurrent.futures.ThreadPoolExecutor.shutdown",
        "concurrent.futures.ProcessPoolExecutor.shutdown",
        "concurrent.futures.Future.result",
        "threading.Thread.join",
        "threading.Event.wait",
        "queue.Queue.get",
        "queue.Queue.put",
    }
)

#: Blocking lock acquisitions — flagged only when they appear *directly*
#: in an async body. Sync helpers take micro-locks around counters all
#: over this codebase; those are held for nanoseconds and are exactly
#: what ``run_in_executor`` offloading is not for. A lock held *by the
#: event-loop thread itself* is the real hazard.
_BLOCKING_ACQUIRE = frozenset(
    {f"{name}.acquire" for name in _LOCK_TYPE_NAMES}
)

#: Kernel-dispatch entry points: each runs a full parallel kernel to
#: completion on the calling thread (WorkerPool fan-out included).
_DISPATCH_ATTRS = frozenset({"run_kernel", "map_range", "map_chunks", "run_tasks"})

_MAX_CHAIN_DEPTH = 12


@register
class AsyncBlockingRule(FlowRule):
    """R008: no blocking call may be reachable from an ``async def``
    body without an executor hop. The service promises interactive
    latencies; one ``time.sleep``, sync file/socket read,
    ``Lock.acquire``, ``Executor.shutdown(wait=True)`` or direct kernel
    dispatch on the event-loop thread stalls **every** tenant at once.
    The rule walks the call graph transitively through sync helpers
    (reporting the chain), and treats functions passed by reference to
    ``run_in_executor``/``asyncio.to_thread`` as hopped — they create
    no call edge, which is precisely the discipline the service layer
    uses. Lock acquisitions are flagged only when taken directly in the
    async body (micro-locks inside sync helpers are held for
    nanoseconds and are not worth a thread hop)."""

    code = "R008"
    name = "async-blocking"
    description = (
        "blocking call (sleep, sync I/O, Lock.acquire, kernel dispatch) "
        "reachable from an async def without an executor hop"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.callgraph
        self._summaries: dict[str, "tuple[str, tuple[str, ...]] | None"] = {}
        for fn in sorted(graph.functions.values(), key=lambda f: f.qualname):
            if not fn.is_async:
                continue
            yield from self._check_async(project, graph, fn)

    def _check_async(
        self, project: Project, graph: CallGraph, fn: FunctionInfo
    ) -> Iterator[Finding]:
        display = _function_display(fn.qualname)
        for site in graph.calls_from(fn.qualname):
            primitive = self._direct_blocking(site, in_async_body=True)
            if primitive is not None:
                yield self.project_finding(
                    project,
                    site.path,
                    site.node,
                    f"async '{display}' calls blocking {primitive} on the "
                    "event-loop thread; hop through run_in_executor or "
                    "asyncio.to_thread",
                )
                continue
            chain = self._chain_for_site(graph, site)
            if chain is not None:
                primitive, path = chain
                via = " -> ".join(_function_display(q) for q in path)
                yield self.project_finding(
                    project,
                    site.path,
                    site.node,
                    f"async '{display}' reaches blocking {primitive} via "
                    f"{via}; hop through run_in_executor or asyncio.to_thread",
                )
        # `with lock:` directly in the async body blocks the loop thread
        # exactly like a bare acquire().
        for node in _own_subnodes(fn.node):
            if isinstance(node, ast.With):
                for item in node.items:
                    ref = graph.expr_type(fn.qualname, item.context_expr)
                    if ref is not None and _is_lock_type(ref.name):
                        yield self.project_finding(
                            project,
                            fn.path,
                            node,
                            f"async '{display}' holds threading lock "
                            f"'{ast.unparse(item.context_expr)}' on the "
                            "event-loop thread; use asyncio.Lock or hop to "
                            "an executor",
                        )

    def _direct_blocking(
        self, site: CallSite, in_async_body: bool
    ) -> "str | None":
        if site.attr in _DISPATCH_ATTRS:
            return f"kernel dispatch .{site.attr}()"
        if site.kind == EXTERNAL and site.callee is not None:
            if site.callee in _BLOCKING_EXTERNAL:
                return site.callee
            if in_async_body and site.callee in _BLOCKING_ACQUIRE:
                return site.callee
        if (
            in_async_body
            and site.callee is not None
            and site.callee.endswith(".TrackedLock.acquire")
        ):
            return site.callee
        return None

    def _chain_for_site(
        self, graph: CallGraph, site: CallSite
    ) -> "tuple[str, tuple[str, ...]] | None":
        if site.kind != INTERNAL or site.callee is None:
            return None
        target = site.callee
        if target in graph.classes:
            ctor = graph.find_method(target, "__init__")
            if ctor is None:
                return None
            target = ctor.qualname
        callee = graph.functions.get(target)
        if callee is None or callee.is_async:
            return None
        return self._blocking_summary(graph, target, frozenset(), 0)

    def _blocking_summary(
        self, graph: CallGraph, qualname: str, visiting: frozenset, depth: int
    ) -> "tuple[str, tuple[str, ...]] | None":
        if qualname in self._summaries:
            return self._summaries[qualname]
        if qualname in visiting or depth > _MAX_CHAIN_DEPTH:
            return None
        result: "tuple[str, tuple[str, ...]] | None" = None
        for site in graph.calls_from(qualname):
            primitive = self._direct_blocking(site, in_async_body=False)
            if primitive is not None:
                result = (primitive, (qualname,))
                break
            if site.kind == INTERNAL and site.callee is not None:
                target = site.callee
                if target in graph.classes:
                    ctor = graph.find_method(target, "__init__")
                    target = ctor.qualname if ctor is not None else None
                if target is None:
                    continue
                callee = graph.functions.get(target)
                if callee is None or callee.is_async:
                    continue
                deeper = self._blocking_summary(
                    graph, target, visiting | {qualname}, depth + 1
                )
                if deeper is not None:
                    result = (deeper[0], (qualname,) + deeper[1])
                    break
        self._summaries[qualname] = result
        return result


# ---------------------------------------------------------------------------
# R009 — static lock-order cycles
# ---------------------------------------------------------------------------


@register
class LockOrderRule(FlowRule):
    """R009: the static lock-order graph must be acyclic. Locks are
    identified structurally (``Class.attr`` for instance locks,
    ``module.NAME`` for globals) over ``threading.Lock``/``RLock``/
    ``TrackedLock``; an edge A→B is recorded when B is acquired —
    directly or via any transitively called helper — inside a ``with
    A:`` region. A cycle means two threads can each hold one lock of
    the cycle while waiting for another: a deadlock that hits only
    under load, which is why it must be caught statically (the runtime
    Eraser-style detector in ``races.py`` only sees schedules that
    actually interleave). Re-acquiring the same non-reentrant lock is
    reported as a self-cycle; ``RLock`` self-cycles are reentrant and
    accepted. Identity is per-class, not per-instance: two instances'
    locks share a name, which can over-report (never under-report) on
    deliberately instance-partitioned designs — suppress with a
    justifying comment in that case."""

    code = "R009"
    name = "lock-order"
    description = "lock-order graph over threading/Tracked locks must be acyclic"

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.callgraph
        self._acquire_summaries: dict[str, frozenset] = {}
        # identity -> lock type name (first seen)
        self._lock_types: dict[str, str] = {}
        edges: dict[str, dict[str, tuple[str, int, str]]] = {}
        for fn in sorted(graph.functions.values(), key=lambda f: f.qualname):
            for held, target, node in self._edges_in(graph, fn):
                edges.setdefault(held, {}).setdefault(
                    target, (fn.path, getattr(node, "lineno", 1), fn.qualname)
                )
        yield from self._report_cycles(project, graph, edges)

    # -- acquisition discovery ----------------------------------------

    def _lock_identity(
        self, graph: CallGraph, fn: FunctionInfo, expr: ast.expr
    ) -> "str | None":
        """Stable identity for a lock expression, or None if not a lock."""
        ref = graph.expr_type(fn.qualname, expr)
        if ref is None or not _is_lock_type(ref.name):
            return None
        identity: "str | None" = None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
            and fn.class_qualname is not None
        ):
            identity = f"{fn.class_qualname}.{expr.attr}"
        elif isinstance(expr, ast.Name):
            identity = f"{fn.module}.{expr.id}"
        elif isinstance(expr, ast.Attribute):
            base = graph.expr_type(fn.qualname, expr.value)
            if base is not None and base.name in graph.classes:
                identity = f"{base.name}.{expr.attr}"
        if identity is None:
            identity = f"{fn.module}.{ast.unparse(expr)}"
        self._lock_types.setdefault(identity, ref.name)
        return identity

    def _acquisitions(
        self, graph: CallGraph, fn: FunctionInfo
    ) -> "list[tuple[str, ast.AST, set[int] | None]]":
        """(identity, node, with-region node ids | None) per acquisition."""
        out: list[tuple[str, ast.AST, "set[int] | None"]] = []
        for node in _own_subnodes(fn.node):
            if isinstance(node, ast.With):
                for item in node.items:
                    identity = self._lock_identity(graph, fn, item.context_expr)
                    if identity is not None:
                        region = {
                            id(sub)
                            for stmt in node.body
                            for sub in [stmt, *_own_subnodes(stmt)]
                        }
                        out.append((identity, node, region))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                identity = self._lock_identity(graph, fn, node.func.value)
                if identity is not None:
                    out.append((identity, node, None))
        return out

    def _acquire_summary(
        self, graph: CallGraph, qualname: str, visiting: frozenset
    ) -> frozenset:
        """Locks a function may acquire, transitively (memoized)."""
        cached = self._acquire_summaries.get(qualname)
        if cached is not None:
            return cached
        if qualname in visiting or len(visiting) > _MAX_CHAIN_DEPTH:
            return frozenset()
        fn = graph.functions.get(qualname)
        if fn is None:
            return frozenset()
        acquired = {identity for identity, _, _ in self._acquisitions(graph, fn)}
        for site in graph.calls_from(qualname):
            if site.kind == INTERNAL and site.callee is not None:
                target = site.callee
                if target in graph.classes:
                    ctor = graph.find_method(target, "__init__")
                    target = ctor.qualname if ctor is not None else None
                if target is not None:
                    acquired |= self._acquire_summary(
                        graph, target, visiting | {qualname}
                    )
        result = frozenset(acquired)
        self._acquire_summaries[qualname] = result
        return result

    def _edges_in(
        self, graph: CallGraph, fn: FunctionInfo
    ) -> "Iterator[tuple[str, str, ast.AST]]":
        acquisitions = self._acquisitions(graph, fn)
        with_events = [
            (identity, node, region)
            for identity, node, region in acquisitions
            if region is not None
        ]
        if not with_events:
            return
        sites = _sites_by_node(graph, fn.qualname)
        for held, _, region in with_events:
            for identity, node, _ in acquisitions:
                if id(node) in region:
                    yield held, identity, node
            for site in sites.values():
                if id(site.node) not in region:
                    continue
                if site.kind == INTERNAL and site.callee is not None:
                    target = site.callee
                    if target in graph.classes:
                        ctor = graph.find_method(target, "__init__")
                        target = ctor.qualname if ctor is not None else None
                    if target is not None:
                        for acquired in self._acquire_summary(
                            graph, target, frozenset()
                        ):
                            yield held, acquired, site.node

    # -- cycle detection ----------------------------------------------

    def _report_cycles(
        self,
        project: Project,
        graph: CallGraph,
        edges: "dict[str, dict[str, tuple[str, int, str]]]",
    ) -> Iterator[Finding]:
        reported: set[frozenset] = set()

        def edge_site(a: str, b: str) -> tuple[str, int, str]:
            return edges[a][b]

        for held, targets in sorted(edges.items()):
            # Self-cycle: re-acquiring a non-reentrant lock deadlocks
            # the holding thread itself.
            if held in targets:
                lock_type = self._lock_types.get(held, "")
                if not lock_type.endswith("RLock") and frozenset({held}) not in reported:
                    reported.add(frozenset({held}))
                    path, line, _ = edge_site(held, held)
                    yield self._cycle_finding(
                        project, path, line,
                        f"non-reentrant lock '{held}' ({lock_type}) is "
                        "re-acquired while already held — self-deadlock",
                    )
        # Multi-lock cycles via DFS over the order graph.
        state: dict[str, int] = {}
        stack: list[str] = []

        def dfs(node: str) -> Iterator[list[str]]:
            state[node] = 1
            stack.append(node)
            for nxt in sorted(edges.get(node, ())):
                if nxt == node:
                    continue
                if state.get(nxt, 0) == 1:
                    yield stack[stack.index(nxt) :] + [nxt]
                elif state.get(nxt, 0) == 0:
                    yield from dfs(nxt)
            stack.pop()
            state[node] = 2

        for root in sorted(edges):
            if state.get(root, 0) == 0:
                for cycle in dfs(root):
                    key = frozenset(cycle)
                    if key in reported:
                        continue
                    reported.add(key)
                    hops = []
                    for a, b in zip(cycle, cycle[1:]):
                        path, line, _ = edge_site(a, b)
                        hops.append(f"{a} -> {b} ({path}:{line})")
                    path, line, _ = edge_site(cycle[0], cycle[1])
                    yield self._cycle_finding(
                        project, path, line,
                        "lock-order cycle can deadlock: " + ", ".join(hops),
                    )

    def _cycle_finding(
        self, project: Project, path: str, line: int, message: str
    ) -> Finding:
        anchor = ast.Pass()
        anchor.lineno = line
        anchor.col_offset = 0
        return self.project_finding(project, path, anchor, message)


# ---------------------------------------------------------------------------
# R010 — resource lifecycle pairing
# ---------------------------------------------------------------------------

_TMP_CLEANUP_CALLS = frozenset(
    {"replace", "rename", "rmtree", "rmdir", "unlink", "_remove_tree", "remove_tree"}
)


@register
class ResourceLifecycleRule(FlowRule):
    """R010: acquired resources must be settled on **every** CFG path.
    Three project resources are tracked. (1) ``ShmRegistry.lease``
    bumps a refcount; a path that escapes without ``release`` pins a
    /dev/shm segment until process exit — including exceptional paths,
    so the release belongs in a ``finally``. (2) A WAL ``append`` that
    commits a *fresh* catalog name (an f-string name, the commit-point
    protocol) must be followed by ``_publish``/``_publish_as`` on every
    normal path, or recovery replays an object no caller could ever
    have observed; exceptional paths are exempt (replay re-derives),
    as is the mutate-in-place form that re-logs an existing ref.
    (3) A checkpoint temp directory (``mkdir`` on a ``tmp``-named
    path, or one derived from it) must reach ``os.replace`` (the
    atomic commit) or be removed on every path including exceptional
    ones — anything else litters the state root with torn snapshots.
    The statement's own exception edge is pre-effect: if the acquire
    itself raises, nothing was held."""

    code = "R010"
    name = "resource-lifecycle"
    description = (
        "shm lease / fresh WAL append / checkpoint temp dir must be "
        "released, published, or cleaned up on every CFG path"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.callgraph
        for fn in sorted(graph.functions.values(), key=lambda f: f.qualname):
            yield from self._check_function(project, graph, fn)

    def _check_function(
        self, graph_project: Project, graph: CallGraph, fn: FunctionInfo
    ) -> Iterator[Finding]:
        cfg: "CFG | None" = None
        seen_tmp_roots: set[str] = set()
        for stmt in _function_statements(fn.node):
            for call in _stmt_calls(stmt):
                terminal = _call_terminal(call)
                if terminal == "lease" and not _in_with_header(stmt, call):
                    cfg = cfg or build_cfg(fn.node)
                    yield from self._check_lease(graph_project, fn, cfg, stmt, call)
                elif terminal == "append" and self._is_wal_append(graph, fn, call):
                    cfg = cfg or build_cfg(fn.node)
                    yield from self._check_wal_append(
                        graph_project, fn, cfg, stmt, call
                    )
                elif terminal == "mkdir":
                    cfg = cfg or build_cfg(fn.node)
                    yield from self._check_tmp_dir(
                        graph_project, fn, cfg, stmt, call, seen_tmp_roots
                    )

    # -- (1) shm leases ------------------------------------------------

    def _check_lease(
        self,
        project: Project,
        fn: FunctionInfo,
        cfg: CFG,
        stmt: ast.AST,
        call: ast.Call,
    ) -> Iterator[Finding]:
        def settles(node) -> bool:
            return any(
                _call_terminal(c) == "release" for c in _stmt_calls(node.stmt)
            ) if node.stmt is not None else False

        escape = cfg.find_escape(stmt, settles, include_exceptional=True)
        if escape is not None:
            how = (
                "an exception path"
                if escape.kind == "raise-exit"
                else "a normal path"
            )
            yield self.project_finding(
                project,
                fn.path,
                call,
                f"'{_function_display(fn.qualname)}' leases an shm export "
                f"but {how} escapes without release() — the segment leaks "
                "until process exit; pair in try/finally",
            )

    # -- (2) WAL append / publish -------------------------------------

    def _is_wal_append(
        self, graph: CallGraph, fn: FunctionInfo, call: ast.Call
    ) -> bool:
        if not isinstance(call.func, ast.Attribute):
            return False
        ref = graph.expr_type(fn.qualname, call.func.value)
        return ref is not None and _terminal(ref.name) == "WriteAheadLog"

    def _check_wal_append(
        self,
        project: Project,
        fn: FunctionInfo,
        cfg: CFG,
        stmt: ast.AST,
        call: ast.Call,
    ) -> Iterator[Finding]:
        output = self._output_arg(call)
        if output is None or not self._is_fresh_name(cfg, stmt, output):
            return  # mutate-in-place form: the object is already published
        def settles(node) -> bool:
            if node.stmt is None:
                return False
            return any(
                _call_terminal(c) in ("_publish", "_publish_as")
                for c in _stmt_calls(node.stmt)
            )

        escape = cfg.find_escape(stmt, settles, include_exceptional=False)
        if escape is not None:
            yield self.project_finding(
                project,
                fn.path,
                call,
                f"'{_function_display(fn.qualname)}' WAL-appends a fresh "
                "catalog name but a normal path continues without "
                "_publish()/_publish_as() — recovery would replay an object "
                "the caller never observed",
            )

    @staticmethod
    def _output_arg(call: ast.Call) -> "ast.expr | None":
        if len(call.args) >= 4:
            return call.args[3]
        for kw in call.keywords:
            if kw.arg == "output":
                return kw.value
        return None

    @staticmethod
    def _is_fresh_name(cfg: CFG, stmt: ast.AST, output: ast.expr) -> bool:
        if isinstance(output, ast.JoinedStr):
            return True
        if isinstance(output, ast.Name):
            defs = cfg.definitions_at(stmt, output.id)
            values = [
                d.value
                for d in defs
                if isinstance(d, ast.Assign) and isinstance(d.value, ast.JoinedStr)
            ]
            return bool(defs) and len(values) == len(defs)
        return False

    # -- (3) checkpoint temp dirs -------------------------------------

    def _check_tmp_dir(
        self,
        project: Project,
        fn: FunctionInfo,
        cfg: CFG,
        stmt: ast.AST,
        call: ast.Call,
        seen_roots: set,
    ) -> Iterator[Finding]:
        assert isinstance(call.func, ast.Attribute)
        root = self._tmp_root(cfg, stmt, call.func.value)
        if root is None or root in seen_roots:
            return
        seen_roots.add(root)

        def settles(node) -> bool:
            if node.stmt is None:
                return False
            for c in _stmt_calls(node.stmt):
                if _call_terminal(c) not in _TMP_CLEANUP_CALLS:
                    continue
                names = {
                    sub.id
                    for arg in c.args
                    for sub in ast.walk(arg)
                    if isinstance(sub, ast.Name)
                }
                if isinstance(c.func, ast.Attribute) and isinstance(
                    c.func.value, ast.Name
                ):
                    names.add(c.func.value.id)
                if root in names:
                    return True
            return False

        escape = cfg.find_escape(stmt, settles, include_exceptional=True)
        if escape is not None:
            how = (
                "an exception path"
                if escape.kind == "raise-exit"
                else "a normal path"
            )
            yield self.project_finding(
                project,
                fn.path,
                call,
                f"'{_function_display(fn.qualname)}' creates temp dir "
                f"'{root}' but {how} escapes without os.replace() or "
                "removal — torn state is left on disk",
            )

    @staticmethod
    def _tmp_root(cfg: CFG, stmt: ast.AST, receiver: ast.expr) -> "str | None":
        """The tmp-ish variable a mkdir receiver names or derives from."""
        def tmpish(name: str) -> bool:
            return "tmp" in name.lower()

        if isinstance(receiver, ast.Name):
            if tmpish(receiver.id):
                return receiver.id
            for definition in cfg.definitions_at(stmt, receiver.id):
                value = getattr(definition, "value", None)
                if value is None:
                    continue
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name) and tmpish(sub.id):
                        return sub.id
        return None


def _function_statements(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Iterator[ast.stmt]:
    for node in _own_subnodes(fn):
        if isinstance(node, ast.stmt):
            yield node


def _in_with_header(stmt: ast.AST, call: ast.Call) -> bool:
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return False
    return any(
        call is sub or call in ast.walk(item.context_expr)
        for item in stmt.items
        for sub in [item.context_expr]
    )


# ---------------------------------------------------------------------------
# R011 — exception contract
# ---------------------------------------------------------------------------

_BROAD_CATCH = frozenset(
    {"BaseException", "Exception", "RingoError", "ExecutionError", "TransientError"}
)

#: try-bodies that are pure best-effort teardown may swallow: a close
#: that fails during shutdown has nothing better to do than proceed.
_CLEANUP_ATTRS = frozenset(
    {"close", "shutdown", "cancel", "release", "terminate", "join", "stop", "unlink"}
)


@register
class ExceptionContractRule(FlowRule):
    """R011: the typed exception contract must hold end to end. A broad
    handler (bare, ``Exception``, ``BaseException``, or a wide project
    base like ``RingoError``) that protects code which can raise
    ``TransientError`` — directly, via ``fault_point``, or through any
    transitively called helper — and neither re-raises nor inspects the
    bound exception *eats a retryable fault*: the retry policy upstream
    never sees it, so injected faults and transient contention turn
    into silent wrong answers. Bare ``except:`` without a re-raise is
    always an error (it also eats ``KeyboardInterrupt``). A broad
    silent ``pass`` handler over non-transient code is an advisory
    nudge. Exempt: handlers whose protected block is pure best-effort
    teardown (every statement a ``close``/``shutdown``/…-style call).
    The rule also audits the exception inventory itself: a class
    defined in an ``exceptions`` module that is never raised,
    instantiated, caught, subclassed, or referenced anywhere in the
    project is dead contract surface and is reported at its
    definition."""

    code = "R011"
    name = "exception-contract"
    description = (
        "no broad handler may swallow TransientError paths; no dead "
        "exception classes"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.callgraph
        self._transient_quals, self._transient_names = _transient_classes(graph)
        self._raise_memo: dict[str, bool] = {}
        for fn in sorted(graph.functions.values(), key=lambda f: f.qualname):
            yield from self._check_handlers(project, graph, fn)
        yield from self._check_dead_exceptions(project, graph)

    # -- swallowed transients ------------------------------------------

    def _check_handlers(
        self, project: Project, graph: CallGraph, fn: FunctionInfo
    ) -> Iterator[Finding]:
        sites = _sites_by_node(graph, fn.qualname)
        for node in _own_subnodes(fn.node):
            if not isinstance(node, ast.Try):
                continue
            cleanup = _is_cleanup_block(node.body)
            transient = self._region_raises_transient(
                graph, sites, node.body + node.orelse
            )
            for handler in node.handlers:
                broad = _broad_catch_names(handler)
                if not broad:
                    continue
                silent = _handler_is_silent(handler)
                if handler.type is None and silent:
                    yield self.project_finding(
                        project,
                        fn.path,
                        handler,
                        "bare 'except:' without re-raise swallows everything "
                        "including KeyboardInterrupt; catch a typed "
                        "repro.exceptions class",
                    )
                elif silent and transient and not cleanup:
                    yield self.project_finding(
                        project,
                        fn.path,
                        handler,
                        f"'except {broad[0]}' swallows a TransientError path "
                        "— the retry policy upstream never sees the fault; "
                        "re-raise TransientError or narrow the catch",
                    )
                elif (
                    silent
                    and not cleanup
                    and len(handler.body) == 1
                    and isinstance(handler.body[0], ast.Pass)
                ):
                    yield Finding(
                        code=self.code,
                        message=(
                            f"silent 'except {broad[0]}: pass' hides every "
                            "failure in the block; consider narrowing or "
                            "recording the error"
                        ),
                        path=fn.path,
                        line=handler.lineno,
                        col=handler.col_offset,
                        symbol=_function_display(fn.qualname),
                        severity=SEVERITY_ADVISORY,
                    )

    def _region_raises_transient(
        self,
        graph: CallGraph,
        sites: "dict[int, CallSite]",
        stmts: "list[ast.stmt]",
    ) -> bool:
        for stmt in stmts:
            nodes = [stmt, *_own_subnodes(stmt)]
            for node in nodes:
                if isinstance(node, ast.Call):
                    site = sites.get(id(node))
                    if site is not None and self._site_raises_transient(
                        graph, site, frozenset()
                    ):
                        return True
        return False

    def _site_raises_transient(
        self, graph: CallGraph, site: CallSite, visiting: frozenset
    ) -> bool:
        if site.attr == "fault_point":
            return True  # raises InjectedFaultError, a TransientError
        if site.callee is None:
            return False
        if site.kind == EXTERNAL:
            return _terminal(site.callee) in self._transient_names
        if site.callee in self._transient_quals:
            return True
        if site.callee in graph.classes:
            return False  # constructing a non-exception class
        return self._callee_raises_transient(graph, site.callee, visiting)

    def _callee_raises_transient(
        self, graph: CallGraph, qualname: str, visiting: frozenset
    ) -> bool:
        if qualname in self._raise_memo:
            return self._raise_memo[qualname]
        if qualname in visiting or len(visiting) > _MAX_CHAIN_DEPTH:
            return False
        result = False
        for site in graph.calls_from(qualname):
            if self._site_raises_transient(graph, site, visiting | {qualname}):
                result = True
                break
        self._raise_memo[qualname] = result
        return result

    # -- dead exception classes ----------------------------------------

    def _check_dead_exceptions(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Finding]:
        exception_modules = [
            mi for name, mi in graph.modules.items()
            if _terminal(name) == "exceptions"
        ]
        if not exception_modules:
            return
        used_names: set[str] = set()
        used_quals: set[str] = set()
        for site in graph.all_sites():
            if site.callee is not None:
                used_quals.add(site.callee)
        for unit in project.units:
            own_exceptions = any(
                unit.path == mi.path for mi in exception_modules
            )
            for node in ast.walk(unit.tree):
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    continue
                if isinstance(node, ast.ExceptHandler) and node.type is not None:
                    for name_node in ast.walk(node.type):
                        if isinstance(name_node, (ast.Name, ast.Attribute)):
                            used_names.add(_node_terminal(name_node))
                elif isinstance(node, ast.Raise) and node.exc is not None:
                    for name_node in ast.walk(node.exc):
                        if isinstance(name_node, (ast.Name, ast.Attribute)):
                            used_names.add(_node_terminal(name_node))
                elif isinstance(node, ast.Name) and not own_exceptions:
                    used_names.add(node.id)
        for qualname, ci in sorted(graph.classes.items()):
            if graph.modules.get(ci.module) not in exception_modules:
                continue
            if ci.node.name in used_names or qualname in used_quals:
                continue
            if any(
                qualname in graph.resolved_bases(other)
                for other in graph.classes
            ):
                continue
            yield self.project_finding(
                project,
                graph.modules[ci.module].path,
                ci.node,
                f"exception class '{ci.node.name}' is never raised, caught, "
                "subclassed, or referenced — dead contract surface",
            )


def _node_terminal(node: "ast.Name | ast.Attribute") -> str:
    return node.id if isinstance(node, ast.Name) else node.attr


def _broad_catch_names(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return ["<bare>"]
    exprs: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        exprs = list(handler.type.elts)
    else:
        exprs = [handler.type]
    names = []
    for expr in exprs:
        if isinstance(expr, (ast.Name, ast.Attribute)):
            terminal = _node_terminal(expr)
            if terminal in _BROAD_CATCH:
                names.append(terminal)
    return names


def _handler_is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler neither re-raises nor uses the exception."""
    for node in handler.body:
        for sub in [node, *_own_subnodes(node)]:
            if isinstance(sub, ast.Raise):
                return False
            if (
                handler.name is not None
                and isinstance(sub, ast.Name)
                and sub.id == handler.name
            ):
                return False
    return True


def _is_cleanup_block(stmts: "list[ast.stmt]") -> bool:
    if not stmts:
        return False
    for stmt in stmts:
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and _call_terminal(stmt.value) in _CLEANUP_ATTRS
        ):
            return False
    return True


def _transient_classes(graph: CallGraph) -> "tuple[set[str], set[str]]":
    """(internal qualnames, terminal names) of TransientError subclasses."""
    names = {"TransientError", "InjectedFaultError", "AdmissionContention"}
    quals: set[str] = set()
    changed = True
    while changed:
        changed = False
        for qualname, ci in graph.classes.items():
            if qualname in quals:
                continue
            raw = {
                base.rsplit(".", 1)[-1] for base in graph.base_names(qualname)
            }
            resolved = set(graph.resolved_bases(qualname))
            if (
                ci.node.name in names
                or raw & names
                or resolved & quals
            ):
                quals.add(qualname)
                names.add(ci.node.name)
                changed = True
    return quals, names


# ---------------------------------------------------------------------------
# R012 — dead fault sites
# ---------------------------------------------------------------------------


@register
class DeadFaultSiteRule(FlowRule):
    """R012: every ``faults.KNOWN_SITES`` entry must be referenced by a
    ``fault_point("site")`` or ``plan.check("site")`` call somewhere in
    the linted project. The registry exists so that R003 can reject
    typo'd site strings; a registered site that no call references is
    the dual failure — a resilience test can arm it and pass without
    ever injecting anything. The rule reads ``KNOWN_SITES`` from the
    linted ``faults`` module's own AST (not the installed package), so
    fixtures are self-contained and the rule is silent when the faults
    module is outside the lint scope."""

    code = "R012"
    name = "dead-fault-site"
    description = "KNOWN_SITES entries no fault_point()/plan.check() references"

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.callgraph
        registries: "list[tuple[str, ast.Constant]]" = []
        registry_paths: list[str] = []
        for name, mi in graph.modules.items():
            if _terminal(name) != "faults":
                continue
            for stmt in mi.unit.tree.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "KNOWN_SITES"
                    and isinstance(stmt.value, (ast.Tuple, ast.List, ast.Set))
                ):
                    registry_paths.append(mi.path)
                    for elt in stmt.value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            registries.append((mi.path, elt))
        if not registries:
            return
        referenced: set[str] = set()
        for unit in project.units:
            for node in ast.walk(unit.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                terminal = _call_terminal(node)
                if terminal not in ("fault_point", "check"):
                    continue
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    referenced.add(first.value)
        for path, const in registries:
            if const.value not in referenced:
                yield self.project_finding(
                    project,
                    path,
                    const,
                    f"fault site '{const.value}' is registered in KNOWN_SITES "
                    "but no fault_point()/plan.check() call references it — "
                    "tests arming it pass vacuously",
                )
