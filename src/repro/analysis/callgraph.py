"""Project-wide call graph with module-level name resolution.

The single-module rules (R001–R007) see one AST at a time, so a bug
that spans a call boundary — a blocking call two frames below an
``async def``, a lock acquired by a helper while the caller holds
another — is invisible to them. This module builds the interprocedural
substrate the flow rules (R008–R012) stand on:

* **indexing** — every module handed in is indexed for imports (with
  relative-import resolution), module-level functions, classes with
  their methods, and attribute/variable type sources;
* **type resolution** — a modest, flow-insensitive resolver maps
  expressions to types using constructor assignments
  (``self.executor = ThreadPoolExecutor(...)``), annotations
  (``manager: "SessionManager | None"``), and return annotations
  (``def shm_registry() -> ShmRegistry``), so method calls through
  ``self`` and attribute chains resolve;
* **honesty** — every call site lands in exactly one of three buckets:
  resolved-internal (a function in the project), resolved-external
  (a dotted name rooted outside it, including builtins), or
  *unresolved*. :meth:`CallGraph.resolution_rate` reports the resolved
  fraction, and a test enforces a floor so the graph cannot silently
  rot into guesswork.

>>> from repro.analysis.lint import ModuleUnit
>>> util = ModuleUnit("pkg/util.py", "def helper():\\n    return 1\\n")
>>> main = ModuleUnit(
...     "pkg/main.py",
...     "from util import helper\\n\\ndef run():\\n    return helper()\\n",
... )
>>> graph = build_callgraph([util, main])
>>> [site.callee for site in graph.calls_from("main.run")]
['util.helper']
>>> graph.resolution_rate()
1.0
"""

from __future__ import annotations

import ast
import builtins as _builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint import ModuleUnit

INTERNAL = "internal"
EXTERNAL = "external"
UNRESOLVED = "unresolved"

_BUILTIN_NAMES = frozenset(dir(_builtins))
_MAX_TYPE_DEPTH = 8


def module_name_for(path: str) -> str:
    """Dotted module name for a file path (``src/repro/x.py`` -> ``repro.x``)."""
    p = Path(path)
    parts = list(p.parts[:-1]) + [p.stem]
    if "src" in p.parts:
        rel = parts[p.parts.index("src") + 1 :]
    elif "repro" in p.parts:
        rel = parts[p.parts.index("repro") :]
    else:
        rel = [p.stem]
    if rel and rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel) or p.stem


@dataclass(frozen=True)
class TypeRef:
    """A resolved type: ``kind`` is ``instance``, ``class``, or ``module``."""

    kind: str
    name: str


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    path: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    is_async: bool
    class_qualname: "str | None" = None


@dataclass
class ClassInfo:
    """One class: methods, raw base expressions, and attribute type sources."""

    qualname: str
    module: str
    node: ast.ClassDef
    base_exprs: "list[ast.expr]" = field(default_factory=list)
    methods: "dict[str, FunctionInfo]" = field(default_factory=dict)
    # attr -> ("ann" | "value", expr) — the source an attribute's type
    # is inferred from (annotation wins over a constructor assignment).
    attr_sources: "dict[str, tuple[str, ast.expr]]" = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression, attributed to its enclosing function."""

    caller: str
    node: ast.Call
    path: str
    line: int
    col: int
    attr: str
    kind: str = UNRESOLVED
    callee: "str | None" = None

    @property
    def resolved(self) -> bool:
        return self.kind != UNRESOLVED


class ModuleIndex:
    """Per-module symbol table: imports, functions, classes, var types."""

    def __init__(self, unit: "ModuleUnit") -> None:
        self.unit = unit
        self.path = unit.path
        self.name = module_name_for(unit.path)
        self.imports: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.var_sources: dict[str, tuple[str, ast.expr]] = {}
        self._index()

    def _index(self) -> None:
        for stmt in self.unit.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    root = alias.name.split(".")[0]
                    self.imports[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_base(stmt)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    target = f"{base}.{alias.name}" if base else alias.name
                    self.imports[alias.asname or alias.name] = target
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{self.name}.{stmt.name}",
                    module=self.name,
                    path=self.path,
                    node=stmt,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )
                self.functions[stmt.name] = info
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = self._index_class(stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self.var_sources[target.id] = ("value", stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self.var_sources[stmt.target.id] = ("ann", stmt.annotation)

    def _import_base(self, stmt: ast.ImportFrom) -> str:
        if not stmt.level:
            return stmt.module or ""
        # Relative import: strip `level` trailing components from this
        # module's dotted name (the module itself counts as one).
        parts = self.name.split(".")[: -stmt.level]
        if stmt.module:
            parts.append(stmt.module)
        return ".".join(parts)

    def _index_class(self, node: ast.ClassDef) -> ClassInfo:
        info = ClassInfo(
            qualname=f"{self.name}.{node.name}",
            module=self.name,
            node=node,
            base_exprs=list(node.bases),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = FunctionInfo(
                    qualname=f"{info.qualname}.{stmt.name}",
                    module=self.name,
                    path=self.path,
                    node=stmt,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    class_qualname=info.qualname,
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.attr_sources[stmt.target.id] = ("ann", stmt.annotation)
        for method in info.methods.values():
            self._harvest_attr_sources(info, method.node)
        return info

    def _harvest_attr_sources(
        self, info: ClassInfo, fn: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        """Record ``self.X = ...`` assignments as attribute type sources."""
        param_anns = {
            arg.arg: arg.annotation
            for arg in list(fn.args.args) + list(fn.args.kwonlyargs)
            if arg.annotation is not None
        }
        for node in ast.walk(fn):
            target: "ast.expr | None" = None
            source: "tuple[str, ast.expr] | None" = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, source = node.targets[0], ("value", node.value)
                # `self.x = param` with an annotated parameter: the
                # annotation is a better type source than the Name.
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in param_anns
                ):
                    source = ("ann", param_anns[node.value.id])
            elif isinstance(node, ast.AnnAssign):
                target, source = node.target, ("ann", node.annotation)
            if (
                target is not None
                and source is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                # Annotations win; first value assignment otherwise.
                prior = info.attr_sources.get(target.attr)
                if prior is None or (source[0] == "ann" and prior[0] == "value"):
                    info.attr_sources[target.attr] = source


class _Scope:
    """Resolution context for one function (or a module's top level)."""

    def __init__(
        self,
        graph: "CallGraph",
        mi: ModuleIndex,
        ci: "ClassInfo | None" = None,
        local_sources: "dict[str, tuple[str, ast.expr]] | None" = None,
        local_imports: "dict[str, str] | None" = None,
    ) -> None:
        self.graph = graph
        self.mi = mi
        self.ci = ci
        self.local_sources = local_sources or {}
        self.local_imports = local_imports or {}
        # Names currently being resolved — breaks `x = x.strip()` cycles.
        self._resolving: set[str] = set()

    # -- name bindings -------------------------------------------------

    def import_target(self, name: str) -> "str | None":
        return self.local_imports.get(name) or self.mi.imports.get(name)

    # -- type resolution -----------------------------------------------

    def source_type(
        self, source: "tuple[str, ast.expr]", depth: int
    ) -> "TypeRef | None":
        kind, expr = source
        if kind == "ann":
            return self.annotation_type(expr, depth + 1)
        return self.expr_type(expr, depth + 1)

    def _guarded_source_type(
        self, name: str, source: "tuple[str, ast.expr]", depth: int
    ) -> "TypeRef | None":
        if name in self._resolving:
            return None
        self._resolving.add(name)
        try:
            return self.source_type(source, depth)
        finally:
            self._resolving.discard(name)

    def annotation_type(self, ann: "ast.expr | None", depth: int = 0) -> "TypeRef | None":
        """Type denoted by an annotation (instances, Optional unwrapped)."""
        if ann is None or depth > _MAX_TYPE_DEPTH:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            for side in (ann.left, ann.right):
                if not (isinstance(side, ast.Constant) and side.value is None):
                    return self.annotation_type(side, depth + 1)
            return None
        if isinstance(ann, ast.Subscript):
            base = self.annotation_type(ann.value, depth + 1)
            if base is not None and base.name.rsplit(".", 1)[-1] == "Optional":
                return self.annotation_type(ann.slice, depth + 1)
            # dict[str, X] and friends: the container type is the value.
            return base
        ref = self.expr_type(ann, depth + 1)
        if ref is not None and ref.kind == "class":
            return TypeRef("instance", ref.name)
        return ref

    def expr_type(self, expr: "ast.expr | None", depth: int = 0) -> "TypeRef | None":
        """Best-effort type of an expression; None when unknown."""
        if expr is None or depth > _MAX_TYPE_DEPTH:
            return None
        graph = self.graph
        if isinstance(expr, ast.Name):
            name = expr.id
            if name == "self" and self.ci is not None:
                return TypeRef("instance", self.ci.qualname)
            if name == "cls" and self.ci is not None:
                return TypeRef("class", self.ci.qualname)
            if name in self.local_sources:
                return self._guarded_source_type(name, self.local_sources[name], depth)
            target = self.import_target(name)
            if target is not None:
                return graph.dotted_type(target)
            if name in self.mi.classes:
                return TypeRef("class", self.mi.classes[name].qualname)
            if name in self.mi.var_sources:
                return self._guarded_source_type(name, self.mi.var_sources[name], depth)
            if name in _BUILTIN_NAMES:
                value = getattr(_builtins, name, None)
                if isinstance(value, type):
                    return TypeRef("class", f"builtins.{name}")
            return None
        if isinstance(expr, ast.Constant):
            if expr.value is None:
                return None
            return TypeRef("instance", f"builtins.{type(expr.value).__name__}")
        if isinstance(expr, ast.JoinedStr):
            return TypeRef("instance", "builtins.str")
        if isinstance(expr, (ast.List, ast.ListComp)):
            return TypeRef("instance", "builtins.list")
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return TypeRef("instance", "builtins.dict")
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return TypeRef("instance", "builtins.set")
        if isinstance(expr, ast.Tuple):
            return TypeRef("instance", "builtins.tuple")
        if isinstance(expr, ast.Await):
            return self.expr_type(expr.value, depth + 1)
        if isinstance(expr, ast.Call):
            return self.call_result_type(expr, depth)
        if isinstance(expr, ast.Attribute):
            return self.attribute_type(expr, depth)
        return None

    def call_result_type(self, call: ast.Call, depth: int) -> "TypeRef | None":
        kind, target = self.resolve_call(call, depth + 1)
        if target is None:
            return None
        if kind == INTERNAL:
            ci = self.graph.classes.get(target)
            if ci is not None:
                return TypeRef("instance", ci.qualname)
            fn = self.graph.functions.get(target)
            if fn is not None and fn.node.returns is not None:
                owner = self.graph.scope_for_definition(fn)
                return owner.annotation_type(fn.node.returns, depth + 1)
            return None
        if kind == EXTERNAL:
            terminal = target.rsplit(".", 1)[-1]
            # CamelCase terminal => constructor call (threading.Lock()).
            if terminal[:1].isupper():
                return TypeRef("instance", target)
        return None

    def attribute_type(self, expr: ast.Attribute, depth: int) -> "TypeRef | None":
        base = self.expr_type(expr.value, depth + 1)
        if base is None:
            return None
        graph = self.graph
        if base.kind == "module":
            return graph.dotted_type(f"{base.name}.{expr.attr}")
        if base.name in graph.classes:
            source = graph.find_attr_source(base.name, expr.attr)
            if source is not None:
                owner_qualname, src = source
                owner = graph.class_scope(owner_qualname)
                return owner.source_type(src, depth)
            return None
        # External receiver: attribute types are unknowable statically.
        return None

    # -- call resolution -----------------------------------------------

    def resolve_call(
        self, call: ast.Call, depth: int = 0
    ) -> "tuple[str, str | None]":
        """Classify a call: (internal|external|unresolved, target)."""
        func = call.func
        graph = self.graph
        if depth > _MAX_TYPE_DEPTH:
            return UNRESOLVED, None
        if isinstance(func, ast.Name):
            name = func.id
            if name == "super":
                return EXTERNAL, "builtins.super"
            if name in self.local_sources:
                ref = self._guarded_source_type(name, self.local_sources[name], depth)
                if ref is not None and ref.kind == "class":
                    if ref.name in graph.classes:
                        return INTERNAL, ref.name
                    return EXTERNAL, ref.name
                return UNRESOLVED, None
            if name in self.mi.functions:
                return INTERNAL, self.mi.functions[name].qualname
            if name in self.mi.classes:
                return INTERNAL, self.mi.classes[name].qualname
            target = self.import_target(name)
            if target is not None:
                return graph.dotted_call_target(target)
            if name in self.mi.var_sources:
                ref = self._guarded_source_type(name, self.mi.var_sources[name], depth)
                if ref is not None and ref.kind == "class":
                    if ref.name in graph.classes:
                        return INTERNAL, ref.name
                    return EXTERNAL, ref.name
                return UNRESOLVED, None
            if name in _BUILTIN_NAMES:
                return EXTERNAL, f"builtins.{name}"
            return UNRESOLVED, None
        if isinstance(func, ast.Attribute):
            # super().method(...)
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and self.ci is not None
            ):
                for base_qualname in graph.resolved_bases(self.ci.qualname):
                    method = graph.find_method(base_qualname, func.attr)
                    if method is not None:
                        return INTERNAL, method.qualname
                return UNRESOLVED, None
            base = self.expr_type(func.value, depth + 1)
            if base is None:
                return UNRESOLVED, None
            if base.kind == "module":
                return graph.dotted_call_target(f"{base.name}.{func.attr}")
            if base.name in graph.classes:
                method = graph.find_method(base.name, func.attr)
                if method is not None:
                    return INTERNAL, method.qualname
                return UNRESOLVED, None
            return EXTERNAL, f"{base.name}.{func.attr}"
        return UNRESOLVED, None


class CallGraph:
    """The project call graph: indexed modules plus resolved call sites."""

    def __init__(self, units: "Iterable[ModuleUnit]") -> None:
        self.modules: dict[str, ModuleIndex] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self._scopes: dict[str, _Scope] = {}
        self._method_cache: dict[tuple[str, str], "FunctionInfo | None"] = {}
        self._bases_cache: dict[str, list[str]] = {}
        for unit in units:
            mi = ModuleIndex(unit)
            self.modules[mi.name] = mi
        self.package_roots = {name.split(".")[0] for name in self.modules}
        for mi in self.modules.values():
            self._register_definitions(mi)
        for mi in self.modules.values():
            self._collect_calls(mi)

    # -- construction --------------------------------------------------

    def _register_definitions(self, mi: ModuleIndex) -> None:
        for fn in mi.functions.values():
            self.functions[fn.qualname] = fn
        for ci in mi.classes.values():
            self.classes[ci.qualname] = ci
            for method in ci.methods.values():
                self.functions[method.qualname] = method
        # Nested defs: indexed as callers/callees but not name bindings.
        for owner_qualname, owner_node, class_qualname in self._def_nodes(mi):
            for child in ast.walk(owner_node):
                if child is owner_node or not isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                qualname = f"{owner_qualname}.<locals>.{child.name}"
                if qualname not in self.functions:
                    self.functions[qualname] = FunctionInfo(
                        qualname=qualname,
                        module=mi.name,
                        path=mi.path,
                        node=child,
                        is_async=isinstance(child, ast.AsyncFunctionDef),
                        class_qualname=class_qualname,
                    )

    def _def_nodes(
        self, mi: ModuleIndex
    ) -> "Iterator[tuple[str, ast.AST, str | None]]":
        for fn in mi.functions.values():
            yield fn.qualname, fn.node, None
        for ci in mi.classes.values():
            for method in ci.methods.values():
                yield method.qualname, method.node, ci.qualname

    def _collect_calls(self, mi: ModuleIndex) -> None:
        # Module top level (decorators, constants, __main__ blocks).
        module_caller = f"{mi.name}.<module>"
        top_stmts = [
            stmt
            for stmt in mi.unit.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        scope = _Scope(self, mi)
        self._scopes[module_caller] = scope
        sites = self.calls.setdefault(module_caller, [])
        for stmt in top_stmts:
            for call in self._own_calls(stmt):
                sites.append(self._resolve_site(module_caller, call, mi, scope))
        for fn in sorted(
            (f for f in self.functions.values() if f.module == mi.name),
            key=lambda f: f.qualname,
        ):
            self._collect_function(mi, fn)

    def _collect_function(self, mi: ModuleIndex, fn: FunctionInfo) -> None:
        ci = self.classes.get(fn.class_qualname) if fn.class_qualname else None
        local_sources: dict[str, tuple[str, ast.expr]] = {}
        local_imports: dict[str, str] = {}
        args = fn.node.args
        for arg in list(args.args) + list(args.kwonlyargs) + (
            [args.vararg] if args.vararg else []
        ) + ([args.kwarg] if args.kwarg else []):
            if arg is not None and arg.annotation is not None:
                local_sources[arg.arg] = ("ann", arg.annotation)
        for node in self._own_nodes(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id not in local_sources:
                    local_sources[target.id] = ("value", node.value)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                local_sources[node.target.id] = ("ann", node.annotation)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        local_sources.setdefault(
                            item.optional_vars.id, ("value", item.context_expr)
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    local_imports[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
            elif isinstance(node, ast.ImportFrom):
                base = mi._import_base(node)
                for alias in node.names:
                    if alias.name != "*":
                        target_name = (
                            f"{base}.{alias.name}" if base else alias.name
                        )
                        local_imports[alias.asname or alias.name] = target_name
        scope = _Scope(self, mi, ci, local_sources, local_imports)
        self._scopes[fn.qualname] = scope
        sites = self.calls.setdefault(fn.qualname, [])
        for node in self._own_nodes(fn.node):
            if isinstance(node, ast.Call):
                sites.append(self._resolve_site(fn.qualname, node, mi, scope))

    def _resolve_site(
        self, caller: str, call: ast.Call, mi: ModuleIndex, scope: _Scope
    ) -> CallSite:
        func = call.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
        elif isinstance(func, ast.Name):
            attr = func.id
        else:
            attr = "<expr>"
        kind, target = scope.resolve_call(call)
        return CallSite(
            caller=caller,
            node=call,
            path=mi.path,
            line=call.lineno,
            col=call.col_offset,
            attr=attr,
            kind=kind,
            callee=target,
        )

    @staticmethod
    def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
        """Walk a function body without descending into nested defs."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _own_calls(cls, stmt: ast.AST) -> Iterator[ast.Call]:
        if isinstance(stmt, ast.Call):
            yield stmt
        for node in cls._own_nodes(stmt):
            if isinstance(node, ast.Call):
                yield node

    # -- lookup helpers ------------------------------------------------

    def dotted_type(self, dotted: str) -> "TypeRef | None":
        """Type of a dotted name binding (import target or module attr)."""
        if dotted in self.classes:
            return TypeRef("class", dotted)
        if dotted in self.functions:
            return None  # a function reference, not a typed value
        if dotted in self.modules or any(
            name.startswith(dotted + ".") for name in self.modules
        ):
            return TypeRef("module", dotted)
        root = dotted.split(".")[0]
        if root in self.package_roots:
            return None  # project-rooted but unknown: stay honest
        terminal = dotted.rsplit(".", 1)[-1]
        if terminal[:1].isupper():
            return TypeRef("class", dotted)
        return TypeRef("module", dotted)

    def dotted_call_target(self, dotted: str) -> "tuple[str, str | None]":
        """Resolve calling a dotted name (import binding or module attr)."""
        if dotted in self.functions:
            return INTERNAL, dotted
        if dotted in self.classes:
            return INTERNAL, dotted
        if dotted in self.modules:
            return UNRESOLVED, None  # calling a module object
        root = dotted.split(".")[0]
        if root in self.package_roots:
            # Project-rooted but not found: a re-export or dynamic name.
            return UNRESOLVED, None
        return EXTERNAL, dotted

    def scope_for_definition(self, fn: FunctionInfo) -> _Scope:
        """A scope suitable for resolving annotations in ``fn``'s module."""
        mi = self.modules[fn.module]
        ci = self.classes.get(fn.class_qualname) if fn.class_qualname else None
        return _Scope(self, mi, ci)

    def class_scope(self, class_qualname: str) -> _Scope:
        ci = self.classes[class_qualname]
        return _Scope(self, self.modules[ci.module], ci)

    def resolved_bases(self, class_qualname: str) -> list[str]:
        """Internal base-class qualnames of a class, in MRO-ish order."""
        cached = self._bases_cache.get(class_qualname)
        if cached is not None:
            return cached
        self._bases_cache[class_qualname] = []  # cycle guard
        out: list[str] = []
        ci = self.classes.get(class_qualname)
        if ci is not None:
            scope = self.class_scope(class_qualname)
            for base in ci.base_exprs:
                ref = scope.expr_type(base)
                if ref is not None and ref.kind == "class" and ref.name in self.classes:
                    if ref.name not in out:
                        out.append(ref.name)
                        for upper in self.resolved_bases(ref.name):
                            if upper not in out:
                                out.append(upper)
        self._bases_cache[class_qualname] = out
        return out

    def base_names(self, class_qualname: str) -> list[str]:
        """Raw dotted text of a class's base expressions (internal or not)."""
        ci = self.classes.get(class_qualname)
        if ci is None:
            return []
        names = []
        for base in ci.base_exprs:
            try:
                names.append(ast.unparse(base))
            except ValueError:  # pragma: no cover - malformed AST
                pass
        return names

    def find_method(
        self, class_qualname: str, name: str
    ) -> "FunctionInfo | None":
        key = (class_qualname, name)
        if key in self._method_cache:
            return self._method_cache[key]
        self._method_cache[key] = None  # cycle guard
        ci = self.classes.get(class_qualname)
        found: "FunctionInfo | None" = None
        if ci is not None:
            if name in ci.methods:
                found = ci.methods[name]
            else:
                for base in self.resolved_bases(class_qualname):
                    base_ci = self.classes.get(base)
                    if base_ci is not None and name in base_ci.methods:
                        found = base_ci.methods[name]
                        break
        self._method_cache[key] = found
        return found

    def find_attr_source(
        self, class_qualname: str, attr: str
    ) -> "tuple[str, tuple[str, ast.expr]] | None":
        """(owning class, type source) for an attribute, searching bases."""
        for owner in [class_qualname] + self.resolved_bases(class_qualname):
            ci = self.classes.get(owner)
            if ci is not None and attr in ci.attr_sources:
                return owner, ci.attr_sources[attr]
        return None

    def scope_for(self, caller: str) -> "_Scope | None":
        return self._scopes.get(caller)

    def expr_type(self, caller: str, expr: ast.expr) -> "TypeRef | None":
        """Type of an expression evaluated in ``caller``'s scope."""
        scope = self._scopes.get(caller)
        return scope.expr_type(expr) if scope is not None else None

    # -- queries -------------------------------------------------------

    def calls_from(self, caller: str) -> list[CallSite]:
        return self.calls.get(caller, [])

    def all_sites(self) -> Iterator[CallSite]:
        for sites in self.calls.values():
            yield from sites

    def unresolved_sites(self) -> list[CallSite]:
        return [site for site in self.all_sites() if not site.resolved]

    def resolution_rate(self) -> float:
        """Fraction of call sites resolved (internally or externally)."""
        total = resolved = 0
        for site in self.all_sites():
            total += 1
            resolved += 1 if site.resolved else 0
        return resolved / total if total else 1.0


def build_callgraph(units: "Iterable[ModuleUnit]") -> CallGraph:
    """Index ``units`` and resolve every call site into a :class:`CallGraph`."""
    return CallGraph(units)
