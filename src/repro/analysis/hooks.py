"""Runtime instrumentation hooks — the seam between the production code
and the opt-in checkers in :mod:`repro.analysis`.

The parallel substrate (concurrent containers, the worker pool) calls
these hooks at its shared-state access points, exactly like the
``fault_point`` pattern in :mod:`repro.faults`: one module-global that is
``None`` unless a detector is installed, so the disabled cost is a load
and a compare per access. This module deliberately imports nothing from
the rest of the package — it sits below :mod:`repro.parallel` in the
import graph, which is what lets the containers report accesses without
an import cycle.

Hook points (wired at the call sites):

======================  ==============================================
``container_access``    per mutation of :class:`LinearProbingHashTable`,
                        :class:`ConcurrentVector`, :class:`AtomicCounter`
``kernel_dispatch``     per kernel dispatch in :class:`WorkerPool`
======================  ==============================================
"""

from __future__ import annotations

import threading
from typing import Iterable

# The installed race detector, or None. Installed/removed only through
# set_detector() so enable/disable stays race-free under the lock.
_DETECTOR = None
_DETECTOR_LOCK = threading.Lock()

# Per-thread stack of currently-held TrackedLock instances; the detector
# folds these into the candidate lockset of every access the thread makes.
_HELD = threading.local()


def set_detector(detector) -> None:
    """Install (or, with ``None``, remove) the process-wide race detector."""
    global _DETECTOR
    with _DETECTOR_LOCK:
        _DETECTOR = detector


def get_detector():
    """The installed race detector, or ``None``."""
    return _DETECTOR


def held_locks() -> tuple:
    """TrackedLock instances the calling thread currently holds."""
    return tuple(getattr(_HELD, "stack", ()))


def push_held(lock) -> None:
    """Record that the calling thread acquired a tracked lock."""
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    stack.append(lock)


def pop_held(lock) -> None:
    """Record that the calling thread released a tracked lock."""
    stack = getattr(_HELD, "stack", None)
    if stack and stack[-1] is lock:
        stack.pop()
    elif stack and lock in stack:
        stack.remove(lock)


def container_access(
    obj: object, label: str, write: bool, guards: Iterable[object] = ()
) -> None:
    """Report one shared-state access to the detector, if one is installed.

    ``guards`` names the synchronisation devices the *container itself*
    holds for this access (its internal mutate lock, or the atomic
    counter whose fetch-and-add made the touched cells disjoint); the
    detector unions them with the caller's tracked locks.
    """
    detector = _DETECTOR
    if detector is not None:
        detector.record_access(obj, label, write, guards)


def kernel_dispatch() -> None:
    """Report one worker-pool kernel dispatch to the detector."""
    detector = _DETECTOR
    if detector is not None:
        detector.record_dispatch()
