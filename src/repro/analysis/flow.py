"""Per-function control-flow graphs with exceptional-edge path queries.

The resource-lifecycle conventions this project depends on — a lock
released on every path, an shm lease paired with a release, a WAL
append followed by a catalog publish, a checkpoint temp directory
either committed or removed — are all statements about *paths*, not
about lines. This module builds the CFG those rules query:

* every statement becomes a node; ``normal`` edges follow execution
  order, ``exception`` edges jump from statements that can raise to
  the innermost handler/finally (or to a synthetic ``raise-exit``);
* ``try``/``except``/``else``/``finally`` are modeled with the finally
  body *conflated*: its exit fans out to every continuation the
  protected region could take (fall-through, re-raise, return, break,
  continue). That over-approximates paths — safe for must-pass
  queries, which only ever report a violation when some path avoids
  the settling statement;
* a statement's *own* exception edge is treated as pre-effect by
  :meth:`CFG.find_escape`: if ``lock.acquire()`` itself raises, the
  lock was never held, so that edge is not a leak path;
* a modest reaching-definitions pass answers "which assignment could
  this name hold here" (used to recognise freshly-built WAL names and
  temp-dir derivations).

>>> import ast
>>> src = (
...     "def f(lock):\\n"
...     "    lock.acquire()\\n"
...     "    work()\\n"
...     "    lock.release()\\n"
... )
>>> fn = ast.parse(src).body[0]
>>> cfg = build_cfg(fn)
>>> settles = lambda node: node.stmt is not None and node.source.endswith(
...     "release()")
>>> cfg.find_escape(fn.body[0], settles, include_exceptional=False) is None
True
>>> escape = cfg.find_escape(fn.body[0], settles)  # work() may raise first
>>> escape.kind
'raise-exit'
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

NORMAL = "normal"
EXCEPTION = "exception"


@dataclass
class CFGNode:
    """One CFG node: a statement, or a synthetic entry/exit/join point."""

    idx: int
    kind: str  # "stmt" | "entry" | "exit" | "raise-exit" | "join"
    stmt: "ast.AST | None" = None
    succs: "list[tuple[int, str]]" = field(default_factory=list)

    @property
    def source(self) -> str:
        """Best-effort source text of the statement (for messages)."""
        if self.stmt is None:
            return f"<{self.kind}>"
        try:
            return ast.unparse(self.stmt)
        except Exception:  # pragma: no cover - malformed AST
            return f"<{self.kind}>"

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


@dataclass
class _Ctx:
    """Where each kind of control transfer lands, at this nesting level."""

    next: int
    exc: int
    ret: int
    brk: "int | None" = None
    cont: "int | None" = None


class CFG:
    """A per-function control-flow graph (see module docstring)."""

    def __init__(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.fn = fn
        self.nodes: list[CFGNode] = []
        self.exit = self._new("exit")
        self.raise_exit = self._new("raise-exit")
        self._stmt_nodes: dict[int, int] = {}
        ctx = _Ctx(next=self.exit, exc=self.raise_exit, ret=self.exit)
        first = self._block(fn.body, ctx)
        self.entry = self._new("entry")
        self.nodes[self.entry].succs.append((first, NORMAL))
        self._reaching: "dict[int, dict[str, set[int]]] | None" = None

    # -- construction --------------------------------------------------

    def _new(self, kind: str, stmt: "ast.AST | None" = None) -> int:
        node = CFGNode(idx=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        if stmt is not None:
            self._stmt_nodes[id(stmt)] = node.idx
        return node.idx

    def _block(self, stmts: "list[ast.stmt]", ctx: _Ctx) -> int:
        entry = ctx.next
        for stmt in reversed(stmts):
            entry = self._stmt(
                stmt,
                _Ctx(
                    next=entry,
                    exc=ctx.exc,
                    ret=ctx.ret,
                    brk=ctx.brk,
                    cont=ctx.cont,
                ),
            )
        return entry

    def _stmt(self, stmt: ast.stmt, ctx: _Ctx) -> int:
        if isinstance(stmt, ast.If):
            return self._if(stmt, ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, ctx)
        node = self._new("stmt", stmt)
        succs = self.nodes[node].succs
        if isinstance(stmt, ast.Return):
            succs.append((ctx.ret, NORMAL))
            if stmt.value is not None and _may_raise_expr(stmt.value):
                succs.append((ctx.exc, EXCEPTION))
        elif isinstance(stmt, ast.Raise):
            succs.append((ctx.exc, EXCEPTION))
        elif isinstance(stmt, ast.Break):
            succs.append((ctx.brk if ctx.brk is not None else ctx.next, NORMAL))
        elif isinstance(stmt, ast.Continue):
            succs.append((ctx.cont if ctx.cont is not None else ctx.next, NORMAL))
        elif isinstance(stmt, ast.Assert):
            succs.append((ctx.next, NORMAL))
            succs.append((ctx.exc, EXCEPTION))
        else:
            succs.append((ctx.next, NORMAL))
            if _may_raise_stmt(stmt):
                succs.append((ctx.exc, EXCEPTION))
        return node

    def _if(self, stmt: ast.If, ctx: _Ctx) -> int:
        node = self._new("stmt", stmt)
        body = self._block(stmt.body, ctx)
        orelse = self._block(stmt.orelse, ctx) if stmt.orelse else ctx.next
        succs = self.nodes[node].succs
        succs.append((body, NORMAL))
        if orelse != body:
            succs.append((orelse, NORMAL))
        if _may_raise_expr(stmt.test):
            succs.append((ctx.exc, EXCEPTION))
        return node

    def _loop(self, stmt: "ast.While | ast.For | ast.AsyncFor", ctx: _Ctx) -> int:
        head = self._new("stmt", stmt)
        after = self._block(stmt.orelse, ctx) if stmt.orelse else ctx.next
        body_ctx = _Ctx(next=head, exc=ctx.exc, ret=ctx.ret, brk=ctx.next, cont=head)
        body = self._block(stmt.body, body_ctx)
        succs = self.nodes[head].succs
        succs.append((body, NORMAL))
        succs.append((after, NORMAL))
        head_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        if _may_raise_expr(head_expr):
            succs.append((ctx.exc, EXCEPTION))
        return head

    def _with(self, stmt: "ast.With | ast.AsyncWith", ctx: _Ctx) -> int:
        node = self._new("stmt", stmt)
        body = self._block(stmt.body, ctx)
        succs = self.nodes[node].succs
        succs.append((body, NORMAL))
        if any(_may_raise_expr(item.context_expr) for item in stmt.items):
            succs.append((ctx.exc, EXCEPTION))
        return node

    def _try(self, stmt: ast.Try, ctx: _Ctx) -> int:
        has_finally = bool(stmt.finalbody)
        if has_finally:
            # The finally body runs on every way out of the protected
            # region; its exit fans out to every continuation that
            # region could take (conflated — see module docstring).
            join = self._new("join")
            targets: list[tuple[int, str]] = [(ctx.next, NORMAL), (ctx.exc, EXCEPTION)]
            protected = stmt.body + stmt.orelse + [
                s for handler in stmt.handlers for s in handler.body
            ]
            flags = _transfer_kinds(protected)
            if "return" in flags:
                targets.append((ctx.ret, NORMAL))
            if "break" in flags and ctx.brk is not None:
                targets.append((ctx.brk, NORMAL))
            if "continue" in flags and ctx.cont is not None:
                targets.append((ctx.cont, NORMAL))
            for target in targets:
                if target not in self.nodes[join].succs:
                    self.nodes[join].succs.append(target)
            fin_ctx = _Ctx(next=join, exc=ctx.exc, ret=ctx.ret, brk=ctx.brk, cont=ctx.cont)
            fin_entry = self._block(stmt.finalbody, fin_ctx)
            after, exc_after, ret_after = fin_entry, fin_entry, fin_entry
            brk_after = fin_entry if ctx.brk is not None else None
            cont_after = fin_entry if ctx.cont is not None else None
        else:
            after, exc_after, ret_after = ctx.next, ctx.exc, ctx.ret
            brk_after, cont_after = ctx.brk, ctx.cont

        handler_entries: list[int] = []
        for handler in stmt.handlers:
            h_ctx = _Ctx(next=after, exc=exc_after, ret=ret_after,
                         brk=brk_after, cont=cont_after)
            h_body = self._block(handler.body, h_ctx)
            h_node = self._new("stmt", handler)
            self.nodes[h_node].succs.append((h_body, NORMAL))
            handler_entries.append(h_node)

        if handler_entries:
            dispatch = self._new("join")
            for entry in handler_entries:
                self.nodes[dispatch].succs.append((entry, EXCEPTION))
            # An exception matching no handler propagates outward —
            # unless some handler is a catch-all (bare ``except`` /
            # ``except BaseException`` / ``except Exception``).
            if not any(_is_catch_all(h) for h in stmt.handlers):
                self.nodes[dispatch].succs.append((exc_after, EXCEPTION))
            body_exc = dispatch
        else:
            body_exc = exc_after

        else_entry = (
            self._block(
                stmt.orelse,
                _Ctx(next=after, exc=exc_after, ret=ret_after,
                     brk=brk_after, cont=cont_after),
            )
            if stmt.orelse
            else after
        )
        body_ctx = _Ctx(next=else_entry, exc=body_exc, ret=ret_after,
                        brk=brk_after, cont=cont_after)
        return self._block(stmt.body, body_ctx)

    # -- queries -------------------------------------------------------

    def node_for(self, stmt: ast.AST) -> "CFGNode | None":
        idx = self._stmt_nodes.get(id(stmt))
        return self.nodes[idx] if idx is not None else None

    def find_escape(
        self,
        start: ast.AST,
        settles: "Callable[[CFGNode], bool]",
        include_exceptional: bool = True,
    ) -> "CFGNode | None":
        """First exit reachable from ``start`` without passing a settler.

        Returns None when every path from ``start`` hits a node for
        which ``settles`` is true before leaving the function. The
        start statement's own exception edge is pre-effect and never
        followed; with ``include_exceptional=False``, no exception
        edge is.
        """
        node = self.node_for(start)
        if node is None:
            return None
        seen: set[int] = set()
        work: list[int] = []
        for succ, edge in node.succs:
            if edge == EXCEPTION:
                continue  # pre-effect: the acquisition itself failed
            work.append(succ)
        while work:
            idx = work.pop()
            if idx in seen:
                continue
            seen.add(idx)
            current = self.nodes[idx]
            if settles(current):
                continue
            if current.kind == "exit":
                return current
            if current.kind == "raise-exit":
                if include_exceptional:
                    return current
                continue
            for succ, edge in current.succs:
                if edge == EXCEPTION and not include_exceptional:
                    continue
                work.append(succ)
        return None

    def reaching_definitions(self) -> "dict[int, dict[str, set[int]]]":
        """IN-set per node: name -> CFG node indices that may define it."""
        if self._reaching is not None:
            return self._reaching
        gen: dict[int, set[str]] = {}
        for node in self.nodes:
            if node.stmt is not None:
                gen[node.idx] = set(assigned_names(node.stmt))
        preds: dict[int, list[int]] = {node.idx: [] for node in self.nodes}
        for node in self.nodes:
            for succ, _ in node.succs:
                preds[succ].append(node.idx)
        ins: dict[int, dict[str, set[int]]] = {n.idx: {} for n in self.nodes}
        outs: dict[int, dict[str, set[int]]] = {n.idx: {} for n in self.nodes}
        changed = True
        while changed:
            changed = False
            for node in self.nodes:
                new_in: dict[str, set[int]] = {}
                for pred in preds[node.idx]:
                    for name, sites in outs[pred].items():
                        new_in.setdefault(name, set()).update(sites)
                new_out = {name: set(sites) for name, sites in new_in.items()}
                for name in gen.get(node.idx, ()):
                    new_out[name] = {node.idx}
                if new_in != ins[node.idx] or new_out != outs[node.idx]:
                    ins[node.idx], outs[node.idx] = new_in, new_out
                    changed = True
        self._reaching = ins
        return ins

    def definitions_at(self, stmt: ast.AST, name: str) -> "list[ast.AST]":
        """The assignment statements that may define ``name`` at ``stmt``."""
        node = self.node_for(stmt)
        if node is None:
            return []
        ins = self.reaching_definitions()
        return [
            self.nodes[idx].stmt
            for idx in sorted(ins.get(node.idx, {}).get(name, ()))
            if self.nodes[idx].stmt is not None
        ]

    def statements(self) -> Iterator[ast.AST]:
        for node in self.nodes:
            if node.stmt is not None and node.kind == "stmt":
                yield node.stmt


def assigned_names(stmt: ast.AST) -> Iterator[str]:
    """Names a statement (re)binds, including loop/with targets."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets.extend(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets.append(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets.append(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets.extend(
            item.optional_vars
            for item in stmt.items
            if item.optional_vars is not None
        )
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                yield node.id
    for node in ast.walk(stmt) if not isinstance(stmt, (ast.For, ast.AsyncFor)) else []:
        if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            yield node.target.id


def _may_raise_expr(expr: "ast.expr | None") -> bool:
    if expr is None:
        return False
    return any(
        isinstance(node, (ast.Call, ast.Await, ast.Subscript, ast.Attribute))
        for node in ast.walk(expr)
    )


def _may_raise_stmt(stmt: ast.stmt) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, (ast.Call, ast.Await, ast.Raise, ast.Assert)):
            return True
    return False


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    """Whether ``handler`` matches every exception that reaches it.

    ``except Exception`` is treated as catch-all even though
    ``KeyboardInterrupt``/``SystemExit`` bypass it — for path-sensitive
    cleanup rules the interesting escapes are ordinary errors.
    """
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in {"BaseException", "Exception"}
    if isinstance(handler.type, ast.Attribute):
        return handler.type.attr in {"BaseException", "Exception"}
    if isinstance(handler.type, ast.Tuple):
        return any(
            (isinstance(e, ast.Name) and e.id in {"BaseException", "Exception"})
            or (isinstance(e, ast.Attribute) and e.attr in {"BaseException", "Exception"})
            for e in handler.type.elts
        )
    return False


def _transfer_kinds(stmts: "Iterable[ast.stmt]") -> set[str]:
    """Which control transfers (`return`/`break`/`continue`) appear."""
    kinds: set[str] = set()

    def visit(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(child, ast.Return):
                kinds.add("return")
            elif isinstance(child, ast.Break) and not in_loop:
                kinds.add("break")
            elif isinstance(child, ast.Continue) and not in_loop:
                kinds.add("continue")
            visit(
                child,
                in_loop or isinstance(child, (ast.While, ast.For, ast.AsyncFor)),
            )

    for stmt in stmts:
        if isinstance(stmt, ast.Return):
            kinds.add("return")
        elif isinstance(stmt, ast.Break):
            kinds.add("break")
        elif isinstance(stmt, ast.Continue):
            kinds.add("continue")
        visit(stmt, isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)))
    return kinds


def build_cfg(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """Build the control-flow graph of one function definition."""
    return CFG(fn)
