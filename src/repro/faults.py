"""Deterministic, seeded fault injection for resilience testing.

An interactive engine has to keep behaving when a loader hits a bad
row, a worker thread dies mid-kernel, or a container insert fails. This
module provides the controlled way to *make* those things happen: named
fault sites are compiled into the hot paths (IO loaders, the worker
pool's kernel dispatch, the concurrent containers, the conversion
algorithms), and stay inert — a single module-global ``None`` check —
unless a test arms them::

    with inject_faults({"parallel.kernel": 0.3}, seed=7) as plan:
        ...  # ~30% of threaded kernel dispatches raise InjectedFaultError
    assert plan.triggered["parallel.kernel"] >= 1

Faults are drawn from per-site seeded RNG streams, so a given
``(sites, seed)`` pair produces the same trigger sequence per site on
every run regardless of which thread reaches the site — the property
that makes fault-injection tests reproducible.

Known sites (wired at the call points):

====================  ====================================================
``io.tsv.parse_row``  per data row inside :func:`load_table_tsv`
``io.npz.load``       before reading a binary table snapshot
``parallel.kernel``   per threaded kernel dispatch in :class:`WorkerPool`
``hash.insert``       per mutation of :class:`LinearProbingHashTable`
``vector.append``     per :class:`ConcurrentVector` append
``convert.sort_first`` entry of the sort-first graph build
``join.materialize``  entry of the equi-join materialisation
``snapshot.build``    per CSR conversion in the snapshot cache
====================  ====================================================

Durability sites (:mod:`repro.recovery`):

==============================  ============================================
``recovery.wal.append``         before a WAL frame is written (append fails
                                cleanly, nothing reaches the file)
``recovery.wal.torn_write``     writes only a prefix of the frame before
                                raising — a crash mid-``write(2)``
``recovery.checkpoint.write``   per object serialised into a checkpoint
                                (abort removes the temp dir, commits
                                nothing)
``recovery.checkpoint.bit_flip`` flips one byte of the just-written
                                artifact *silently* (disk rot: the
                                checkpoint still commits, verification
                                must catch it at recovery time)
==============================  ============================================

Multi-core sites (:mod:`repro.parallel.shm` / :mod:`repro.parallel.procpool`
— the process-pool kernel backend):

=============================  ==============================================
``parallel.shm.export``        before a snapshot's arrays are written into
                               shared-memory segments (a fired fault aborts
                               the export cleanly; the dispatcher degrades
                               that call to the thread backend)
``parallel.proc.dispatch``     per process-backend dispatch, parent side,
                               before any partition is submitted (fires as a
                               transient error; the dispatcher re-runs the
                               call on threads)
``parallel.proc.worker_crash`` per process-backend dispatch — but instead of
                               raising, a firing SIGKILLs one live worker
                               process so tests exercise the real
                               broken-pool recovery path (rebuild + thread
                               fallback + eventual degradation)
=============================  ==============================================

Service sites (:mod:`repro.service` — the multi-tenant session server):

=====================  =====================================================
``service.accept``     per request accepted off a client connection, before
                       it is queued (a fired fault is reported back to the
                       client as a retryable typed error)
``service.dispatch``   per request dispatch into a tenant's engine session
                       (fires inside the dispatcher's retry loop, so the
                       shared :class:`~repro.parallel.resilience.RetryPolicy`
                       absorbs transient firings)
``service.evict``      per session eviction-to-checkpoint (a fired fault
                       aborts the eviction cleanly; the session stays
                       resident and is retried on a later sweep)
=====================  =====================================================

Incremental sites (:mod:`repro.incremental` — delta snapshots and
dynamic algorithms):

===========================  ================================================
``incremental.delta.apply``  per delta-refresh attempt in the snapshot
                             cache, before the overlay is merged (a fired
                             fault abandons the delta and falls back to a
                             recorded full rebuild — never a wrong answer)
``incremental.compact``      when an overlay run exceeds the compaction
                             threshold, before the compacting rebuild is
                             counted (a firing still full-rebuilds; it is
                             recorded as a fallback instead of a compaction)
``incremental.wal.tail``     per WAL record examined by ``Ringo.TailWal``
                             (a firing stops the tail with the last applied
                             cursor in the summary, so the caller retries
                             from where it left off)
===========================  ================================================

Replication sites (:mod:`repro.replication` — WAL shipping to a hot
standby):

=========================  ==================================================
``replication.ship``       per batch on the primary side, before frames are
                           sent to the replica (a firing is transient: the
                           shipper's :class:`RetryPolicy` backs off and
                           resends from the shipped-LSN cursor — the
                           backpressure path)
``replication.apply``      per batch on the replica side, before any frame
                           is applied (reported to the shipper as a
                           retryable envelope; the resend is idempotent
                           because apply skips LSNs at or below the cursor)
``replication.promote``    at the start of a promotion (a firing aborts the
                           promotion cleanly: no epoch is bumped, nothing is
                           fenced, and the replica keeps following)
=========================  ==================================================
"""

from __future__ import annotations

import random
import threading
import zlib
from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.exceptions import InjectedFaultError, RingoError

KNOWN_SITES = (
    "io.tsv.parse_row",
    "io.npz.load",
    "parallel.kernel",
    "hash.insert",
    "vector.append",
    "convert.sort_first",
    "join.materialize",
    "snapshot.build",
    "parallel.shm.export",
    "parallel.proc.dispatch",
    "parallel.proc.worker_crash",
    "recovery.wal.append",
    "recovery.wal.torn_write",
    "recovery.checkpoint.write",
    "recovery.checkpoint.bit_flip",
    "service.accept",
    "service.dispatch",
    "service.evict",
    "incremental.delta.apply",
    "incremental.compact",
    "incremental.wal.tail",
    "replication.ship",
    "replication.apply",
    "replication.promote",
)


class FaultSite:
    """One armed site: a firing rate, an error factory, and counters."""

    __slots__ = ("name", "rate", "error", "max_triggers", "draws", "triggers", "_rng")

    def __init__(
        self,
        name: str,
        rate: float,
        seed: int,
        error: "type[BaseException] | None" = None,
        max_triggers: "int | None" = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise RingoError(f"fault rate for {name!r} must be in [0, 1], got {rate}")
        self.name = name
        self.rate = rate
        self.error = error
        self.max_triggers = max_triggers
        self.draws = 0
        self.triggers = 0
        # Per-site stream: the draw sequence a site sees depends only on
        # (seed, name), never on how other sites interleave with it.
        # crc32 rather than hash() so streams survive PYTHONHASHSEED.
        self._rng = random.Random(seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8")))

    def draw(self) -> bool:
        """Advance the stream one step; True means "fire now"."""
        self.draws += 1
        if self.max_triggers is not None and self.triggers >= self.max_triggers:
            return False
        if self.rate >= 1.0:
            fire = True
        elif self.rate <= 0.0:
            fire = False
        else:
            fire = self._rng.random() < self.rate
        if fire:
            self.triggers += 1
        return fire


class FaultPlan:
    """The set of armed sites plus trigger accounting, thread-safe."""

    def __init__(self, sites: Mapping[str, object], seed: int = 0) -> None:
        self._lock = threading.Lock()
        self._sites: dict[str, FaultSite] = {}
        for name, spec in sites.items():
            if isinstance(spec, (int, float)):
                site = FaultSite(name, float(spec), seed)
            elif isinstance(spec, Mapping):
                site = FaultSite(
                    name,
                    float(spec.get("rate", 1.0)),
                    seed,
                    error=spec.get("error"),
                    max_triggers=spec.get("max_triggers"),
                )
            else:
                raise RingoError(
                    f"fault spec for {name!r} must be a rate or a mapping, "
                    f"got {type(spec).__name__}"
                )
            self._sites[name] = site

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._sites)

    @property
    def triggered(self) -> dict[str, int]:
        """Trigger counts per armed site (zero entries included)."""
        with self._lock:
            return {name: site.triggers for name, site in self._sites.items()}

    @property
    def drawn(self) -> dict[str, int]:
        """How many times each armed site was reached."""
        with self._lock:
            return {name: site.draws for name, site in self._sites.items()}

    def check(self, site_name: str) -> None:
        site = self._sites.get(site_name)
        if site is None:
            return
        with self._lock:
            fire = site.draw()
            trigger = site.triggers
        if fire:
            if site.error is not None:
                raise site.error(f"injected fault at site {site_name!r}")
            raise InjectedFaultError(site_name, trigger)


# The one module global the production path reads. ``None`` means no
# faults armed anywhere; fault_point() then costs a load and a compare.
_ACTIVE: FaultPlan | None = None
_ACTIVATION_LOCK = threading.Lock()


def active_plan() -> FaultPlan | None:
    """The currently armed plan, or ``None``.

    Hot loops can hoist this once instead of calling :func:`fault_point`
    per iteration: ``plan = active_plan()`` then
    ``if plan is not None: plan.check(site)`` inside the loop.
    """
    return _ACTIVE


def fault_point(site: str) -> None:
    """Raise the site's configured error if a plan is armed and fires."""
    plan = _ACTIVE
    if plan is not None:
        plan.check(site)


@contextmanager
def inject_faults(
    sites: Mapping[str, object], seed: int = 0
) -> Iterator[FaultPlan]:
    """Arm fault sites for the duration of the ``with`` block.

    ``sites`` maps site names to either a firing rate in ``[0, 1]`` or a
    mapping with keys ``rate`` (default 1.0), ``error`` (an exception
    class; default :class:`InjectedFaultError`, which is retryable), and
    ``max_triggers`` (stop firing after N triggers; default unlimited).

    Plans nest: the inner plan fully replaces the outer one and the
    outer is restored on exit.

    >>> from repro.faults import inject_faults, fault_point
    >>> with inject_faults({"demo.site": 1.0}) as plan:
    ...     try:
    ...         fault_point("demo.site")
    ...     except Exception as err:
    ...         print(type(err).__name__)
    InjectedFaultError
    >>> plan.triggered["demo.site"]
    1
    >>> fault_point("demo.site")  # disarmed again: no-op
    """
    global _ACTIVE
    plan = FaultPlan(sites, seed=seed)
    with _ACTIVATION_LOCK:
        previous = _ACTIVE
        _ACTIVE = plan
    try:
        yield plan
    finally:
        with _ACTIVATION_LOCK:
            _ACTIVE = previous
