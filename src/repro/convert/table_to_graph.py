"""Table → graph conversion (paper §2.4) — the "sort-first" algorithm.

"The algorithm builds a graph representation from a table by first making
copies of the source and destination columns, then sorting the column
copies, computing the number of neighbors for each node, and then copying
the neighbor vectors to the graph hash table."

The three phases map here as:

1. **sort** — lexsort copies of the (src, dst) columns twice: grouped by
   source (yielding out-adjacency runs) and grouped by destination
   (yielding in-adjacency runs). numpy's sort is the stand-in for the
   paper's parallel sort.
2. **count** — run boundaries via ``searchsorted`` give each node's
   neighbour count, so "there is no need to estimate the size of the
   hash table or neighbor vectors in advance".
3. **copy** — per-node adjacency vectors are sliced out of the sorted
   arrays and installed into the node hash table. Partitions of the node
   range are independent, so a worker pool copies them "with no
   contention among the threads".

Two alternative builders are kept as the baselines the paper says it
experimented against (benchmark A1): per-edge dynamic insertion, and
hash-accumulation with a final per-node sort.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConversionError
from repro.faults import fault_point
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph
from repro.obs.spans import trace
from repro.parallel.executor import WorkerPool, serial_pool
from repro.tables.schema import ColumnType
from repro.tables.table import Table


def _as_edge_arrays(sources, targets) -> tuple[np.ndarray, np.ndarray]:
    sources = np.ascontiguousarray(sources, dtype=np.int64)
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    if sources.ndim != 1 or targets.ndim != 1:
        raise ConversionError("edge arrays must be one-dimensional")
    if len(sources) != len(targets):
        raise ConversionError(
            f"edge arrays disagree on length: {len(sources)} vs {len(targets)}"
        )
    if len(sources) and (sources.min() < 0 or targets.min() < 0):
        raise ConversionError("node ids must be non-negative")
    return sources, targets


def _dedup_sorted_pairs(primary: np.ndarray, secondary: np.ndarray) -> np.ndarray:
    """Keep-mask removing consecutive duplicate (primary, secondary) pairs.

    Arrays must already be sorted by (primary, secondary).
    """
    if len(primary) == 0:
        return np.empty(0, dtype=bool)
    keep = np.empty(len(primary), dtype=bool)
    keep[0] = True
    np.logical_or(
        primary[1:] != primary[:-1], secondary[1:] != secondary[:-1], out=keep[1:]
    )
    return keep


def sort_first_directed(
    sources: np.ndarray,
    targets: np.ndarray,
    pool: WorkerPool | None = None,
) -> DirectedGraph:
    """Build a :class:`DirectedGraph` with the paper's sort-first algorithm."""
    sources, targets = _as_edge_arrays(sources, targets)
    fault_point("convert.sort_first")
    pool = pool if pool is not None else serial_pool()
    graph = DirectedGraph()
    if len(sources) == 0:
        return graph

    with trace("convert.sort_first", rows=len(sources), directed=True) as span:
        # Phase 1: sort copies of the columns (by src then dst →
        # out-adjacency runs; by dst then src → in-adjacency runs).
        # lexsort keys read (secondary, primary).
        with trace("convert.sort"):
            out_order = np.lexsort((targets, sources))
            out_src = sources[out_order]
            out_dst = targets[out_order]
            out_keep = _dedup_sorted_pairs(out_src, out_dst)
            out_src = out_src[out_keep]
            out_dst = out_dst[out_keep]

            in_order = np.lexsort((sources, targets))
            in_src = sources[in_order]
            in_dst = targets[in_order]
            in_keep = _dedup_sorted_pairs(in_dst, in_src)
            in_src = in_src[in_keep]
            in_dst = in_dst[in_keep]

        # Phase 2: neighbour counts from run boundaries — exact sizes
        # known up front, no growth estimation needed.
        with trace("convert.count"):
            node_ids = np.unique(np.concatenate([out_src, out_dst]))
            out_lo = np.searchsorted(out_src, node_ids, side="left")
            out_hi = np.searchsorted(out_src, node_ids, side="right")
            in_lo = np.searchsorted(in_dst, node_ids, side="left")
            in_hi = np.searchsorted(in_dst, node_ids, side="right")

        # Phase 3: copy neighbour vectors into the node hash table. Node
        # ranges are disjoint, so partitions write without contention.
        node_list = node_ids.tolist()

        def copy_partition(lo: int, hi: int) -> None:
            for index in range(lo, hi):
                graph._set_adjacency(
                    node_list[index],
                    in_src[in_lo[index]:in_hi[index]],
                    out_dst[out_lo[index]:out_hi[index]],
                )

        with trace("convert.copy", nodes=len(node_ids)):
            pool.map_range(len(node_ids), copy_partition)
        graph._set_edge_count(len(out_src))
        span.set_tag("nodes", len(node_ids))
        span.set_tag("edges", len(out_src))
    return graph


def sort_first_undirected(
    sources: np.ndarray,
    targets: np.ndarray,
    pool: WorkerPool | None = None,
) -> UndirectedGraph:
    """Sort-first build of an :class:`UndirectedGraph` (edges symmetrised)."""
    sources, targets = _as_edge_arrays(sources, targets)
    fault_point("convert.sort_first")
    pool = pool if pool is not None else serial_pool()
    graph = UndirectedGraph()
    if len(sources) == 0:
        return graph
    with trace("convert.sort_first", rows=len(sources), directed=False) as span:
        with trace("convert.sort"):
            loops = sources == targets
            sym_src = np.concatenate([sources, targets[~loops]])
            sym_dst = np.concatenate([targets, sources[~loops]])
            order = np.lexsort((sym_dst, sym_src))
            sym_src = sym_src[order]
            sym_dst = sym_dst[order]
            keep = _dedup_sorted_pairs(sym_src, sym_dst)
            sym_src = sym_src[keep]
            sym_dst = sym_dst[keep]

        with trace("convert.count"):
            node_ids = np.unique(sym_src)
            lo = np.searchsorted(sym_src, node_ids, side="left")
            hi = np.searchsorted(sym_src, node_ids, side="right")
        node_list = node_ids.tolist()

        def copy_partition(start: int, stop: int) -> None:
            for index in range(start, stop):
                graph._set_adjacency(node_list[index], sym_dst[lo[index]:hi[index]])

        with trace("convert.copy", nodes=len(node_ids)):
            pool.map_range(len(node_ids), copy_partition)
        # Each non-loop edge appears twice in the symmetrised pairs.
        loop_count = int(np.sum(sym_src == sym_dst))
        graph._set_edge_count((len(sym_src) - loop_count) // 2 + loop_count)
        span.set_tag("nodes", len(node_ids))
        span.set_tag("edges", graph.num_edges)
    return graph


def graph_from_edge_arrays(
    sources: np.ndarray,
    targets: np.ndarray,
    directed: bool = True,
    pool: WorkerPool | None = None,
) -> "DirectedGraph | UndirectedGraph":
    """Canonical bulk construction entry point (sort-first)."""
    if directed:
        return sort_first_directed(sources, targets, pool=pool)
    return sort_first_undirected(sources, targets, pool=pool)


def to_graph(
    table: Table,
    src_col: str,
    dst_col: str,
    directed: bool = True,
    pool: WorkerPool | None = None,
) -> "DirectedGraph | UndirectedGraph":
    """The paper's ``ringo.ToGraph(T, SrcCol, DstCol)``.

    Nodes are the distinct values of the two columns; each row is an
    edge. Key columns must be integer-typed (string keys should first be
    mapped to ids with :func:`repro.convert.ids.encode_id_columns` or a
    group-by).

    >>> table = Table.from_columns({"a": [1, 2], "b": [2, 3]})
    >>> to_graph(table, "a", "b").num_edges
    2
    """
    for name in (src_col, dst_col):
        if table.schema.require(name) is not ColumnType.INT:
            raise ConversionError(
                f"ToGraph requires integer node-id columns; {name!r} is "
                f"{table.schema[name].value}"
            )
    return graph_from_edge_arrays(
        table.column(src_col), table.column(dst_col), directed=directed, pool=pool
    )


def chunked_build(
    sources: np.ndarray,
    targets: np.ndarray,
    directed: bool = True,
    chunk_edges: int = 1 << 16,
) -> "DirectedGraph | UndirectedGraph":
    """Memory-frugal graph build: dynamic inserts over fixed-size chunks.

    The budget-degraded alternative to sort-first: instead of
    materialising whole-column sorted copies (transient memory
    proportional to the edge count), edges stream in ``chunk_edges``
    slices through dynamic ``add_edge`` calls. Slower, but its transient
    footprint is bounded by one chunk — the graceful-degradation path
    :class:`repro.memory.budget.MemoryBudget` selects.
    """
    sources, targets = _as_edge_arrays(sources, targets)
    if chunk_edges <= 0:
        raise ConversionError(f"chunk_edges must be positive, got {chunk_edges}")
    graph = DirectedGraph() if directed else UndirectedGraph()
    with trace(
        "convert.chunked_build",
        rows=len(sources),
        directed=directed,
        chunk_edges=chunk_edges,
    ):
        for start in range(0, len(sources), chunk_edges):
            stop = start + chunk_edges
            for src, dst in zip(
                sources[start:stop].tolist(), targets[start:stop].tolist()
            ):
                graph.add_edge(src, dst)
    return graph


# ----------------------------------------------------------------------
# Baseline builders (§2.4: "We experimented with several approaches")
# ----------------------------------------------------------------------


def per_edge_build(
    sources: np.ndarray, targets: np.ndarray, directed: bool = True
) -> "DirectedGraph | UndirectedGraph":
    """Baseline: one dynamic ``add_edge`` call per row.

    This is the natural dynamic-graph path; every insert pays a binary
    search plus an O(degree) vector shift, which is what the sort-first
    algorithm avoids. Benchmark A1 measures the gap.
    """
    sources, targets = _as_edge_arrays(sources, targets)
    graph = DirectedGraph() if directed else UndirectedGraph()
    for src, dst in zip(sources.tolist(), targets.tolist()):
        graph.add_edge(src, dst)
    return graph


def hash_accumulate_build(
    sources: np.ndarray, targets: np.ndarray, directed: bool = True
) -> "DirectedGraph | UndirectedGraph":
    """Baseline: accumulate neighbour lists in a hash table, sort at the end.

    Avoids per-insert shifting but pays Python-level appends and a final
    per-node sort+dedup; in the C++ original this is the approach needing
    thread-safe hash-table growth, which sort-first sidesteps.
    """
    sources, targets = _as_edge_arrays(sources, targets)
    out_lists: dict[int, list[int]] = {}
    in_lists: dict[int, list[int]] = {}
    for src, dst in zip(sources.tolist(), targets.tolist()):
        out_lists.setdefault(src, []).append(dst)
        in_lists.setdefault(dst, []).append(src)
        out_lists.setdefault(dst, [])
        in_lists.setdefault(src, [])
    if directed:
        graph = DirectedGraph()
        edge_count = 0
        for node in out_lists:
            out_nbrs = np.unique(np.asarray(out_lists[node], dtype=np.int64))
            in_nbrs = np.unique(np.asarray(in_lists[node], dtype=np.int64))
            graph._set_adjacency(node, in_nbrs, out_nbrs)
            edge_count += len(out_nbrs)
        graph._set_edge_count(edge_count)
        return graph
    undirected = UndirectedGraph()
    half_edges = 0
    loop_count = 0
    for node in out_lists:
        merged = np.unique(
            np.concatenate(
                [
                    np.asarray(out_lists[node], dtype=np.int64),
                    np.asarray(in_lists[node], dtype=np.int64),
                ]
            )
        )
        undirected._set_adjacency(node, merged)
        half_edges += len(merged)
        position = int(np.searchsorted(merged, node))
        if position < len(merged) and merged[position] == node:
            loop_count += 1
    undirected._set_edge_count((half_edges - loop_count) // 2 + loop_count)
    return undirected
