"""Attribute flow between tables and networks (paper Figure 2).

"Results of graph operations are added back to tables" — and table
columns also flow onto graphs as node attributes. This module provides
both directions for :class:`~repro.graphs.network.Network`:

* :func:`network_from_tables` — build an attributed network from an
  edge table plus an optional node-attribute table,
* :func:`attach_node_attribute` — push one table column onto nodes,
* :func:`node_attribute_table` — pull node attributes back into a table.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConversionError
from repro.graphs.network import Network
from repro.tables.schema import ColumnType, Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table


def network_from_tables(
    edge_table: Table,
    src_col: str,
    dst_col: str,
    node_table: Table | None = None,
    node_key: str | None = None,
    node_attrs: Sequence[str] | None = None,
) -> Network:
    """Build a :class:`Network` from an edge table (+ node attributes).

    Edge endpoints come from two integer columns, exactly like
    :func:`repro.convert.table_to_graph.to_graph`. When ``node_table``
    is given, each listed attribute column is attached to the node named
    by ``node_key``; node ids in the node table that the edges never
    mention are added as isolated nodes.

    >>> edges = Table.from_columns({"a": [1], "b": [2]})
    >>> net = network_from_tables(edges, "a", "b")
    >>> net.num_edges
    1
    """
    for name in (src_col, dst_col):
        if edge_table.schema.require(name) is not ColumnType.INT:
            raise ConversionError(f"endpoint column {name!r} must be integer")
    network = Network()
    sources = edge_table.column(src_col)
    targets = edge_table.column(dst_col)
    for src, dst in zip(sources.tolist(), targets.tolist()):
        network.add_edge(src, dst)
    if node_table is not None:
        if node_key is None:
            raise ConversionError("node_key is required with a node table")
        if node_table.schema.require(node_key) is not ColumnType.INT:
            raise ConversionError(f"node key column {node_key!r} must be integer")
        for node in node_table.column(node_key).tolist():
            network.add_node(node)
        attrs = list(node_attrs) if node_attrs is not None else [
            name for name in node_table.schema.names if name != node_key
        ]
        for attr in attrs:
            attach_node_attribute(network, node_table, node_key, attr)
    return network


def weighted_network_from_edges(
    table: Table,
    src_col: str,
    dst_col: str,
    weight_col: str | None = None,
    weight_attr: str = "weight",
) -> Network:
    """Collapse an event table into a weighted interaction network.

    Duplicate ``(src, dst)`` rows become one edge whose ``weight_attr``
    holds the row count — or the sum of ``weight_col`` when given. The
    natural build for "how often did u interact with v" graphs, ready
    for :func:`repro.algorithms.pagerank.pagerank_weighted`.

    >>> t = Table.from_columns({"a": [1, 1, 2], "b": [2, 2, 3]})
    >>> net = weighted_network_from_edges(t, "a", "b")
    >>> net.num_edges, net.edge_attr(1, 2, "weight")
    (2, 2.0)
    """
    for name in (src_col, dst_col):
        if table.schema.require(name) is not ColumnType.INT:
            raise ConversionError(f"endpoint column {name!r} must be integer")
    sources = table.column(src_col)
    targets = table.column(dst_col)
    if weight_col is not None:
        if table.schema.require(weight_col) is ColumnType.STRING:
            raise ConversionError(f"weight column {weight_col!r} must be numeric")
        weights = table.column(weight_col).astype(np.float64)
    else:
        weights = np.ones(table.num_rows, dtype=np.float64)
    if len(sources) == 0:
        return Network()
    pairs = np.stack([sources, targets], axis=1)
    unique_pairs, inverse = np.unique(pairs, axis=0, return_inverse=True)
    totals = np.bincount(inverse.reshape(-1), weights=weights)
    network = Network()
    for (src, dst), total in zip(unique_pairs.tolist(), totals.tolist()):
        network.add_edge(src, dst)
        network.set_edge_attr(src, dst, weight_attr, float(total))
    return network


def attach_node_attribute(
    network: Network,
    table: Table,
    key_col: str,
    value_col: str,
    attr_name: str | None = None,
) -> int:
    """Push one table column onto node attributes; returns nodes touched.

    Rows whose key is not a node in the network are skipped (the table
    may describe a superset of the graph).
    """
    if table.schema.require(key_col) is not ColumnType.INT:
        raise ConversionError(f"key column {key_col!r} must be integer")
    attr_name = attr_name if attr_name is not None else value_col
    keys = table.column(key_col).tolist()
    values = table.values(value_col)
    if isinstance(values, np.ndarray):
        values = values.tolist()
    touched = 0
    for node, value in zip(keys, values):
        if network.has_node(node):
            network.set_node_attr(node, attr_name, value)
            touched += 1
    return touched


def node_attribute_table(
    network: Network,
    attrs: Sequence[str] | None = None,
    node_col: str = "NodeId",
    default: float = 0.0,
    pool: StringPool | None = None,
) -> Table:
    """Pull node attributes back into a table (one row per node).

    Attribute columns are typed by inspecting their values: all-int →
    int, any-string → string, otherwise float with ``default`` filling
    unset numeric attributes.
    """
    names = list(attrs) if attrs is not None else list(network.node_attr_names())
    nodes = sorted(network.nodes())
    schema_cols: list[tuple[str, ColumnType]] = [(node_col, ColumnType.INT)]
    columns: dict[str, object] = {node_col: np.asarray(nodes, dtype=np.int64)}
    for attr in names:
        if attr == node_col:
            raise ConversionError(f"attribute name {attr!r} clashes with the node column")
        values = [network.node_attr(node, attr) for node in nodes]
        if any(isinstance(v, str) for v in values):
            rendered = ["" if v is None else str(v) for v in values]
            schema_cols.append((attr, ColumnType.STRING))
            columns[attr] = rendered
        elif all(isinstance(v, (int, np.integer)) for v in values if v is not None) and any(
            v is not None for v in values
        ):
            filled = [int(default) if v is None else int(v) for v in values]
            schema_cols.append((attr, ColumnType.INT))
            columns[attr] = np.asarray(filled, dtype=np.int64)
        else:
            filled = [default if v is None else float(v) for v in values]
            schema_cols.append((attr, ColumnType.FLOAT))
            columns[attr] = np.asarray(filled, dtype=np.float64)
    return Table.from_columns(columns, schema=Schema(schema_cols), pool=pool)
