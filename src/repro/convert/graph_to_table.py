"""Graph → table conversion (paper §2.4).

"This conversion can be easily performed in parallel by partitioning the
graph's nodes or edges among worker threads, pre-allocating the output
table, and assigning a corresponding partition in the output table to
each thread." The writers below do exactly that: per-node output offsets
come from a degree prefix sum, the output arrays are allocated once, and
each worker fills a disjoint slice.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph
from repro.obs.spans import trace
from repro.parallel.executor import WorkerPool, serial_pool
from repro.tables.schema import ColumnType, Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table

SRC_COLUMN = "SrcId"
DST_COLUMN = "DstId"
NODE_COLUMN = "NodeId"
IN_DEGREE_COLUMN = "InDeg"
OUT_DEGREE_COLUMN = "OutDeg"
DEGREE_COLUMN = "Deg"


def to_edge_table(
    graph: "DirectedGraph | UndirectedGraph",
    pool: WorkerPool | None = None,
    string_pool: StringPool | None = None,
) -> Table:
    """Edge table (``SrcId``, ``DstId``) from a graph.

    Undirected edges appear once each (as ``u <= v`` pairs).

    >>> g = DirectedGraph()
    >>> _ = g.add_edge(1, 2)
    >>> to_edge_table(g).column("SrcId").tolist()
    [1]
    """
    pool = pool if pool is not None else serial_pool()
    nodes = list(graph.nodes())
    if graph.is_directed:
        degrees = np.fromiter(
            (graph.out_degree(node) for node in nodes), dtype=np.int64, count=len(nodes)
        )
    else:
        # Each node emits its neighbours >= itself, so every undirected
        # edge (and each self-loop) appears exactly once.
        degrees = np.fromiter(
            (
                len(graph.neighbors(node))
                - int(np.searchsorted(graph.neighbors(node), node))
                for node in nodes
            ),
            dtype=np.int64,
            count=len(nodes),
        )
    offsets = np.concatenate(([0], np.cumsum(degrees)))
    total = int(offsets[-1])
    sources = np.empty(total, dtype=np.int64)
    targets = np.empty(total, dtype=np.int64)

    if graph.is_directed:

        def fill_partition(lo: int, hi: int) -> None:
            for index in range(lo, hi):
                node = nodes[index]
                start, stop = offsets[index], offsets[index + 1]
                sources[start:stop] = node
                targets[start:stop] = graph.out_neighbors(node)

    else:

        def fill_partition(lo: int, hi: int) -> None:
            for index in range(lo, hi):
                node = nodes[index]
                start, stop = offsets[index], offsets[index + 1]
                nbrs = graph.neighbors(node)
                upper = nbrs[int(np.searchsorted(nbrs, node)):]
                sources[start:stop] = node
                targets[start:stop] = upper

    with trace("convert.to_edge_table", nodes=len(nodes), edges=total):
        pool.map_range(len(nodes), fill_partition)
    schema = Schema([(SRC_COLUMN, ColumnType.INT), (DST_COLUMN, ColumnType.INT)])
    return Table(
        schema, {SRC_COLUMN: sources, DST_COLUMN: targets}, pool=string_pool
    )


def to_node_table(
    graph: "DirectedGraph | UndirectedGraph",
    include_degrees: bool = False,
    pool: WorkerPool | None = None,
    string_pool: StringPool | None = None,
) -> Table:
    """Node table (``NodeId`` and optionally degree columns) from a graph."""
    pool = pool if pool is not None else serial_pool()
    with trace("convert.to_node_table", degrees=include_degrees) as span:
        return _to_node_table(graph, include_degrees, pool, string_pool, span)


def _to_node_table(
    graph: "DirectedGraph | UndirectedGraph",
    include_degrees: bool,
    pool: WorkerPool,
    string_pool: "StringPool | None",
    span,
) -> Table:
    nodes = list(graph.nodes())
    span.set_tag("nodes", len(nodes))
    node_array = np.asarray(nodes, dtype=np.int64)
    columns: dict[str, np.ndarray] = {NODE_COLUMN: node_array}
    schema_cols = [(NODE_COLUMN, ColumnType.INT)]
    if include_degrees:
        if graph.is_directed:
            in_deg = np.empty(len(nodes), dtype=np.int64)
            out_deg = np.empty(len(nodes), dtype=np.int64)

            def fill_partition(lo: int, hi: int) -> None:
                for index in range(lo, hi):
                    in_deg[index] = graph.in_degree(nodes[index])
                    out_deg[index] = graph.out_degree(nodes[index])

            pool.map_range(len(nodes), fill_partition)
            schema_cols.append((IN_DEGREE_COLUMN, ColumnType.INT))
            schema_cols.append((OUT_DEGREE_COLUMN, ColumnType.INT))
            columns[IN_DEGREE_COLUMN] = in_deg
            columns[OUT_DEGREE_COLUMN] = out_deg
        else:
            deg = np.empty(len(nodes), dtype=np.int64)

            def fill_partition(lo: int, hi: int) -> None:
                for index in range(lo, hi):
                    deg[index] = graph.degree(nodes[index])

            pool.map_range(len(nodes), fill_partition)
            schema_cols.append((DEGREE_COLUMN, ColumnType.INT))
            columns[DEGREE_COLUMN] = deg
    return Table(Schema(schema_cols), columns, pool=string_pool)
