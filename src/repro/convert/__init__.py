"""Conversions between tables and graphs (paper §2.4).

"Fast conversions between graph and table objects are essential for data
exploration tasks involving graphs."
"""

from repro.convert.attributes import (
    attach_node_attribute,
    network_from_tables,
    node_attribute_table,
    weighted_network_from_edges,
)
from repro.convert.cooccurrence import co_occurrence_graph, co_occurrence_pairs
from repro.convert.graph_to_table import to_edge_table, to_node_table
from repro.convert.hashmap_table import table_from_hashmap
from repro.convert.table_to_graph import (
    chunked_build,
    graph_from_edge_arrays,
    hash_accumulate_build,
    per_edge_build,
    sort_first_directed,
    sort_first_undirected,
    to_graph,
)

__all__ = [
    "attach_node_attribute",
    "chunked_build",
    "co_occurrence_graph",
    "co_occurrence_pairs",
    "graph_from_edge_arrays",
    "network_from_tables",
    "node_attribute_table",
    "hash_accumulate_build",
    "per_edge_build",
    "sort_first_directed",
    "sort_first_undirected",
    "table_from_hashmap",
    "to_edge_table",
    "to_graph",
    "to_node_table",
    "weighted_network_from_edges",
]
