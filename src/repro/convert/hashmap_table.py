"""Result → table conversion (paper §4.1, ``ringo.TableFromHashMap``).

Graph algorithms return per-node result maps; the demo's last line —
``S = ringo.TableFromHashMap(PR, 'User', 'Scr')`` — turns the PageRank
map into a two-column table so the workflow loop (Figure 2) can continue
with relational operations.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.exceptions import ConversionError
from repro.tables.schema import ColumnType, Schema
from repro.tables.strings import StringPool
from repro.tables.table import Table


def table_from_hashmap(
    mapping: Mapping[int, "int | float"],
    key_col: str,
    value_col: str,
    pool: StringPool | None = None,
) -> Table:
    """Build a two-column table from a ``{node_id: value}`` mapping.

    Values must be uniformly int or float; the value column type follows.

    >>> table = table_from_hashmap({1: 0.5, 2: 0.25}, "User", "Scr")
    >>> table.schema.names
    ('User', 'Scr')
    >>> table.num_rows
    2
    """
    if key_col == value_col:
        raise ConversionError("key and value columns must have distinct names")
    keys = np.fromiter(mapping.keys(), dtype=np.int64, count=len(mapping))
    values = list(mapping.values())
    if all(isinstance(value, (int, np.integer)) for value in values):
        value_type = ColumnType.INT
        value_array = np.asarray(values, dtype=np.int64)
    else:
        value_type = ColumnType.FLOAT
        value_array = np.asarray(values, dtype=np.float64)
    schema = Schema([(key_col, ColumnType.INT), (value_col, value_type)])
    return Table(schema, {key_col: keys, value_col: value_array}, pool=pool)
