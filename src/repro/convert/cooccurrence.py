"""Co-occurrence graph construction (paper §4.1's alternative build).

"One way to build a graph is to connect users who answered the same
question." Given a table with a *group* column (question id) and an
*actor* column (user id), :func:`co_occurrence_graph` links every pair
of actors sharing a group — the classic one-mode projection of the
bipartite actor/group relation.

The pair expansion is vectorised: rows are sorted by group, and for
each group of size g the g·(g−1)/2 pairs are emitted with the same
cumsum machinery the join uses — no Python-level pair loops.
"""

from __future__ import annotations

import numpy as np

from repro.convert.table_to_graph import graph_from_edge_arrays
from repro.exceptions import ConversionError
from repro.graphs.undirected import UndirectedGraph
from repro.parallel.executor import WorkerPool
from repro.tables.schema import ColumnType
from repro.tables.table import Table


def co_occurrence_pairs(
    groups: np.ndarray, actors: np.ndarray, max_group_size: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """All unordered actor pairs sharing a group value.

    An actor appearing twice in one group does not pair with itself,
    but duplicate pairs across groups are kept (callers deduplicate via
    graph construction). Groups larger than ``max_group_size`` are
    skipped when given — the standard guard against quadratic blowup on
    a mega-group.
    """
    if len(groups) != len(actors):
        raise ConversionError("group and actor arrays must have equal length")
    if len(groups) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.lexsort((actors, groups))
    sorted_groups = groups[order]
    sorted_actors = actors[order]
    boundaries = np.flatnonzero(sorted_groups[1:] != sorted_groups[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [len(sorted_groups)]))
    left_parts: list[np.ndarray] = []
    right_parts: list[np.ndarray] = []
    for start, stop in zip(starts.tolist(), stops.tolist()):
        size = stop - start
        if size < 2:
            continue
        if max_group_size is not None and size > max_group_size:
            continue
        members = np.unique(sorted_actors[start:stop])
        count = len(members)
        if count < 2:
            continue
        # Upper-triangle index pairs for this group.
        grid_i, grid_j = np.triu_indices(count, k=1)
        left_parts.append(members[grid_i])
        right_parts.append(members[grid_j])
    if not left_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(left_parts), np.concatenate(right_parts)


def co_occurrence_graph(
    table: Table,
    group_col: str,
    actor_col: str,
    max_group_size: int | None = None,
    pool: WorkerPool | None = None,
) -> UndirectedGraph:
    """Undirected graph linking actors that share a group.

    >>> table = Table.from_columns(
    ...     {"question": [10, 10, 11], "user": [1, 2, 3]})
    >>> graph = co_occurrence_graph(table, "question", "user")
    >>> graph.has_edge(1, 2), graph.has_node(3)
    (True, False)
    """
    for name in (group_col, actor_col):
        if table.schema.require(name) is not ColumnType.INT:
            raise ConversionError(
                f"co-occurrence requires integer columns; {name!r} is "
                f"{table.schema[name].value}"
            )
    left, right = co_occurrence_pairs(
        table.column(group_col), table.column(actor_col), max_group_size
    )
    return graph_from_edge_arrays(left, right, directed=False, pool=pool)
