"""Wire protocol for the session service: line-delimited JSON.

One request per line, one response per line, correlated by ``id`` (the
server may answer out of order when a connection pipelines requests).

Request::

    {"id": 7, "tenant": "alice", "op": "GetPageRank",
     "args": {"graph": {"$ref": "graph-1"}}, "deadline_ms": 500}

Response::

    {"id": 7, "ok": true, "result": {"1": 0.31, ...}}
    {"id": 7, "ok": false,
     "error": {"type": "DeadlineExceededError", "message": "...",
               "retryable": false}}

``op`` is either a *service op* (lowercase: ``ping``, ``open``,
``health``, ``objects``, ``digest``) or an *engine op* — any CamelCase
method of :class:`~repro.core.engine.Ringo` (``LoadTableTSV``,
``Select``, ``ToGraph``, ``GetPageRank``, ...), so the analytics API the
paper defines is served unchanged. Arguments reference catalog objects
as ``{"$ref": "<catalog-name>"}``; results that are tables or graphs
come back as a ``$ref`` envelope carrying their catalog name and shape,
everything else is encoded to plain JSON.

The service is an analytics front-end for trusted tenants sharing one
big-memory machine, not a security boundary: path-taking ops
(``LoadTableTSV``...) read the server's filesystem.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.engine import Ringo
from repro.exceptions import RingoError, ServiceError, TransientError
from repro.graphs.directed import DirectedGraph
from repro.graphs.undirected import UndirectedGraph
from repro.tables.table import Table

REF_KEY = "$ref"

#: Service-level ops handled by the server itself, not a tenant engine.
#: ``digest_at`` and ``checkpoint`` run inside the tenant's serialized
#: dispatcher (a consistent WAL watermark); ``replicate`` /
#: ``replicate_seed`` / ``promote`` are the replication verbs a replica
#: service answers (see :mod:`repro.replication`).
SERVICE_OPS = (
    "ping",
    "open",
    "health",
    "objects",
    "digest",
    "digest_at",
    "checkpoint",
    "replicate",
    "replicate_seed",
    "promote",
)

#: Engine lifecycle/introspection surface a remote tenant must not drive
#: directly — the service owns checkpointing, recovery, and shutdown.
_DENIED_ENGINE_OPS = frozenset({"Objects", "GetObject"})


def allowed_engine_ops() -> frozenset:
    """The CamelCase :class:`Ringo` methods the service dispatches.

    Computed from the class so the served surface tracks the engine
    automatically: every public CamelCase method except the catalog
    accessors (those are service ops with JSON-shaped responses).
    """
    ops = set()
    for name in dir(Ringo):
        if name.startswith("_") or name in _DENIED_ENGINE_OPS:
            continue
        if not name[0].isupper():
            continue  # lifecycle/introspection: health, checkpoint, ...
        if callable(getattr(Ringo, name)):
            ops.add(name)
    return frozenset(ops)


_ALLOWED_ENGINE_OPS = allowed_engine_ops()


class ProtocolError(ServiceError):
    """A request line could not be parsed or names an unknown op."""


@dataclass
class Request:
    """One parsed client request, plus the server-side bookkeeping.

    ``deadline`` is absolute (event-loop clock), computed at accept time
    from the client's relative ``deadline_ms`` budget; ``future``
    resolves to the response envelope (set exactly once, whether the
    request completed, expired, or was shed).
    """

    id: object
    tenant: str
    op: str
    args: dict = field(default_factory=dict)
    deadline: float = 0.0
    accepted_at: float = 0.0
    future: object = None


def parse_request(raw: object) -> "tuple[object, str, str, dict, float | None]":
    """Validate one decoded request object.

    Returns ``(id, tenant, op, args, deadline_s-or-None)``; raises
    :class:`ProtocolError` on anything malformed. Deadlines stay
    relative here — the accept loop anchors them to its clock.
    """
    if not isinstance(raw, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(raw).__name__}")
    request_id = raw.get("id")
    tenant = raw.get("tenant")
    op = raw.get("op")
    args = raw.get("args", {})
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("request needs a non-empty string 'tenant'")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request needs a non-empty string 'op'")
    if op not in SERVICE_OPS and op not in _ALLOWED_ENGINE_OPS:
        raise ProtocolError(f"unknown op {op!r}")
    if not isinstance(args, dict):
        raise ProtocolError("request 'args' must be a JSON object")
    deadline_ms = raw.get("deadline_ms")
    if deadline_ms is None:
        return request_id, tenant, op, args, None
    if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
        raise ProtocolError("'deadline_ms' must be a positive number")
    return request_id, tenant, op, args, float(deadline_ms) / 1000.0


def decode_args(session: Ringo, args: Mapping) -> dict:
    """Resolve ``{"$ref": name}`` placeholders against a session catalog."""

    def walk(value):
        if isinstance(value, dict):
            if set(value) == {REF_KEY}:
                return session.GetObject(value[REF_KEY])
            return {key: walk(item) for key, item in value.items()}
        if isinstance(value, list):
            return [walk(item) for item in value]
        return value

    return {key: walk(value) for key, value in dict(args).items()}


def encode_result(session: Ringo, result: object) -> object:
    """Encode one engine result into JSON-safe content.

    Catalogued tables/graphs become ``$ref`` envelopes; anonymous ones
    (a session without durability does not publish every derivation)
    are summarised without a ref. Mappings get string keys, sets become
    sorted lists, numpy scalars/arrays become Python numbers/lists.
    """
    if isinstance(result, Table):
        envelope: dict = {
            "kind": "table",
            "rows": result.num_rows,
            "columns": [name for name, _ in result.schema],
        }
        name = _catalog_name(session, result)
        if name is not None:
            envelope[REF_KEY] = name
        return envelope
    if isinstance(result, (DirectedGraph, UndirectedGraph)):
        envelope = {
            "kind": "graph",
            "nodes": result.num_nodes,
            "edges": result.num_edges,
            "directed": result.is_directed,
        }
        name = _catalog_name(session, result)
        if name is not None:
            envelope[REF_KEY] = name
        return envelope
    return _plain(result)


def _catalog_name(session: Ringo, obj: object) -> "str | None":
    with session._catalog_lock:
        name = session._object_names.get(id(obj))
        if name is not None and session._catalog.get(name) is obj:
            return name
    return None


def _plain(value: object) -> object:
    """Recursively reduce a value to JSON-native types."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        return [_plain(item) for item in value.tolist()]
    if isinstance(value, Mapping):
        return {str(_plain(key)): _plain(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_plain(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return repr(value)


def ok_response(request_id: object, result: object) -> dict:
    """A success envelope."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: object, error: BaseException) -> dict:
    """A typed failure envelope.

    ``retryable`` tells the client whether re-sending the same request
    can succeed (transient faults: yes; budget denials, bad ops: no) —
    the client-side :func:`~repro.parallel.resilience.run_with_retry`
    keys off it.
    """
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "retryable": isinstance(error, TransientError),
        },
    }


class RemoteError(RingoError):
    """A typed error envelope reconstructed on the client side."""

    def __init__(self, error_type: str, message: str):
        self.error_type = error_type
        super().__init__(f"{error_type}: {message}")


class TransientRemoteError(RemoteError, TransientError):
    """A retryable remote failure — a client retry policy re-attempts it."""


def raise_remote_error(envelope: Mapping) -> None:
    """Raise the typed client-side exception for a failure envelope."""
    error = envelope.get("error") or {}
    error_type = str(error.get("type", "ServiceError"))
    message = str(error.get("message", ""))
    if error.get("retryable"):
        raise TransientRemoteError(error_type, message)
    raise RemoteError(error_type, message)


def dump_line(message: Mapping) -> bytes:
    """Serialise one protocol message as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def load_line(line: bytes) -> object:
    """Parse one protocol line; raises :class:`ProtocolError` on bad JSON."""
    try:
        return json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"request line is not valid JSON: {error}")
