"""Service-level admission control: a global resident-memory ledger.

Two layers keep a shared big-memory machine out of OOM territory:

1. Each tenant session runs under its own
   :class:`~repro.memory.budget.MemoryBudget`
   (``Ringo(memory_budget=)``), so one oversized join inside a session
   fails with a typed error instead of an allocation storm.
2. This ledger caps the *sum* of resident sessions' budgets. A session
   only becomes resident (opened or revived from its checkpoint) after
   charging its budget here; eviction-to-checkpoint releases the charge.
   When a charge does not fit, the session manager first evicts idle
   sessions — only if that still is not enough does the tenant get a
   typed :class:`~repro.exceptions.AdmissionRejected`.

The ledger is plain accounting over *declared* budgets (the same
estimate-first philosophy as :mod:`repro.memory.budget`): it bounds the
worst case every resident session is entitled to, which is the quantity
an admission controller can actually reason about up front.
"""

from __future__ import annotations

import threading

from repro.exceptions import AdmissionContention, AdmissionRejected, RingoError


class MemoryLedger:
    """Byte accounting for resident sessions against a global capacity.

    >>> ledger = MemoryLedger(1000)
    >>> ledger.charge("alice", 600)
    >>> ledger.would_fit(600)
    False
    >>> ledger.release("alice")
    600
    >>> ledger.free_bytes
    1000
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise RingoError(
                f"ledger capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self._lock = threading.Lock()
        self._charges: dict[str, int] = {}
        self._admitted = 0
        self._rejections = 0
        self._peak_bytes = 0

    @property
    def charged_bytes(self) -> int:
        """Total bytes currently charged by resident sessions."""
        with self._lock:
            return sum(self._charges.values())

    @property
    def free_bytes(self) -> int:
        """Capacity not yet charged."""
        with self._lock:
            return self.capacity_bytes - sum(self._charges.values())

    def would_fit(self, requested: int) -> bool:
        """Whether a charge of ``requested`` bytes fits right now."""
        with self._lock:
            return sum(self._charges.values()) + requested <= self.capacity_bytes

    def charge(self, tenant: str, requested: int) -> None:
        """Charge a tenant's budget; raises on overflow.

        Two distinct denials (callers evict idle sessions before either):
        a budget larger than the whole ledger raises the permanent
        :class:`AdmissionRejected`; one that merely does not fit *right
        now* raises the retryable :class:`AdmissionContention` — busy
        sessions go idle and free their charges.
        """
        if requested <= 0:
            raise RingoError(f"charge must be positive, got {requested}")
        with self._lock:
            if tenant in self._charges:
                raise RingoError(f"tenant {tenant!r} is already charged")
            used = sum(self._charges.values())
            if used + requested > self.capacity_bytes:
                self._rejections += 1
                available = self.capacity_bytes - used
                if requested > self.capacity_bytes:
                    raise AdmissionRejected(tenant, requested, available)
                raise AdmissionContention(tenant, requested, available)
            self._charges[tenant] = requested
            self._admitted += 1
            self._peak_bytes = max(self._peak_bytes, used + requested)

    def release(self, tenant: str) -> int:
        """Release a tenant's charge (eviction/close); returns the bytes."""
        with self._lock:
            return self._charges.pop(tenant, 0)

    def snapshot(self) -> dict:
        """Accounting for the service health report."""
        with self._lock:
            used = sum(self._charges.values())
            return {
                "capacity_bytes": self.capacity_bytes,
                "charged_bytes": used,
                "free_bytes": self.capacity_bytes - used,
                "resident": len(self._charges),
                "admitted": self._admitted,
                "rejections": self._rejections,
                "peak_bytes": self._peak_bytes,
            }
