"""Tenant session lifecycle: dispatch, eviction-to-checkpoint, revival.

Every tenant owns one durable :class:`~repro.core.engine.Ringo` session
spooled under ``<spool_dir>/<tenant>/`` (its WAL and checkpoints — the
:mod:`repro.recovery` layout). The manager moves each session through a
simple lifecycle::

          open (charge ledger)            evict (release ledger)
    cold ------------------------> resident ----------------------> evicted
                                      ^                                |
                                      +--- revive (charge ledger) <---+

*Resident* means the engine object is in memory and charged against the
service's :class:`~repro.service.admission.MemoryLedger`; *evicted*
means the session exists only as its checkpoint + WAL on disk. Because a
checkpointed session is a swappable session, resident sessions can be a
small fraction of total sessions: idle ones are swept out on a timer,
and admission pressure evicts idle sessions on demand before rejecting a
tenant.

Execution discipline: one dispatcher task per tenant pulls requests in
FIFO order and runs at most one engine call at a time (a Ringo session
is not safe for concurrent mutation); engine calls run on a shared
thread-pool executor so the event loop — the part every tenant shares —
never blocks on tenant work. Faults at the ``service.dispatch`` site and
engine-raised :class:`~repro.exceptions.TransientError` are absorbed by
the shared :class:`~repro.parallel.resilience.RetryPolicy`; faults at
``service.evict`` abort the eviction cleanly and leave the session
resident.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

from repro import obs
from repro.core.engine import Ringo
from repro.exceptions import (
    AdmissionContention,
    AdmissionRejected,
    DeadlineExceededError,
    RequestRejected,
    ServiceError,
)
from repro.faults import fault_point
from repro.obs.metrics import Histogram
from repro.parallel.resilience import run_with_retry
from repro.recovery.checkpoint import durability_state
from repro.recovery.digest import catalog_digest
from repro.service.admission import MemoryLedger
from repro.service.protocol import (
    Request,
    decode_args,
    encode_result,
    error_response,
    ok_response,
)
from repro.service.queueing import DeadlineQueue


class TenantStats:
    """Per-tenant request counters (thread-safe: retries are recorded
    from executor threads while the rest updates on the event loop)."""

    _FIELDS = (
        "requests", "completed", "failed", "shed", "expired_queued",
        "expired_running", "retries", "admission_waits", "opens",
        "revivals", "evictions", "eviction_failures",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for field in self._FIELDS:
            setattr(self, field, 0)

    def record(self, field: str, amount: int = 1) -> None:
        """Increment one counter by ``amount``."""
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def record_retry(self, attempt: int, error: BaseException) -> None:
        """``on_retry`` hook shape shared with :class:`PoolStats`."""
        self.record("retries")

    def snapshot(self) -> dict:
        """A plain-dict copy for health reporting."""
        with self._lock:
            return {field: getattr(self, field) for field in self._FIELDS}


class TenantSession:
    """One tenant's session record: queue, engine (maybe), and stats."""

    def __init__(self, manager: "SessionManager", tenant: str, budget_bytes: int):
        self.manager = manager
        self.tenant = tenant
        self.budget_bytes = budget_bytes
        self.directory = Path(manager.spool_dir) / tenant
        self.queue = DeadlineQueue(manager.max_queue_depth)
        self.stats = TenantStats()
        self.ringo: "Ringo | None" = None
        self.dirty = False
        self.last_active = manager.loop.time()
        self.in_flight: "Request | None" = None
        self._orphan: "asyncio.Future | None" = None
        # Serialises residency changes (open/revive/evict) against the
        # dispatcher's execute step; held only across one state change
        # or one request, never while idle.
        self.state_lock = asyncio.Lock()
        self.task: "asyncio.Task | None" = None

    # -- residency -----------------------------------------------------

    @property
    def resident(self) -> bool:
        """Whether the engine is in memory (and charged to the ledger)."""
        return self.ringo is not None

    @property
    def busy(self) -> bool:
        """Whether the session has queued or running work."""
        return self.in_flight is not None or len(self.queue) > 0

    def _open_engine(self) -> Ringo:
        """Open or revive the durable engine (runs on an executor thread)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        state = durability_state(self.directory)
        if state["wal_exists"] or state["checkpoints"]:
            session = Ringo.recover(
                self.directory,
                workers=self.manager.session_workers,
                memory_budget=self.budget_bytes,
            )
            self.stats.record("revivals")
        else:
            session = Ringo(
                workers=self.manager.session_workers,
                memory_budget=self.budget_bytes,
                durability=self.directory,
            )
            self.stats.record("opens")
        return session

    def _evict_engine(self) -> None:
        """Checkpoint (if dirty) and close the engine (executor thread).

        The ``service.evict`` fault site fires before any work: a fired
        fault aborts the eviction with the session untouched. A fault
        inside ``checkpoint()`` (``recovery.checkpoint.write``) likewise
        commits nothing — the partial temp directory is removed before
        the exception reaches the caller.
        """
        fault_point("service.evict")
        assert self.ringo is not None
        if self.dirty:
            self.ringo.checkpoint()
        self.ringo.close()

    def _wal_lsn(self) -> int:
        durability = self.ringo._durability if self.ringo is not None else None
        return 0 if durability is None else durability.wal.last_lsn

    def _wal_epoch(self) -> int:
        durability = self.ringo._durability if self.ringo is not None else None
        return 0 if durability is None else durability.wal.epoch

    # -- the dispatcher ------------------------------------------------

    async def run(self) -> None:
        """The per-tenant dispatcher: FIFO, deadline-checked, retried."""
        loop = self.manager.loop
        while True:
            request = await self.queue.pop()
            self._publish_queue_depth()
            if request.deadline <= loop.time():
                self.stats.record("expired_queued")
                self._respond_error(
                    request,
                    DeadlineExceededError(
                        request.id, request.deadline - request.accepted_at, "queued"
                    ),
                )
                continue
            if self._orphan is not None:
                # A timed-out engine call may still be running; session
                # access is exclusive, so let it finish (discarding its
                # outcome) before touching the session again.
                try:
                    await self._orphan
                # Its outcome was already reported as a deadline error;
                # rethrowing would double-fault.  # ringo-lint: disable=R011
                except Exception:
                    pass
                self._orphan = None
                if request.deadline <= loop.time():
                    self.stats.record("expired_queued")
                    self._respond_error(
                        request,
                        DeadlineExceededError(
                            request.id, request.deadline - request.accepted_at,
                            "queued",
                        ),
                    )
                    continue
            async with self.state_lock:
                self.in_flight = request
                try:
                    if self.ringo is None:
                        await self._become_resident(request)
                    result = await self._execute(request)
                except asyncio.CancelledError:
                    self._respond_error(
                        request, RequestRejected(request.id, "draining")
                    )
                    raise
                except BaseException as error:
                    self.stats.record("failed")
                    self._respond_error(request, error)
                else:
                    self.stats.record("completed")
                    self._respond_ok(request, result)
                finally:
                    self.in_flight = None
                    self.last_active = loop.time()

    async def _become_resident(self, request: Request) -> None:
        """Acquire residency, waiting out admission *contention*.

        A full-but-not-oversubscribed ledger clears on its own (busy
        sessions go idle and get evicted), so the request waits in line
        with jittered backoff up to its deadline instead of bouncing a
        transient condition back to the client. The permanent
        :class:`AdmissionRejected` (budget exceeds total capacity) still
        fails immediately.
        """
        loop = self.manager.loop
        policy = self.manager.retry_policy
        attempt = 0
        while True:
            try:
                await self.manager._make_resident(self)
                return
            except AdmissionContention:
                attempt += 1
                if policy is None:
                    delay = 0.05
                else:
                    delay = policy.delay(min(attempt, policy.max_attempts))
                if loop.time() + delay >= request.deadline:
                    raise
                self.stats.record("admission_waits")
                await asyncio.sleep(delay)

    async def _execute(self, request: Request) -> object:
        """Run one engine call on the executor under the deadline."""
        loop = self.manager.loop
        remaining = request.deadline - loop.time()
        lsn_before = self._wal_lsn()
        future = loop.run_in_executor(
            self.manager.executor, self._call_engine, request
        )
        try:
            result = await asyncio.wait_for(asyncio.shield(future), timeout=remaining)
        except (asyncio.TimeoutError, TimeoutError):
            self._orphan = future
            self._orphan.add_done_callback(self._note_orphan_done)
            self.stats.record("expired_running")
            raise DeadlineExceededError(
                request.id, request.deadline - request.accepted_at, "running"
            ) from None
        self.dirty = self.dirty or self._wal_lsn() != lsn_before
        return result

    def _note_orphan_done(self, future: "asyncio.Future") -> None:
        # An orphaned call may have committed WAL records after its
        # deadline response went out; assume it did so the next drain
        # or eviction checkpoints this session.
        future.exception()  # consume, never unhandled
        if self.ringo is not None:
            self.dirty = True

    def _call_engine(self, request: Request) -> object:
        """One request against the engine (runs on an executor thread).

        Engine operations publish atomically (no partial state escapes a
        failed call), so re-running a whole request after a transient
        failure is safe; the shared retry policy does exactly that.
        """
        session = self.ringo
        assert session is not None

        def attempt() -> object:
            fault_point("service.dispatch")
            if request.op == "objects":
                return session.Objects()
            if request.op == "digest":
                return catalog_digest(session)
            if request.op == "digest_at":
                # The dispatcher serializes engine calls, so nothing can
                # commit between reading the watermark and digesting —
                # this is the consistent (LSN, digest) pair the
                # replication shipper exchanges with the replica.
                return {
                    "lsn": self._wal_lsn(),
                    "epoch": self._wal_epoch(),
                    "digest": catalog_digest(session),
                }
            if request.op == "checkpoint":
                return session.checkpoint()
            kwargs = decode_args(session, request.args)
            return getattr(session, request.op)(**kwargs)

        policy = self.manager.retry_policy
        with obs.trace("service.dispatch", tenant=self.tenant, op=request.op):
            if policy is None:
                result = attempt()
            else:
                result = run_with_retry(
                    attempt,
                    policy,
                    on_retry=self.stats.record_retry,
                    metric_prefix="service",
                )
        return encode_result(session, result)

    # -- responses -----------------------------------------------------

    def _respond_ok(self, request: Request, result: object) -> None:
        self.manager._finish(self, request, ok_response(request.id, result))

    def _respond_error(self, request: Request, error: BaseException) -> None:
        if isinstance(error, asyncio.CancelledError):  # pragma: no cover
            error = RequestRejected(request.id, "draining")
        self.manager._finish(self, request, error_response(request.id, error))

    def _publish_queue_depth(self) -> None:
        if obs.enabled():
            obs.registry().gauge(
                f"service.tenant.{self.tenant}.queue_depth"
            ).set(len(self.queue))


class SessionManager:
    """All tenants, the memory ledger, and the eviction machinery."""

    def __init__(
        self,
        *,
        loop: asyncio.AbstractEventLoop,
        executor,
        spool_dir,
        global_budget_bytes: int,
        default_tenant_budget_bytes: int,
        max_queue_depth: int,
        idle_evict_s: float,
        session_workers: int = 1,
        retry_policy=None,
    ) -> None:
        self.loop = loop
        self.executor = executor
        self.spool_dir = Path(spool_dir)
        self.default_tenant_budget_bytes = default_tenant_budget_bytes
        self.max_queue_depth = max_queue_depth
        self.idle_evict_s = idle_evict_s
        self.session_workers = session_workers
        self.retry_policy = retry_policy
        self.ledger = MemoryLedger(global_budget_bytes)
        self.tenants: dict[str, TenantSession] = {}
        self.latency = Histogram("service.request.seconds", reservoir=1024)
        self.draining = False

    # -- tenant records ------------------------------------------------

    def tenant(self, name: str, budget_bytes: "int | None" = None) -> TenantSession:
        """Get (or lazily create) a tenant's session record.

        The record is cold until its first dispatched request makes it
        resident; ``budget_bytes`` can only be set while cold.
        """
        record = self.tenants.get(name)
        if record is None:
            record = TenantSession(
                self, name, budget_bytes or self.default_tenant_budget_bytes
            )
            self.tenants[name] = record
        elif budget_bytes is not None and budget_bytes != record.budget_bytes:
            if record.resident:
                raise ServiceError(
                    f"tenant {name!r} is resident; its budget cannot change "
                    f"until it is evicted"
                )
            record.budget_bytes = budget_bytes
        if record.task is None or record.task.done():
            record.task = self.loop.create_task(
                record.run(), name=f"repro-service-{name}"
            )
        return record

    def submit(self, session: TenantSession, request: Request) -> None:
        """Enqueue one request, shedding oldest-deadline-first when full."""
        session.stats.record("requests")
        if obs.enabled():
            obs.registry().counter(
                f"service.tenant.{session.tenant}.requests_total"
            ).inc()
        victim = session.queue.push(request)
        session._publish_queue_depth()
        if victim is not None:
            session.stats.record("shed")
            session._respond_error(
                victim,
                RequestRejected(victim.id, "shed (queue full, oldest deadline first)"),
            )

    # -- residency / eviction ------------------------------------------

    async def _make_resident(self, session: TenantSession) -> None:
        """Charge the ledger (evicting idle sessions if needed) and open.

        Callers hold ``session.state_lock``. On any failure the charge
        is rolled back and the typed error propagates to the request
        that triggered residency.
        """
        needed = session.budget_bytes
        if not self.ledger.would_fit(needed):
            await self._evict_idle_until(needed, sparing=session)
        self.ledger.charge(session.tenant, needed)  # may raise AdmissionRejected
        try:
            session.ringo = await self.loop.run_in_executor(
                self.executor, session._open_engine
            )
        except BaseException:
            self.ledger.release(session.tenant)
            raise
        session.dirty = False

    async def _evict_idle_until(self, needed: int, sparing: TenantSession) -> None:
        """Evict idle resident sessions, LRU first, until ``needed`` fits."""
        candidates = sorted(
            (
                t for t in self.tenants.values()
                if t.resident and not t.busy and t is not sparing
            ),
            key=lambda t: t.last_active,
        )
        for candidate in candidates:
            if self.ledger.would_fit(needed):
                return
            await self.evict(candidate)

    async def adopt(self, name: str, ringo: Ringo) -> TenantSession:
        """Install an already-open engine as a tenant's resident session.

        The promotion path: a replica's just-armed follower sessions are
        adopted wholesale so the first post-failover request hits a warm
        engine instead of a cold revival. If the ledger cannot admit the
        session it is closed and the tenant reverts to lazy revival from
        its (fully current) durability directory — slower, never wrong.
        """
        record = self.tenant(name)
        async with record.state_lock:
            if record.resident:
                raise ServiceError(
                    f"tenant {name!r} is already resident; cannot adopt over it"
                )
            try:
                self.ledger.charge(name, record.budget_bytes)
            except AdmissionRejected:
                await self.loop.run_in_executor(self.executor, ringo.close)
                raise
            record.ringo = ringo
            record.dirty = True  # unknown checkpoint state: drain must checkpoint
            record.last_active = self.loop.time()
            record.stats.record("opens")
        return record

    async def evict(self, session: TenantSession) -> bool:
        """Evict one idle resident session to its checkpoint.

        Returns True on success. A fault (``service.evict`` or a
        ``recovery.*`` site inside ``checkpoint()``) aborts cleanly: the
        session stays resident, fully usable, and a later sweep retries.
        """
        if session.state_lock.locked():
            return False  # a request is running; not idle after all
        async with session.state_lock:
            if not session.resident or session.busy:
                return False
            try:
                await self.loop.run_in_executor(
                    self.executor, session._evict_engine
                )
            except Exception:
                session.stats.record("eviction_failures")
                return False
            session.ringo = None
            session.dirty = False
            self.ledger.release(session.tenant)
            session.stats.record("evictions")
            if obs.enabled():
                obs.registry().counter("service.evictions_total").inc()
            return True

    async def sweep(self, now: float) -> None:
        """One scheduler tick: expire queued requests, evict idle sessions.

        Expiry here is the cooperative-cancellation half of the deadline
        contract — a request whose deadline passes while queued is
        answered within one tick, even while a long request runs ahead
        of it.
        """
        for session in list(self.tenants.values()):
            for request in session.queue.remove_expired(now):
                session.stats.record("expired_queued")
                session._respond_error(
                    request,
                    DeadlineExceededError(
                        request.id, request.deadline - request.accepted_at, "queued"
                    ),
                )
            if (
                session.resident
                and not session.busy
                and now - session.last_active >= self.idle_evict_s
            ):
                await self.evict(session)

    # -- drain ----------------------------------------------------------

    async def drain(self, per_session_timeout_s: float = 30.0) -> dict:
        """Reject queued work, finish in-flight requests, checkpoint all.

        Nothing committed is ever lost here even if a checkpoint fails —
        every committed operation is already in the tenant's WAL — but a
        successful drain leaves each dirty session with a fresh
        checkpoint so revival is a restore, not a full replay.
        """
        self.draining = True
        report = {"rejected": 0, "checkpointed": 0, "checkpoint_failures": 0}
        for session in list(self.tenants.values()):
            for request in session.queue.drain():
                report["rejected"] += 1
                session._respond_error(
                    request, RequestRejected(request.id, "draining")
                )
        for session in list(self.tenants.values()):
            try:
                # Timed acquire can't use `with`; the paired release is in
                # the finally below.
                await asyncio.wait_for(
                    session.state_lock.acquire(),  # ringo-lint: disable=R004
                    timeout=per_session_timeout_s,
                )
            except (asyncio.TimeoutError, TimeoutError):
                report["checkpoint_failures"] += 1
                continue
            try:
                if session.resident:
                    try:
                        await self.loop.run_in_executor(
                            self.executor, session._evict_engine
                        )
                        report["checkpointed"] += 1
                    except Exception:
                        session.stats.record("eviction_failures")
                        report["checkpoint_failures"] += 1
                        try:
                            session.ringo.close()
                        except Exception:
                            pass
                    session.ringo = None
                    self.ledger.release(session.tenant)
            finally:
                session.state_lock.release()
            if session.task is not None:
                session.task.cancel()
        return report

    # -- reporting ------------------------------------------------------

    def _finish(self, session: TenantSession, request: Request, response: dict) -> None:
        """Resolve a request's future and record its latency."""
        elapsed = self.loop.time() - request.accepted_at
        self.latency.observe(elapsed)
        if obs.enabled():
            obs.registry().histogram("service.request.seconds").observe(elapsed)
        if not request.future.done():
            request.future.set_result(response)

    def health(self) -> dict:
        """The ``health()["service"]`` section: ledger, latency, tenants."""
        tenants = {}
        for name, session in self.tenants.items():
            entry = session.stats.snapshot()
            entry.update(
                resident=session.resident,
                queue_depth=len(session.queue),
                dirty=session.dirty,
                budget_bytes=session.budget_bytes,
            )
            tenants[name] = entry
        return {
            "draining": self.draining,
            "ledger": self.ledger.snapshot(),
            "latency": self.latency.snapshot(),
            "resident_sessions": sum(
                1 for t in self.tenants.values() if t.resident
            ),
            "known_sessions": len(self.tenants),
            "tenants": tenants,
        }
