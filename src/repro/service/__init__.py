"""Multi-tenant session service for Ringo engines.

The paper's setting is one big-memory machine shared by many analysts,
each holding an interactive session. This package turns the in-process
:class:`~repro.core.engine.Ringo` engine into that shared service:

* :mod:`repro.service.server` — the asyncio front door
  (:class:`SessionService`), its thread-hosted in-process form
  (:class:`ServiceHandle`), and :func:`serve_forever` for the
  ``repro serve`` CLI.
* :mod:`repro.service.session` — per-tenant lifecycle: dispatch,
  idle eviction to :mod:`repro.recovery` checkpoints, lazy revival.
* :mod:`repro.service.admission` — the global resident-memory ledger.
* :mod:`repro.service.queueing` — bounded deadline-aware FIFO queues.
* :mod:`repro.service.protocol` — the line-delimited JSON wire format.
* :mod:`repro.service.client` — a blocking TCP client with ordered
  address-list failover (:class:`EndpointFailure` is the typed,
  retryable signal that a call moved to the next endpoint).

Hot-standby replication — ``role="replica"`` services, WAL shipping,
fenced promotion — lives in :mod:`repro.replication` and plugs in
through :class:`ServiceConfig`. See ``docs/service.md`` for the
protocol and the QoS contract, ``docs/replication.md`` for failover.
"""

from repro.service.admission import MemoryLedger
from repro.service.client import EndpointFailure, ServiceClient
from repro.service.protocol import (
    ProtocolError,
    RemoteError,
    Request,
    TransientRemoteError,
    allowed_engine_ops,
)
from repro.service.queueing import DeadlineQueue
from repro.service.server import (
    ServiceConfig,
    ServiceHandle,
    SessionService,
    serve_forever,
)
from repro.service.session import SessionManager, TenantSession

__all__ = [
    "DeadlineQueue",
    "EndpointFailure",
    "MemoryLedger",
    "ProtocolError",
    "RemoteError",
    "Request",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHandle",
    "SessionManager",
    "SessionService",
    "TenantSession",
    "TransientRemoteError",
    "allowed_engine_ops",
    "serve_forever",
]
