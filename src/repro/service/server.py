"""The asyncio session server: accept loop, scheduler tick, drain.

:class:`SessionService` is the zero-dependency front door that hosts
many concurrent :class:`~repro.core.engine.Ringo` sessions over
line-delimited JSON on TCP (see :mod:`repro.service.protocol`). The
event loop owns only cheap coordination — parsing, queueing, deadline
sweeps, response writing; every engine call runs on a bounded
thread-pool executor, so one tenant's heavy (or faulted) request can
never stall another tenant's accept path.

Robustness properties, in the order the ISSUE states them:

* **admission control** — the session manager's byte ledger refuses a
  session the machine cannot hold (typed ``AdmissionRejected``), and
  each session's own ``memory_budget`` refuses oversized operations
  (typed ``MemoryBudgetError``) — never an OOM.
* **request QoS** — bounded FIFO queues with absolute deadlines,
  cooperative expiry of queued requests each scheduler tick,
  retry-with-jittered-backoff for transient failures, and
  oldest-deadline-first shedding under saturation.
* **session lifecycle** — idle sessions are evicted to
  :mod:`repro.recovery` checkpoints and revived lazily, so resident
  sessions stay a small fraction of known sessions.
* **fault isolation** — ``service.accept`` / ``service.dispatch`` /
  ``service.evict`` faults surface as typed per-request errors or
  aborted evictions; the accept loop never dies with a tenant.
* **graceful drain** — SIGTERM (via :func:`serve_forever`) stops
  accepting, rejects queued work, finishes in-flight requests, and
  checkpoints every dirty session before exit.

:class:`ServiceHandle` hosts the same service on a dedicated event-loop
thread with a blocking ``submit()`` — the in-process client the tests
and benchmarks drive.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping

from repro import obs
from repro.exceptions import RequestRejected, RingoError, ServiceError
from repro.faults import fault_point
from repro.parallel.resilience import RetryPolicy
from repro.service.protocol import (
    Request,
    dump_line,
    error_response,
    load_line,
    ok_response,
    parse_request,
)
from repro.service.session import SessionManager


@dataclass
class ServiceConfig:
    """Tunables for one :class:`SessionService` instance.

    ``spool_dir`` is the root under which each tenant's durable state
    (WAL + checkpoints) lives, one subdirectory per tenant.

    Replication (see :mod:`repro.replication`): ``role`` is ``"primary"``
    or ``"replica"``. A primary with a ``replica_address``
    (``"host:port"`` or a ``(host, port)`` tuple) starts a
    :class:`~repro.replication.WalShipper` next to its accept loop; a
    replica answers the ``replicate`` / ``replicate_seed`` / ``promote``
    verbs, serves reads from its followers (degrading past
    ``lag_degrade_records`` with a retryable typed error), and refuses
    writes until promoted.
    """

    spool_dir: str
    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read it back from the service
    global_budget_bytes: int = 1 << 30
    default_tenant_budget_bytes: int = 128 << 20
    max_queue_depth: int = 16
    default_deadline_s: float = 30.0
    tick_s: float = 0.02
    idle_evict_s: float = 60.0
    session_workers: int = 1
    executor_threads: int = 8
    retry_policy: "RetryPolicy | None" = None
    drain_timeout_s: float = 30.0
    role: str = "primary"
    replica_address: "object | None" = None
    ship_interval_s: float = 0.05
    ship_batch_records: int = 64
    digest_every_batches: int = 4
    lag_degrade_records: int = 1024

    def __post_init__(self) -> None:
        if self.retry_policy is None:
            self.retry_policy = RetryPolicy(max_attempts=4, base_delay=0.005)
        if self.tick_s <= 0 or self.default_deadline_s <= 0:
            raise RingoError("tick_s and default_deadline_s must be positive")
        if self.role not in ("primary", "replica"):
            raise RingoError(f"role must be 'primary' or 'replica', got {self.role!r}")

    def replica_addresses(self) -> "list[tuple[str, int]]":
        """``replica_address`` normalised to an ordered address list."""
        value = self.replica_address
        if value is None:
            return []
        if isinstance(value, str):
            value = [value]
        if isinstance(value, tuple) and len(value) == 2 and isinstance(value[1], int):
            value = [value]
        addresses = []
        for entry in value:
            if isinstance(entry, str):
                host, _, port = entry.rpartition(":")
                if not host or not port.isdigit():
                    raise RingoError(
                        f"replica address {entry!r} must look like 'host:port'"
                    )
                addresses.append((host, int(port)))
            else:
                host, port = entry
                addresses.append((str(host), int(port)))
        return addresses


class SessionService:
    """The multi-tenant session server (must run inside an event loop)."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.loop: "asyncio.AbstractEventLoop | None" = None
        self.executor: "ThreadPoolExecutor | None" = None
        self.manager: "SessionManager | None" = None
        self.port: "int | None" = None
        self.role = config.role
        self.applier = None  # ReplicaApplier when role == "replica"
        self.shipper = None  # WalShipper when primary ships to a replica
        self._server: "asyncio.base_events.Server | None" = None
        self._tick_task: "asyncio.Task | None" = None
        self._started_at = 0.0
        self._requests_accepted = 0

    async def start(self) -> None:
        """Bind the TCP listener and start the scheduler tick."""
        self.loop = asyncio.get_running_loop()
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-service",
        )
        self.manager = SessionManager(
            loop=self.loop,
            executor=self.executor,
            spool_dir=self.config.spool_dir,
            global_budget_bytes=self.config.global_budget_bytes,
            default_tenant_budget_bytes=self.config.default_tenant_budget_bytes,
            max_queue_depth=self.config.max_queue_depth,
            idle_evict_s=self.config.idle_evict_s,
            session_workers=self.config.session_workers,
            retry_policy=self.config.retry_policy,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = self.loop.time()
        self._tick_task = self.loop.create_task(
            self._tick_loop(), name="repro-service-tick"
        )
        if self.role == "replica":
            from repro.replication.apply import ReplicaApplier

            self.applier = ReplicaApplier(
                self.config.spool_dir,
                lag_degrade_records=self.config.lag_degrade_records,
                session_workers=self.config.session_workers,
            )
        addresses = self.config.replica_addresses()
        if self.role == "primary" and addresses:
            from repro.replication.ship import WalShipper

            self.shipper = WalShipper(
                self.config.spool_dir,
                addresses,
                service=self,
                interval_s=self.config.ship_interval_s,
                batch_records=self.config.ship_batch_records,
                digest_every_batches=self.config.digest_every_batches,
            )
            self.shipper.start()

    async def _tick_loop(self) -> None:
        """The scheduler tick: expire queued deadlines, evict idle."""
        assert self.loop is not None and self.manager is not None
        while True:
            await asyncio.sleep(self.config.tick_s)
            try:
                await self.manager.sweep(self.loop.time())
            except Exception:  # never let a sweep bug kill the scheduler
                if obs.enabled():
                    obs.registry().counter("service.sweep_errors_total").inc()

    # -- request intake -------------------------------------------------

    async def submit(self, raw: object) -> dict:
        """Accept one decoded request and await its response envelope.

        This is the whole service behind one call — the TCP handler and
        the in-process client both come through here. It never raises:
        every failure becomes a typed error envelope, which is the
        fault-isolation contract (a bad request, an injected accept
        fault, or a crashed engine call answers *that request* and
        nothing else).
        """
        assert self.loop is not None and self.manager is not None
        request_id = raw.get("id") if isinstance(raw, Mapping) else None
        try:
            fault_point("service.accept")
            request_id, tenant_name, op, args, deadline_s = parse_request(raw)
            self._requests_accepted += 1
            if op == "ping":
                return ok_response(request_id, "pong")
            if op == "health":
                return ok_response(request_id, self.health())
            if self.manager.draining:
                return error_response(
                    request_id, RequestRejected(request_id, "draining")
                )
            if op in ("replicate", "replicate_seed", "promote"):
                return await self._replication_op(request_id, tenant_name, op, args)
            if self.role == "replica":
                return await self._replica_read(request_id, tenant_name, op, args)
            if op == "open":
                return self._open_tenant(request_id, tenant_name, args)
            record = self.manager.tenant(tenant_name)
            now = self.loop.time()
            request = Request(
                id=request_id,
                tenant=tenant_name,
                op=op,
                args=args,
                deadline=now + (deadline_s or self.config.default_deadline_s),
                accepted_at=now,
                future=self.loop.create_future(),
            )
            self.manager.submit(record, request)
        except Exception as error:
            return error_response(request_id, error)
        return await request.future

    # -- the replica face ------------------------------------------------

    async def _replication_op(
        self, request_id: object, tenant_name: str, op: str, args: dict
    ) -> dict:
        """Answer one replication verb (replica role only).

        ``replicate`` applies a shipped batch, ``replicate_seed``
        restores a tenant from a shipped checkpoint + WAL, and
        ``promote`` turns this replica into the new primary: drain the
        deposed primary's WAL tails, bump the epoch, fence it, adopt
        the warm follower sessions, and flip the role — every later
        request dispatches through the ordinary tenant machinery.
        """
        if self.applier is None:
            return error_response(
                request_id,
                ServiceError(
                    f"op {op!r} requires a replica service (this one's role "
                    f"is {self.role!r})"
                ),
            )
        applier = self.applier
        tenant = str(args.pop("tenant", "") or tenant_name)
        try:
            if op == "replicate":
                result = await self.loop.run_in_executor(
                    self.executor, lambda: applier.apply_batch(tenant, **args)
                )
            elif op == "replicate_seed":
                result = await self.loop.run_in_executor(
                    self.executor, lambda: applier.apply_seed(tenant, **args)
                )
            else:  # promote
                new_epoch = args.get("new_epoch")
                fence_spool = args.get("fence_spool")
                report, sessions = await self.loop.run_in_executor(
                    self.executor,
                    lambda: applier.promote(
                        new_epoch=new_epoch, fence_spool=fence_spool
                    ),
                )
                adopted = []
                adopt_failures = {}
                for name, session in sessions.items():
                    try:
                        await self.manager.adopt(name, session)
                        adopted.append(name)
                    except RingoError as adopt_error:
                        # The tenant falls back to cold lazy revival
                        # from its (fully drained) durability directory.
                        adopt_failures[name] = str(adopt_error)
                report["adopted"] = adopted
                if adopt_failures:
                    report["adopt_failures"] = adopt_failures
                self.role = "primary"
                self.applier = None
                result = report
        except Exception as error:
            return error_response(request_id, error)
        return ok_response(request_id, result)

    async def _replica_read(
        self, request_id: object, tenant_name: str, op: str, args: dict
    ) -> dict:
        """Serve a read from a follower; refuse writes until promotion.

        Reads are gated by :meth:`ReplicaApplier.ensure_readable`: a
        quarantined tenant fails with :class:`DivergenceError` and a
        lagging one with the *retryable* :class:`ReplicaLagError` — a
        stale answer is never served silently.
        """
        applier = self.applier
        if not (op in ("objects", "digest", "digest_at") or op.startswith("Get")):
            return error_response(
                request_id,
                ServiceError(
                    f"replica is read-only: op {op!r} must go to the primary "
                    f"(or wait for a promotion)"
                ),
            )

        def read() -> object:
            from repro.recovery.digest import catalog_digest
            from repro.service.protocol import decode_args, encode_result

            record = applier.ensure_readable(tenant_name)
            with record.lock:
                session = record.session
                if op == "objects":
                    return session.Objects()
                if op == "digest":
                    return catalog_digest(session)
                if op == "digest_at":
                    return {
                        "lsn": record.applied_lsn,
                        "epoch": record.epoch,
                        "digest": catalog_digest(session),
                    }
                kwargs = decode_args(session, args)
                return encode_result(session, getattr(session, op)(**kwargs))

        try:
            result = await self.loop.run_in_executor(self.executor, read)
        except Exception as error:
            return error_response(request_id, error)
        return ok_response(request_id, result)

    def _open_tenant(self, request_id: object, tenant_name: str, args: dict) -> dict:
        """The ``open`` service op: declare (or read back) a tenant budget."""
        budget = args.get("budget_bytes")
        if budget is not None and (not isinstance(budget, int) or budget <= 0):
            raise ServiceError("'budget_bytes' must be a positive integer")
        record = self.manager.tenant(tenant_name, budget)
        return ok_response(
            request_id,
            {
                "tenant": tenant_name,
                "budget_bytes": record.budget_bytes,
                "resident": record.resident,
            },
        )

    # -- the TCP face ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        """One client connection: read lines, answer (possibly pipelined).

        Each line becomes its own task so a connection can pipeline
        requests; responses are written as they complete, correlated by
        ``id``. Any connection-level surprise closes *this* connection
        only.
        """
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def answer(raw: object) -> None:
            response = await self.submit(raw)
            async with write_lock:
                writer.write(dump_line(response))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    raw = load_line(line)
                except ServiceError as error:
                    async with write_lock:
                        writer.write(dump_line(error_response(None, error)))
                        await writer.drain()
                    continue
                task = asyncio.ensure_future(answer(raw))
                pending.add(task)
                task.add_done_callback(pending.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- lifecycle ------------------------------------------------------

    async def drain(self) -> dict:
        """Stop accepting, reject queued work, checkpoint dirty sessions."""
        assert self.manager is not None
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        if self._tick_task is not None:
            self._tick_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._tick_task
        return await self.manager.drain(
            per_session_timeout_s=self.config.drain_timeout_s
        )

    async def stop(self, drain: bool = True) -> dict:
        """Drain (optionally) and release the executor; returns the report."""
        report: dict = {}
        if self.shipper is not None:
            # Stop shipping before the drain checkpoint churns the WALs.
            await asyncio.to_thread(self.shipper.stop)
        if drain and self.manager is not None:
            report = await self.drain()
        if self.applier is not None:
            await asyncio.to_thread(self.applier.close)
        if self.executor is not None:
            # shutdown(wait=True) joins worker threads; hop off the event
            # loop so an in-flight engine call cannot stall other sessions.
            await asyncio.to_thread(
                self.executor.shutdown, wait=True, cancel_futures=True
            )
        return report

    def health(self) -> dict:
        """The service health report (also the ``health`` op's payload)."""
        assert self.manager is not None and self.loop is not None
        if self.shipper is not None:
            replication = self.shipper.health()
        elif self.applier is not None:
            replication = self.applier.health()
        else:
            replication = {"role": self.role, "configured": False}
        return {
            "service": self.manager.health(),
            "server": {
                "port": self.port,
                "uptime_s": self.loop.time() - self._started_at,
                "requests_accepted": self._requests_accepted,
                "tick_s": self.config.tick_s,
            },
            "replication": replication,
        }


async def serve_forever(
    config: ServiceConfig,
    signals: tuple = (),
    ready: "threading.Event | None" = None,
    announce=print,
) -> dict:
    """Run a service until one of ``signals`` fires, then drain cleanly.

    The ``repro serve`` CLI calls this with ``(SIGTERM, SIGINT)``;
    ``ready`` (if given) is set once the listener is bound, and
    ``announce`` receives the human-readable startup/drain lines.
    """
    import signal as _signal  # local so non-CLI embedders skip it

    service = SessionService(config)
    await service.start()
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in signals:
        loop.add_signal_handler(signum, stop_event.set)
    announce(
        f"repro service listening on {config.host}:{service.port} "
        f"(spool: {config.spool_dir}, "
        f"ledger: {config.global_budget_bytes >> 20} MiB)"
    )
    try:
        await stop_event.wait()
        report = await service.stop(drain=True)
    finally:
        for signum in signals:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(signum)
    health = service.health()["service"]
    announce(
        f"repro service drained: {report.get('checkpointed', 0)} session(s) "
        f"checkpointed, {report.get('rejected', 0)} queued request(s) "
        f"rejected, {report.get('checkpoint_failures', 0)} checkpoint "
        f"failure(s), {health['ledger']['charged_bytes']} bytes resident"
    )
    return report


class ServiceHandle:
    """A service hosted on its own event-loop thread, driven blockingly.

    The in-process client the tests and benchmarks use: ``start()``
    returns once the TCP listener is bound, ``submit()``/``call()``
    bridge into the loop with ``run_coroutine_threadsafe``, and
    ``stop()`` drains exactly like SIGTERM would.

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as spool:
    ...     handle = ServiceHandle(ServiceConfig(spool_dir=spool)).start()
    ...     try:
    ...         handle.call("t1", "ping")
    ...     finally:
    ...         _ = handle.stop()
    'pong'
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service: "SessionService | None" = None
        self.drain_report: "dict | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._ready = threading.Event()
        self._stop_requested = threading.Event()
        self._startup_error: "BaseException | None" = None
        self._next_id = 0
        self._id_lock = threading.Lock()

    def start(self) -> "ServiceHandle":
        """Start the loop thread; returns once the listener is bound."""
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surface startup failures
            if not self._ready.is_set():
                self._startup_error = error
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.service = SessionService(self.config)
        stop_event = asyncio.Event()
        self._stop_event = stop_event
        await self.service.start()
        self._ready.set()
        await stop_event.wait()
        self.drain_report = await self.service.stop(drain=True)

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` clients should connect to."""
        assert self.service is not None
        return (self.config.host, self.service.port)

    def submit(self, raw: dict, timeout: "float | None" = None) -> dict:
        """Send one raw request envelope; blocks for its response."""
        assert self.service is not None and self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.service.submit(raw), self._loop
        )
        return future.result(timeout)

    def call(self, tenant: str, op: str, deadline_ms: "int | None" = None, **args):
        """Convenience: one request, unwrapped result or typed exception."""
        from repro.service.protocol import raise_remote_error

        with self._id_lock:
            self._next_id += 1
            request_id = self._next_id
        raw: dict = {"id": request_id, "tenant": tenant, "op": op, "args": args}
        if deadline_ms is not None:
            raw["deadline_ms"] = deadline_ms
        envelope = self.submit(raw)
        if not envelope.get("ok"):
            raise_remote_error(envelope)
        return envelope.get("result")

    def health(self) -> dict:
        """The live service health report."""
        assert self.service is not None and self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self._health_async(), self._loop
        )
        return future.result(30.0)

    async def _health_async(self) -> dict:
        assert self.service is not None
        return self.service.health()

    def stop(self, timeout: "float | None" = 60.0) -> "dict | None":
        """Drain and stop the service; returns the drain report."""
        if self._loop is None or self._thread is None:
            return None
        if not self._stop_requested.is_set():
            self._stop_requested.set()
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)
        return self.drain_report

    def __enter__(self) -> "ServiceHandle":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
