"""A blocking TCP client for the session service.

:class:`ServiceClient` speaks the line-delimited JSON protocol of
:mod:`repro.service.protocol` over a plain socket. It supports two
styles:

* ``call(op, ...)`` — send one request and block for its response,
  optionally retrying transient failures under a shared
  :class:`~repro.parallel.resilience.RetryPolicy` (the server marks
  retryable errors with ``retryable: true`` in the envelope).
* ``send(op, ...)`` + ``wait(request_id)`` — pipeline many requests on
  one connection; responses are matched by ``id`` regardless of the
  order the server answers in.

The client is intentionally synchronous: tenants of an interactive
analytics service are scripts and notebooks, and a blocking call per
analytics step is their natural shape.
"""

from __future__ import annotations

import json
import socket
import threading

from repro.exceptions import RingoError, TransientError
from repro.parallel.resilience import RetryPolicy, run_with_retry
from repro.service.protocol import TransientRemoteError, raise_remote_error


class EndpointFailure(TransientError):
    """The current endpoint's connection failed mid-request.

    Transient by design: a client built with an ordered address list
    advances to the next endpoint before this is raised, so a retry
    policy re-attempting the call lands on the standby — the failover
    path after a promotion.
    """

    def __init__(self, endpoint: tuple, reason: str):
        self.endpoint = endpoint
        super().__init__(f"endpoint {endpoint[0]}:{endpoint[1]} failed: {reason}")


class ServiceClient:
    """One tenant's connection to a running session service.

    ``addresses`` (optional) is an ordered failover list of
    ``(host, port)`` pairs; a connection failure advances to the next
    address and — when a ``retry_policy`` is set — transparently
    re-sends the request there. ``last_endpoint`` records which address
    served the most recent reply.

    >>> client = ServiceClient("127.0.0.1", 9000, tenant="alice")  # doctest: +SKIP
    >>> client.call("ping")  # doctest: +SKIP
    'pong'
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        timeout: float = 60.0,
        retry_policy: "RetryPolicy | None" = None,
        addresses: "list[tuple[str, int]] | None" = None,
    ) -> None:
        self.tenant = tenant
        self.timeout = timeout
        self.retry_policy = retry_policy
        self.addresses: list = [
            (str(h), int(p)) for h, p in (addresses or [(host, port)])
        ]
        if not self.addresses:
            raise RingoError("ServiceClient needs at least one address")
        self._address_index = 0
        self.last_endpoint: "tuple | None" = None
        self._sock: "socket.socket | None" = None
        self._file = None
        self._lock = threading.Lock()
        self._next_id = 0
        self._received: dict[object, dict] = {}

    @property
    def host(self) -> str:
        """The current endpoint's host (tracks failover)."""
        return self.addresses[self._address_index][0]

    @property
    def port(self) -> int:
        """The current endpoint's port (tracks failover)."""
        return self.addresses[self._address_index][1]

    # -- connection lifecycle -------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the TCP connection to the current endpoint (idempotent)."""
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._file = sock.makefile("rwb")
        return self

    def _fail_endpoint(self, reason: str) -> None:
        """Drop the connection, rotate to the next address, raise typed.

        In-flight pipelined requests on the dead connection are lost —
        their :meth:`wait` raises this same typed error. Re-sending is
        at-least-once: an op the dead server committed before failing
        may run twice, which is why callers failing over should stick
        to idempotent or re-derivable requests.
        """
        endpoint = (self.host, self.port)
        self.close()
        self._received.clear()
        self._address_index = (self._address_index + 1) % len(self.addresses)
        raise EndpointFailure(endpoint, reason)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request plumbing ------------------------------------------------

    def send(
        self, op: str, deadline_ms: "int | None" = None, **args: object
    ) -> int:
        """Write one request without waiting; returns its request id.

        Use with :meth:`wait` to pipeline many requests on one
        connection (how the benchmarks saturate a queue).
        """
        with self._lock:
            try:
                self.connect()
            except OSError as error:
                self._fail_endpoint(f"connect failed: {error}")
            self._next_id += 1
            request_id = self._next_id
            raw: dict = {
                "id": request_id,
                "tenant": self.tenant,
                "op": op,
                "args": args,
            }
            if deadline_ms is not None:
                raw["deadline_ms"] = deadline_ms
            line = (json.dumps(raw, separators=(",", ":")) + "\n").encode()
            try:
                self._file.write(line)
                self._file.flush()
            except OSError as error:
                self._fail_endpoint(f"send failed: {error}")
        return request_id

    def wait(self, request_id: int) -> dict:
        """Block for the response envelope with ``id == request_id``.

        A dead connection — including one a *previous* ``wait`` already
        failed and rotated away from, losing this pipelined request with
        it — raises the typed, retryable :class:`EndpointFailure`, never
        a bare attribute error.
        """
        while True:
            with self._lock:
                if request_id in self._received:
                    envelope = self._received.pop(request_id)
                    self.last_endpoint = (self.host, self.port)
                    return envelope
                if self._file is None:
                    raise EndpointFailure(
                        (self.host, self.port),
                        f"no open connection; the response to pipelined "
                        f"request {request_id} was lost with the previous "
                        f"endpoint",
                    )
                try:
                    line = self._file.readline()
                except OSError as error:
                    self._fail_endpoint(f"read failed: {error}")
                if not line:
                    self._fail_endpoint(
                        f"connection closed waiting for response {request_id}"
                    )
            envelope = json.loads(line.decode())
            if envelope.get("id") == request_id:
                self.last_endpoint = (self.host, self.port)
                return envelope
            self._received[envelope.get("id")] = envelope

    # -- the convenience surface ----------------------------------------

    def call(
        self, op: str, deadline_ms: "int | None" = None, **args: object
    ) -> object:
        """One request, blocking; unwraps the result or raises typed errors.

        Failure envelopes become
        :class:`~repro.service.protocol.RemoteError` (or its retryable
        subclass). When the client was built with a ``retry_policy``,
        retryable failures are re-sent with jittered backoff — the same
        policy machinery the server's dispatcher uses. With an ordered
        ``addresses`` list, a dead connection or a retryable envelope
        rotates to the next address before the re-send, so a client
        keeps working across a failover; check ``last_endpoint`` to see
        which address served the reply.
        """

        def attempt() -> object:
            envelope = self.wait(self.send(op, deadline_ms=deadline_ms, **args))
            if not envelope.get("ok"):
                raise_remote_error(envelope)
            return envelope.get("result")

        def on_retry(attempt_no: int, error: BaseException) -> None:
            # A connection-level failure already rotated in
            # _fail_endpoint; a retryable *envelope* (a lagging replica,
            # a transient fault) rotates here so the retry can land on
            # a healthier member of the pair.
            if isinstance(error, TransientRemoteError) and len(self.addresses) > 1:
                with self._lock:
                    self.close()
                    self._received.clear()
                    self._address_index = (
                        self._address_index + 1
                    ) % len(self.addresses)

        if self.retry_policy is None:
            return attempt()
        return run_with_retry(
            attempt, self.retry_policy, on_retry=on_retry, metric_prefix="client"
        )

    def ping(self) -> object:
        """Liveness probe."""
        return self.call("ping")

    def health(self) -> dict:
        """The server's full health report."""
        return self.call("health")
