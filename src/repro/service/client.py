"""A blocking TCP client for the session service.

:class:`ServiceClient` speaks the line-delimited JSON protocol of
:mod:`repro.service.protocol` over a plain socket. It supports two
styles:

* ``call(op, ...)`` — send one request and block for its response,
  optionally retrying transient failures under a shared
  :class:`~repro.parallel.resilience.RetryPolicy` (the server marks
  retryable errors with ``retryable: true`` in the envelope).
* ``send(op, ...)`` + ``wait(request_id)`` — pipeline many requests on
  one connection; responses are matched by ``id`` regardless of the
  order the server answers in.

The client is intentionally synchronous: tenants of an interactive
analytics service are scripts and notebooks, and a blocking call per
analytics step is their natural shape.
"""

from __future__ import annotations

import json
import socket
import threading

from repro.exceptions import RingoError
from repro.parallel.resilience import RetryPolicy, run_with_retry
from repro.service.protocol import raise_remote_error


class ServiceClient:
    """One tenant's connection to a running session service.

    >>> client = ServiceClient("127.0.0.1", 9000, tenant="alice")  # doctest: +SKIP
    >>> client.call("ping")  # doctest: +SKIP
    'pong'
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        timeout: float = 60.0,
        retry_policy: "RetryPolicy | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.retry_policy = retry_policy
        self._sock: "socket.socket | None" = None
        self._file = None
        self._lock = threading.Lock()
        self._next_id = 0
        self._received: dict[object, dict] = {}

    # -- connection lifecycle -------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the TCP connection (idempotent)."""
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request plumbing ------------------------------------------------

    def send(
        self, op: str, deadline_ms: "int | None" = None, **args: object
    ) -> int:
        """Write one request without waiting; returns its request id.

        Use with :meth:`wait` to pipeline many requests on one
        connection (how the benchmarks saturate a queue).
        """
        self.connect()
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            raw: dict = {
                "id": request_id,
                "tenant": self.tenant,
                "op": op,
                "args": args,
            }
            if deadline_ms is not None:
                raw["deadline_ms"] = deadline_ms
            line = (json.dumps(raw, separators=(",", ":")) + "\n").encode()
            self._file.write(line)
            self._file.flush()
        return request_id

    def wait(self, request_id: int) -> dict:
        """Block for the response envelope with ``id == request_id``."""
        while True:
            with self._lock:
                if request_id in self._received:
                    return self._received.pop(request_id)
                line = self._file.readline()
            if not line:
                raise RingoError(
                    f"connection closed waiting for response {request_id}"
                )
            envelope = json.loads(line.decode())
            if envelope.get("id") == request_id:
                return envelope
            self._received[envelope.get("id")] = envelope

    # -- the convenience surface ----------------------------------------

    def call(
        self, op: str, deadline_ms: "int | None" = None, **args: object
    ) -> object:
        """One request, blocking; unwraps the result or raises typed errors.

        Failure envelopes become
        :class:`~repro.service.protocol.RemoteError` (or its retryable
        subclass). When the client was built with a ``retry_policy``,
        retryable failures are re-sent with jittered backoff — the same
        policy machinery the server's dispatcher uses.
        """

        def attempt() -> object:
            envelope = self.wait(self.send(op, deadline_ms=deadline_ms, **args))
            if not envelope.get("ok"):
                raise_remote_error(envelope)
            return envelope.get("result")

        if self.retry_policy is None:
            return attempt()
        return run_with_retry(attempt, self.retry_policy, metric_prefix="client")

    def ping(self) -> object:
        """Liveness probe."""
        return self.call("ping")

    def health(self) -> dict:
        """The server's full health report."""
        return self.call("health")
