"""Per-session request queues: bounded FIFO, deadlines, load shedding.

Each tenant session gets one :class:`DeadlineQueue`. Requests execute in
arrival order (a Ringo session is a sequential interactive catalog —
reordering would change what ``$ref`` names mean), but two QoS rules cut
across the FIFO discipline:

* **Cooperative expiry** — a request whose deadline passes while it is
  still queued is removed and answered with a typed
  :class:`~repro.exceptions.DeadlineExceededError` instead of being run
  late; the sweep runs once per scheduler tick and on every dequeue.
* **Load shedding** — a full queue sheds *oldest-deadline-first*: the
  entry with the least remaining time (including, possibly, the new
  arrival itself) is dropped with a typed
  :class:`~repro.exceptions.RequestRejected`, because the request most
  likely to miss its deadline anyway is the cheapest one to sacrifice.

The queue is an asyncio-internal structure: it is only touched from the
server's event-loop thread, so it needs wakeup machinery but no locks.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Iterator

from repro.exceptions import RingoError

from repro.service.protocol import Request


class DeadlineQueue:
    """A bounded FIFO of :class:`Request` with deadline-aware shedding."""

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise RingoError(f"queue maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: deque[Request] = deque()
        self._ready = asyncio.Event()
        self.shed_total = 0
        self.expired_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Request]:
        return iter(tuple(self._entries))

    def push(self, request: Request) -> "Request | None":
        """Enqueue ``request``; returns the shed victim when saturated.

        The victim is the queued-or-incoming request with the earliest
        deadline. When the victim is the incoming request itself it is
        never enqueued; either way the caller owes the victim a typed
        rejection.
        """
        victim: "Request | None" = None
        if len(self._entries) >= self.maxsize:
            victim = min(self._entries, key=lambda r: r.deadline)
            if victim.deadline <= request.deadline:
                self._entries.remove(victim)
            else:
                victim = request
            self.shed_total += 1
        if victim is not request:
            self._entries.append(request)
            self._ready.set()
        return victim

    async def pop(self) -> Request:
        """Wait for and remove the head request (FIFO)."""
        while not self._entries:
            self._ready.clear()
            await self._ready.wait()
        request = self._entries.popleft()
        if not self._entries:
            self._ready.clear()
        return request

    def remove_expired(self, now: float) -> list[Request]:
        """Remove and return every queued request whose deadline passed."""
        expired = [r for r in self._entries if r.deadline <= now]
        if expired:
            for request in expired:
                self._entries.remove(request)
            self.expired_total += len(expired)
            if not self._entries:
                self._ready.clear()
        return expired

    def drain(self) -> list[Request]:
        """Remove and return everything queued (server drain path)."""
        drained = list(self._entries)
        self._entries.clear()
        self._ready.clear()
        return drained
