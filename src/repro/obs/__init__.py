"""repro.obs — zero-dependency tracing, metrics, and profiling.

The observability layer the rest of the engine instruments itself with
(see ``docs/observability.md`` for the span taxonomy, metric names, and
sink formats). Three pieces:

* **spans** (:mod:`repro.obs.spans`) — nested, timestamped spans with
  wall time, peak-RSS delta, and tags. ``trace("name", key=value)`` is a
  context manager; tracing off costs one global check.
* **metrics** (:mod:`repro.obs.metrics`) — process-wide counters,
  gauges, and histograms (op latencies, cache hit ratio, rows/s and
  edges/s rates), surfaced through ``Ringo.health()["obs"]``.
* **sinks + profiling** (:mod:`repro.obs.sinks`,
  :mod:`repro.obs.profile`) — a bounded in-memory recorder by default,
  an append-only JSON-lines file sink, and the span-tree report behind
  ``Ringo.profile()``.

Entry points: ``Ringo(trace=True)``, the ``RINGO_TRACE`` environment
variable (``1`` for the in-memory recorder, a path for a JSON-lines
file), and the ``repro trace <script>`` CLI command.

This package imports nothing from the rest of ``repro`` — it sits at
the bottom of the import graph (like :mod:`repro.faults` and
:mod:`repro.analysis.hooks`) so every layer can instrument itself
without cycles.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    observe_rate,
    registry,
)
from repro.obs.profile import build_tree, render_profile
from repro.obs.sinks import (
    JsonlSink,
    RingBufferSink,
    validate_jsonl,
    validate_record,
)
from repro.obs.spans import (
    ENV_VAR,
    Span,
    Tracer,
    current_span,
    current_span_id,
    current_tracer,
    disable,
    enable,
    enable_from_env,
    enabled,
    env_enabled,
    env_setting,
    event,
    trace,
    traced,
)

__all__ = [
    "ENV_VAR",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "RingBufferSink",
    "Span",
    "Tracer",
    "build_tree",
    "current_span",
    "current_span_id",
    "current_tracer",
    "disable",
    "enable",
    "enable_from_env",
    "enabled",
    "env_enabled",
    "env_setting",
    "event",
    "observe_rate",
    "registry",
    "render_profile",
    "trace",
    "traced",
    "validate_jsonl",
    "validate_record",
]
