"""Span-tree profiling report — ``Ringo.profile()``'s renderer.

Turns a flat list of span records (as the sinks store them) back into
the nested call tree and renders it with per-node call counts, total
(inclusive) and self (exclusive) wall time — the "where did that
ToGraph actually go?" view the interactive session answers with::

    engine.ToGraph                       calls 1  total 0.532s  self 0.012s
      convert.sort_first                 calls 1  total 0.498s  self 0.101s
        pool.kernel                      calls 4  total 0.397s  self 0.397s

Sibling spans with the same name under the same parent are aggregated
(call counts add, times sum), which is what makes per-partition worker
spans readable instead of forty identical lines.
"""

from __future__ import annotations

from typing import Iterable


class _Node:
    __slots__ = ("name", "calls", "total_s", "rss_kb", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.rss_kb = 0
        self.children: dict[str, _Node] = {}


def build_tree(records: Iterable[dict]) -> _Node:
    """Aggregate span records into a name-keyed tree under a root node.

    A span whose parent is unknown (evicted from the ring buffer, or
    genuinely top-level) becomes a root child. Aggregation is by the
    *path* of names, so ``pool.kernel`` under ``ToGraph`` and under
    ``GetPageRank`` stay separate lines.
    """
    records = list(records)
    by_id = {record["span_id"]: record for record in records}
    root = _Node("<root>")

    def node_for(record: dict) -> _Node:
        parent_id = record.get("parent_id")
        parent_record = by_id.get(parent_id) if parent_id is not None else None
        parent_node = node_for(parent_record) if parent_record is not None else root
        child = parent_node.children.get(record["name"])
        if child is None:
            child = _Node(record["name"])
            parent_node.children[record["name"]] = child
        return child

    for record in records:
        node = node_for(record)
        node.calls += 1
        node.total_s += float(record.get("duration_s", 0.0))
        node.rss_kb += int(record.get("rss_delta_kb", 0))
    return root


def render_profile(records: Iterable[dict], min_total_s: float = 0.0) -> str:
    """Render the aggregated span tree as an aligned text report.

    ``min_total_s`` hides subtrees whose inclusive time is below the
    threshold (the tree root is always shown). Returns a short notice
    when there are no spans to report.
    """
    root = build_tree(records)
    if not root.children:
        return "(no spans recorded — is tracing enabled?)"
    lines = [
        f"{'span':<52} {'calls':>6} {'total':>10} {'self':>10} {'rss+':>8}"
    ]

    def walk(node: _Node, depth: int) -> None:
        child_total = sum(child.total_s for child in node.children.values())
        self_s = max(0.0, node.total_s - child_total)
        label = "  " * depth + node.name
        if len(label) > 52:
            label = label[:49] + "..."
        lines.append(
            f"{label:<52} {node.calls:>6} {node.total_s:>9.4f}s {self_s:>9.4f}s "
            f"{node.rss_kb:>6}KB"
        )
        for child in sorted(
            node.children.values(), key=lambda c: c.total_s, reverse=True
        ):
            if child.total_s >= min_total_s:
                walk(child, depth + 1)

    for child in sorted(root.children.values(), key=lambda c: c.total_s, reverse=True):
        if child.total_s >= min_total_s:
            walk(child, 0)
    return "\n".join(lines)
