"""Process-wide metrics registry — counters, gauges, histograms.

The paper reports per-operator *rates* (Tables 2-6: rows/s for table
ops, edges/s for conversions); this registry is where the running system
accumulates the same units so ``Ringo.health()["obs"]`` can answer
"what throughput is this session actually getting?" without a benchmark
harness. Three metric kinds cover the engine's needs:

* :class:`Counter` — monotonically non-decreasing totals (kernels
  dispatched, rows converted, cache hits);
* :class:`Gauge` — last-write-wins instantaneous values (pool queue
  depth);
* :class:`Histogram` — streaming summaries of observations (operation
  latencies, rows/s per call) keeping count/sum/min/max plus a bounded
  reservoir of recent values for percentile estimates.

Everything is thread-safe and dependency-free. The module-level
:func:`registry` is the process-wide instance the instrumented code
writes to; tests build private :class:`MetricsRegistry` objects.
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: "int | float" = 1) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> "int | float":
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: "int | float" = 0

    def set(self, value: "int | float") -> None:
        with self._lock:
            self._value = value

    def add(self, delta: "int | float") -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> "int | float":
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A streaming summary of observations.

    Keeps exact count/sum/min/max and a fixed-size reservoir of the most
    recent ``reservoir`` observations for percentile estimates — bounded
    memory no matter how long the session runs.
    """

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max", "_recent", "_capacity")

    def __init__(self, name: str, reservoir: int = 256) -> None:
        if reservoir <= 0:
            raise ValueError(f"histogram reservoir must be positive, got {reservoir}")
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: "float | None" = None
        self._max: "float | None" = None
        self._recent: list[float] = []
        self._capacity = reservoir

    def observe(self, value: "int | float") -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._recent) >= self._capacity:
                # Overwrite round-robin: cheap, keeps the freshest window.
                self._recent[self._count % self._capacity] = value
            else:
                self._recent.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> "float | None":
        """Estimated ``q``-quantile over the recent-observation window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._recent:
                return None
            ordered = sorted(self._recent)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def snapshot(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
            recent = list(self._recent)
        mean = total / count if count else None
        recent.sort()
        p50 = recent[len(recent) // 2] if recent else None
        p95 = recent[min(len(recent) - 1, int(0.95 * len(recent)))] if recent else None
        return {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": mean,
            "p50": p50,
            "p95": p95,
        }


class MetricsRegistry:
    """Thread-safe name → metric map with get-or-create accessors.

    A name is permanently bound to its first kind; asking for the same
    name as a different kind is a programming error and raises.

    >>> registry = MetricsRegistry()
    >>> registry.counter("demo.total").inc(2)
    >>> registry.counter("demo.total").value
    2
    >>> registry.snapshot()["demo.total"]["value"]
    2
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, reservoir: int = 256) -> Histogram:
        return self._get_or_create(name, Histogram, reservoir=reservoir)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Plain-dict copy of every metric (safe to mutate or serialise)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def reset(self) -> None:
        """Drop every metric (tests and benchmark harnesses only)."""
        with self._lock:
            self._metrics.clear()


# The process-wide registry the instrumented call sites write to —
# process-wide for the same reason as the snapshot cache: one
# interactive session per process is the paper's deployment model.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def observe_rate(
    name: str, units: "int | float", seconds: float, registry_: "MetricsRegistry | None" = None
) -> None:
    """Record one throughput observation: a ``<name>_per_s`` histogram
    sample plus a ``<name>_total`` running counter.

    This is the helper behind the paper-styled rows/s and edges/s
    metrics; call sites gate on :func:`repro.obs.spans.enabled` so the
    untraced path stays free.
    """
    reg = registry_ if registry_ is not None else _REGISTRY
    reg.counter(f"{name}_total").inc(units)
    if seconds > 0:
        reg.histogram(f"{name}_per_s").observe(units / seconds)
