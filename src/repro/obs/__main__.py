"""Validate a JSON-lines trace file: ``python -m repro.obs trace.jsonl``.

Exit codes: 0 — file conforms to the documented span schema and holds at
least ``--min-spans`` records; 1 — schema violations or too few spans;
2 — unreadable file. CI's ``obs-smoke`` step runs this against a traced
example to keep the written format and the documented one identical.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.sinks import validate_jsonl


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="validate a repro.obs JSON-lines trace file",
    )
    parser.add_argument("path", help="trace file written by the JSON-lines sink")
    parser.add_argument(
        "--min-spans", type=int, default=1,
        help="fail unless at least this many valid spans are present",
    )
    args = parser.parse_args(argv)
    try:
        count, problems = validate_jsonl(args.path)
    except OSError as error:
        print(f"repro.obs: cannot read {args.path}: {error}", file=sys.stderr)
        return 2
    for problem in problems[:20]:
        print(f"repro.obs: {args.path}: {problem}", file=sys.stderr)
    if len(problems) > 20:
        print(f"repro.obs: ... and {len(problems) - 20} more", file=sys.stderr)
    if problems:
        return 1
    if count < args.min_spans:
        print(
            f"repro.obs: {args.path}: only {count} valid spans "
            f"(need >= {args.min_spans})",
            file=sys.stderr,
        )
        return 1
    print(f"{args.path}: {count} spans, schema OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
