"""Tracing spans — where the time (and memory) of an operation went.

Ringo's pitch is *interactive* analytics: the user sits at a Python
prompt while the engine executes table↔graph conversions and 200+ graph
functions behind each call (paper §2, §4.2 reports per-operator rates).
Knowing what a ``ToGraph`` actually did is therefore part of the system,
not an afterthought. This module provides the span primitive the rest of
the package instruments itself with::

    with trace("tograph.sort_first", rows=n) as span:
        ...                       # nested trace() calls become children
        span.set_tag("edges", m)  # tags may be added mid-span

Design rules, shared with :mod:`repro.faults` and
:mod:`repro.analysis.hooks`:

* **one module global** — ``_TRACER`` is ``None`` unless tracing is
  armed, so a disabled ``trace()`` costs a call, a load, and a compare
  (the overhead guard in the test suite holds it under 5µs);
* **zero dependencies** — this module imports nothing from the rest of
  the package, so every layer (tables, convert, parallel, algorithms)
  can instrument itself without import cycles;
* **thread-aware nesting** — each thread keeps its own span stack, and a
  parent span can be carried *across* threads explicitly (the worker
  pool passes its calling thread's span id so per-worker kernel spans
  nest under the dispatching operation).

Every finished span records wall time, the peak-RSS delta across the
span (``ru_maxrss``, so a conversion that grew the high-water mark shows
by how much), its thread, and its tags, then flows to the tracer's
sinks (:mod:`repro.obs.sinks`).
"""

from __future__ import annotations

import functools
import os
import threading
import time
from typing import Callable, Iterator, Mapping

try:  # pragma: no cover - resource is POSIX-only
    import resource

    def _peak_rss_kb() -> int:
        """Process peak RSS in KiB (Linux ru_maxrss units)."""
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

except ImportError:  # pragma: no cover

    def _peak_rss_kb() -> int:
        return 0


ENV_VAR = "RINGO_TRACE"

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})
_FALSE_VALUES = frozenset({"", "0", "false", "no", "off"})


class Span:
    """One timed operation: name, nesting ids, tags, wall time, RSS delta.

    Spans are created by :func:`trace` (never directly) and are live
    inside their ``with`` block; :meth:`set_tag` attaches facts that are
    only known mid-operation (row counts, cache verdicts).
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "thread",
        "tags",
        "start_s",
        "end_s",
        "rss_delta_kb",
        "_start_rss_kb",
    )

    def __init__(
        self, name: str, span_id: int, parent_id: "int | None", thread: str
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread
        self.tags: dict[str, object] = {}
        self.start_s = time.perf_counter()
        self.end_s: "float | None" = None
        self.rss_delta_kb = 0
        self._start_rss_kb = _peak_rss_kb()

    def set_tag(self, key: str, value: object) -> "Span":
        """Attach one ``key: value`` fact to the span (chainable)."""
        self.tags[key] = value
        return self

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds (to "now" while the span is still open)."""
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def to_record(self) -> dict:
        """The span as the plain-dict record the sinks consume.

        This is the documented JSON-lines schema (docs/observability.md):
        ``name``, ``span_id``, ``parent_id``, ``thread``, ``start_s``,
        ``duration_s``, ``rss_delta_kb``, ``tags``.
        """
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "rss_delta_kb": self.rss_delta_kb,
            "tags": dict(self.tags),
        }


class Tracer:
    """Produces spans and routes finished ones to its sinks.

    ``sinks`` is any iterable of objects with a ``record(dict)`` method
    (see :mod:`repro.obs.sinks`); when omitted a default
    :class:`~repro.obs.sinks.RingBufferSink` is attached so
    ``Ringo.profile()`` always has something to render.
    """

    def __init__(self, sinks=None) -> None:
        if sinks is None:
            from repro.obs.sinks import RingBufferSink

            sinks = [RingBufferSink()]
        self.sinks = list(sinks)
        self._lock = threading.Lock()
        self._next_id = 1
        self._started = 0
        self._finished = 0
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def start(
        self,
        name: str,
        tags: "Mapping[str, object] | None" = None,
        parent_id: "int | None" = None,
    ) -> Span:
        """Open a span; it nests under the calling thread's current span
        unless ``parent_id`` names one explicitly (cross-thread use)."""
        stack = self._stack()
        if parent_id is None and stack:
            parent_id = stack[-1].span_id
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._started += 1
        span = Span(name, span_id, parent_id, threading.current_thread().name)
        if tags:
            span.tags.update(tags)
        stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close a span and deliver its record to every sink."""
        span.end_s = time.perf_counter()
        span.rss_delta_kb = max(0, _peak_rss_kb() - span._start_rss_kb)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(span)
        with self._lock:
            self._finished += 1
        record = span.to_record()
        for sink in self.sinks:
            sink.record(record)

    def current(self) -> "Span | None":
        """The calling thread's innermost open span, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- reporting -----------------------------------------------------

    def ring_records(self) -> list[dict]:
        """Records retained by the first ring-buffer sink (oldest first)."""
        from repro.obs.sinks import RingBufferSink

        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink.records()
        return []

    def stats(self) -> dict:
        """Span production counters for ``Ringo.health()["obs"]``."""
        with self._lock:
            started, finished = self._started, self._finished
        out: dict[str, object] = {"started": started, "finished": finished}
        from repro.obs.sinks import RingBufferSink

        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                out["recorded"] = sink.recorded
                out["dropped"] = sink.dropped
                break
        return out

    def close(self) -> None:
        """Close any closable sinks (flushes JSON-lines files)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


# The one module global the instrumented code reads. ``None`` means
# tracing is off everywhere; trace() then returns the shared no-op.
_TRACER: "Tracer | None" = None
_TRACER_LOCK = threading.Lock()


class _NullHandle:
    """Shared no-op stand-in for both a span handle and a span."""

    __slots__ = ()

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_tag(self, key: str, value: object) -> "_NullHandle":
        return self


_NULL = _NullHandle()


class _SpanHandle:
    """Context manager produced by :func:`trace` when tracing is armed."""

    __slots__ = ("_tracer", "_name", "_tags", "_parent_id", "_span")

    def __init__(self, tracer, name, tags, parent_id) -> None:
        self._tracer = tracer
        self._name = name
        self._tags = tags
        self._parent_id = parent_id
        self._span: "Span | None" = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start(
            self._name, self._tags, parent_id=self._parent_id
        )
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        assert self._span is not None
        if exc_info and exc_info[0] is not None:
            self._span.tags.setdefault("error", getattr(exc_info[0], "__name__", "error"))
        self._tracer.finish(self._span)
        return False


def trace(name: str, _parent: "int | None" = None, **tags):
    """Span context manager; a shared no-op when tracing is off.

    ``_parent`` carries an explicit parent span id across threads (the
    worker pool's per-worker child spans); everything else in ``tags``
    lands on the span.

    >>> with trace("noop.example"):   # tracing off: costs ~a dict + call
    ...     pass
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL
    return _SpanHandle(tracer, name, tags, _parent)


def event(name: str, _parent: "int | None" = None, **tags) -> None:
    """Record an instantaneous (zero-duration) span, e.g. a retry."""
    tracer = _TRACER
    if tracer is None:
        return
    span = tracer.start(name, tags, parent_id=_parent)
    tracer.finish(span)


def traced(name: str) -> Callable:
    """Decorator form of :func:`trace`; checks the global per call, so a
    function decorated while tracing is off stays zero-entry."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if _TRACER is None:
                return fn(*args, **kwargs)
            with trace(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def current_span() -> "Span | None":
    """The calling thread's innermost open span, or ``None``."""
    tracer = _TRACER
    return None if tracer is None else tracer.current()


def current_span_id() -> "int | None":
    """Id of the innermost open span (for cross-thread parenting)."""
    span = current_span()
    return None if span is None else span.span_id


def enabled() -> bool:
    """Whether a tracer is installed process-wide."""
    return _TRACER is not None


def current_tracer() -> "Tracer | None":
    """The installed tracer, or ``None``."""
    return _TRACER


def enable(sinks=None) -> Tracer:
    """Install a process-wide tracer (idempotent: reuses an armed one).

    Returns the tracer now in charge — callers that installed it own its
    teardown (:func:`disable`), mirroring the race-detector protocol.
    """
    global _TRACER
    with _TRACER_LOCK:
        if _TRACER is None:
            _TRACER = Tracer(sinks=sinks)
        return _TRACER


def disable() -> "Tracer | None":
    """Remove the process-wide tracer (closing its sinks); returns it."""
    global _TRACER
    with _TRACER_LOCK:
        tracer = _TRACER
        _TRACER = None
    if tracer is not None:
        tracer.close()
    return tracer


def env_setting(value: "str | None" = None) -> "str | None":
    """Interpret a ``RINGO_TRACE`` value.

    Returns ``None`` (off), ``"ring"`` (on, in-memory recorder only), or
    a file path (on, with a JSON-lines sink at that path).
    """
    if value is None:
        value = os.environ.get(ENV_VAR, "")
    lowered = value.strip().lower()
    if lowered in _FALSE_VALUES:
        return None
    if lowered in _TRUE_VALUES:
        return "ring"
    return value.strip()


def env_enabled() -> bool:
    """Whether ``RINGO_TRACE`` asks for tracing."""
    return env_setting() is not None


def enable_from_env() -> "Tracer | None":
    """Arm tracing as ``RINGO_TRACE`` requests; ``None`` when it is off."""
    setting = env_setting()
    if setting is None:
        return None
    if setting == "ring":
        return enable()
    from repro.obs.sinks import JsonlSink, RingBufferSink

    return enable(sinks=[RingBufferSink(), JsonlSink(setting)])
