"""Span sinks — where finished span records go.

Two sinks cover the interactive and the offline case:

* :class:`RingBufferSink` — the default recorder. A bounded in-memory
  ring holding the most recent spans, so a long session can always
  render ``Ringo.profile()`` without unbounded growth. Wraparound is
  counted (``dropped``) rather than silent.
* :class:`JsonlSink` — one JSON object per line, append-only, flushed
  per record so a crashed script still leaves a readable trace. This is
  what ``RINGO_TRACE=<path>`` and ``repro trace --output`` write.

The JSON-lines schema is documented in ``docs/observability.md`` and
machine-checked by :func:`validate_record` / :func:`validate_jsonl`
(exposed as ``python -m repro.obs <path>``, which is what the CI
``obs-smoke`` step runs against a traced example).
"""

from __future__ import annotations

import json
import threading
from typing import IO

# The documented record schema: field name -> accepted types. ``tags``
# is checked structurally (a dict of scalar-valued entries).
_SCHEMA: dict[str, tuple] = {
    "name": (str,),
    "span_id": (int,),
    "parent_id": (int, type(None)),
    "thread": (str,),
    "start_s": (int, float),
    "duration_s": (int, float),
    "rss_delta_kb": (int,),
    "tags": (dict,),
}
_TAG_VALUE_TYPES = (str, int, float, bool, type(None))


class RingBufferSink:
    """Bounded in-memory recorder keeping the most recent spans.

    >>> sink = RingBufferSink(capacity=2)
    >>> for i in range(3):
    ...     sink.record({"span_id": i})
    >>> [r["span_id"] for r in sink.records()], sink.dropped
    ([1, 2], 1)
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"ring buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._buffer: list[dict] = []
        self._next = 0
        self.recorded = 0
        self.dropped = 0

    def record(self, record: dict) -> None:
        with self._lock:
            self.recorded += 1
            if len(self._buffer) < self.capacity:
                self._buffer.append(record)
            else:
                self._buffer[self._next] = record
                self.dropped += 1
            self._next = (self._next + 1) % self.capacity

    def records(self) -> list[dict]:
        """Retained records, oldest first."""
        with self._lock:
            if len(self._buffer) < self.capacity:
                return list(self._buffer)
            return self._buffer[self._next:] + self._buffer[: self._next]

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()
            self._next = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


class JsonlSink:
    """Appends one JSON object per finished span to a file.

    Writes flush per record: a trace must be inspectable after a crash,
    which is the point of tracing a failing script.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle: "IO[str] | None" = open(self.path, "a", encoding="utf-8")
        self.written = 0

    def record(self, record: dict) -> None:
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ----------------------------------------------------------------------
# Schema validation (CI's obs-smoke gate)
# ----------------------------------------------------------------------


def validate_record(record: object) -> list[str]:
    """Problems with one span record against the documented schema.

    Returns an empty list for a conforming record.

    >>> validate_record({"name": "x", "span_id": 1, "parent_id": None,
    ...                  "thread": "MainThread", "start_s": 0.0,
    ...                  "duration_s": 0.1, "rss_delta_kb": 0, "tags": {}})
    []
    >>> validate_record({"name": "x"})[0]
    "missing field 'span_id'"
    """
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    problems = []
    for field, types in _SCHEMA.items():
        if field not in record:
            problems.append(f"missing field {field!r}")
            continue
        value = record[field]
        # bool is an int subclass; only accept it where int is not meant.
        if isinstance(value, bool) and bool not in types:
            problems.append(f"field {field!r} is a bool, expected {types}")
            continue
        if not isinstance(value, types):
            problems.append(
                f"field {field!r} is {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if not problems:
        if record["span_id"] <= 0:
            problems.append("span_id must be positive")
        if record["duration_s"] < 0:
            problems.append("duration_s must be non-negative")
        if record["rss_delta_kb"] < 0:
            problems.append("rss_delta_kb must be non-negative")
        for key, value in record["tags"].items():
            if not isinstance(key, str):
                problems.append(f"tag key {key!r} is not a string")
            elif not isinstance(value, _TAG_VALUE_TYPES):
                problems.append(
                    f"tag {key!r} has non-scalar value type {type(value).__name__}"
                )
    unknown = set(record) - set(_SCHEMA)
    if unknown:
        problems.append(f"unknown fields: {sorted(unknown)}")
    return problems


def validate_jsonl(path) -> tuple[int, list[str]]:
    """Validate a JSON-lines trace file.

    Returns ``(valid_span_count, problems)`` where problems are prefixed
    with their 1-based line number.
    """
    count = 0
    problems: list[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                problems.append(f"line {line_number}: invalid JSON ({error})")
                continue
            issues = validate_record(record)
            if issues:
                problems.extend(f"line {line_number}: {issue}" for issue in issues)
            else:
                count += 1
    return count, problems
