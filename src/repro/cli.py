"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — engine summary: version, registered function counts.
* ``functions [--category C]`` — list the registered analytics surface.
* ``demo [--tag TAG]`` — run the §4.1 StackOverflow expert demo.
* ``generate --kind K ...`` — emit a synthetic graph as an edge list.
* ``stats PATH`` — summarise an edge-list file (PrintInfo-style).
* ``lint [PATHS ...]`` — run ringo-lint (``python -m repro.analysis``).
* ``trace SCRIPT`` — run a Python script under the repro.obs tracer and
  print the span-tree profile (optionally writing a JSONL trace).
* ``serve --spool DIR`` — run the multi-tenant session service until
  SIGTERM/SIGINT, then drain (checkpoint all dirty sessions) and exit.
  ``--role replica`` runs a hot standby; ``--replica HOST:PORT`` on a
  primary ships its WAL there continuously.
* ``promote HOST:PORT`` — promote a replica service to primary: drain
  the ship stream to the WAL tip, bump the epoch, fence the old
  primary's spool, start accepting writes.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro import __version__
from repro.core.engine import Ringo
from repro.exceptions import RingoError


def _cmd_info(args: argparse.Namespace) -> int:
    with Ringo(workers=1) as ringo:
        print(f"repro {__version__} — Ringo (SIGMOD 2015) reproduction")
        print(f"registered functions: {ringo.NumFunctions()}")
        for category, count in sorted(ringo.registry.categories().items()):
            print(f"  {category:<18} {count}")
    return 0


def _cmd_functions(args: argparse.Namespace) -> int:
    with Ringo(workers=1) as ringo:
        for name in ringo.Functions(category=args.category):
            entry = ringo.registry.get(name)
            print(f"{name:<48} {entry.description}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.workflows.stackoverflow import (
        POSTS_SCHEMA,
        StackOverflowConfig,
        generate_stackoverflow,
        write_posts_tsv,
    )

    config = StackOverflowConfig(num_users=800, num_questions=5000, seed=2015)
    if args.tag not in config.tags:
        print(f"unknown tag {args.tag!r}; pick one of {config.tags}", file=sys.stderr)
        return 2
    data = generate_stackoverflow(config)
    budget = None
    if args.memory_budget_mb is not None:
        budget = args.memory_budget_mb * (1 << 20)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "posts.tsv"
        write_posts_tsv(data, path)
        with Ringo(
            workers=args.workers,
            memory_budget=budget,
            on_budget_exceeded=args.budget_policy,
        ) as ringo:
            posts = ringo.LoadTableTSV(POSTS_SCHEMA, path)
            tagged = ringo.Select(posts, f"Tag='{args.tag}'")
            questions = ringo.Select(tagged, "Type=question")
            answers = ringo.Select(tagged, "Type=answer")
            qa = ringo.Join(questions, answers, "AnswerId", "PostId")
            graph = ringo.ToGraph(qa, "UserId-1", "UserId-2")
            ranks = ringo.GetPageRank(graph)
            scores = ringo.TableFromHashMap(ranks, "User", "Scr")
            top = ringo.TopK(scores, "Scr", 10)
            health = ringo.health()
    top_users = top.column("User").tolist()
    truth = set(data.experts_for(args.tag))
    hits = sum(1 for user in top_users if user in truth)
    print(f"top-10 {args.tag} experts: {top_users}")
    print(f"precision@10 vs planted experts: {hits}/10")
    if args.show_health:
        workers = health["workers"]
        print(
            f"health: workers={workers['workers']} calls={workers['calls']} "
            f"retries={workers['retries']} timeouts={workers['timeouts']} "
            f"degraded={workers['degraded']}"
        )
        if health["memory_budget"] is not None:
            mb = health["memory_budget"]
            print(
                f"budget: limit={mb['limit_bytes']}B admitted={mb['admitted']} "
                f"denials={mb['denials']} degradations={mb['degradations']}"
            )
        print(f"objects published: {health['objects']['published']}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.algorithms import generators
    from repro.graphs.serialize import save_edge_list

    if args.kind == "rmat":
        graph = generators.rmat(args.scale, args.edges, seed=args.seed)
    elif args.kind == "ba":
        graph = generators.barabasi_albert(args.nodes, args.attach, seed=args.seed)
    elif args.kind == "er":
        graph = generators.erdos_renyi_gnm(args.nodes, args.edges, seed=args.seed)
    else:
        print(f"unknown kind {args.kind!r}", file=sys.stderr)
        return 2
    written = save_edge_list(graph, args.output)
    print(f"wrote {written} edges ({graph.num_nodes} nodes) to {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    results_dir = Path(args.results)
    if not results_dir.is_dir():
        print(f"no results directory at {results_dir}; run "
              f"`pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 2
    files = sorted(results_dir.glob("*.txt"))
    if not files:
        print(f"no result files in {results_dir}", file=sys.stderr)
        return 2
    for path in files:
        print(f"\n=== {path.stem} ===")
        print(path.read_text().rstrip())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.algorithms.statistics import summarize
    from repro.graphs.serialize import load_edge_list

    graph = load_edge_list(args.path, directed=not args.undirected)
    print(summarize(graph))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main

    forwarded = list(args.paths)
    if args.baseline is not None:
        forwarded += ["--baseline", args.baseline]
    if args.rules is not None:
        forwarded += ["--rules", args.rules]
    if args.write_baseline:
        forwarded.append("--write-baseline")
    if args.no_advisory:
        forwarded.append("--no-advisory")
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.format is not None:
        forwarded += ["--format", args.format]
    if args.strict_baseline:
        forwarded.append("--strict-baseline")
    return lint_main(forwarded)


def _cmd_trace(args: argparse.Namespace) -> int:
    import runpy

    from repro import obs

    script = Path(args.script)
    if not script.is_file():
        print(f"repro trace: no such script: {script}", file=sys.stderr)
        return 2
    sinks: list = [obs.RingBufferSink(capacity=args.ring_capacity)]
    if args.output is not None:
        sinks.append(obs.JsonlSink(args.output))
    tracer = obs.enable(sinks=sinks)
    # The script sees the tracer as already armed — Ringo() sessions it
    # creates will not tear it down (the ownership protocol).
    old_argv = sys.argv
    sys.argv = [str(script)] + list(args.script_args)
    try:
        with obs.trace("cli.trace", script=str(script)):
            runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
        records = tracer.ring_records()
        stats = tracer.stats()
        if obs.current_tracer() is tracer:
            obs.disable()
    print(obs.render_profile(records, min_total_s=args.min_total))
    print(
        f"spans: {stats['finished']} finished, {stats['recorded']} recorded, "
        f"{stats['dropped']} dropped"
    )
    if args.output is not None:
        print(f"trace written to {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.server import ServiceConfig, serve_forever

    config = ServiceConfig(
        spool_dir=args.spool,
        host=args.host,
        port=args.port,
        global_budget_bytes=args.global_budget_mb << 20,
        default_tenant_budget_bytes=args.tenant_budget_mb << 20,
        max_queue_depth=args.queue_depth,
        default_deadline_s=args.deadline_s,
        tick_s=args.tick_s,
        idle_evict_s=args.idle_evict_s,
        session_workers=args.session_workers,
        executor_threads=args.threads,
        role=args.role,
        replica_address=args.replica,
        ship_interval_s=args.ship_interval_s,
        ship_batch_records=args.ship_batch,
        digest_every_batches=args.digest_every,
        lag_degrade_records=args.lag_degrade,
    )
    asyncio.run(
        serve_forever(config, signals=(signal.SIGTERM, signal.SIGINT))
    )
    return 0


def _parse_address(value: str) -> "tuple[str, int]":
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise RingoError(f"address {value!r} is not HOST:PORT")
    return host, int(port)


def _cmd_promote(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    host, port = _parse_address(args.address)
    with ServiceClient(host, port, tenant="__admin__", timeout=args.timeout) as client:
        call_args: dict = {}
        if args.new_epoch is not None:
            call_args["new_epoch"] = args.new_epoch
        if args.fence_spool is not None:
            call_args["fence_spool"] = args.fence_spool
        report = client.call("promote", **call_args)
    print(
        f"promoted to epoch {report['epoch']}; "
        f"drained {report['drained_records']} record(s) from the old "
        f"primary's WAL tails; adopted {len(report.get('adopted', []))} "
        f"live session(s)"
    )
    for tenant, state in sorted(report.get("tenants", {}).items()):
        print(f"  {tenant:<24} applied_lsn={state['applied_lsn']} "
              f"epoch={state['epoch']}")
    if report.get("fenced_spool"):
        print(f"fenced old primary spool: {report['fenced_spool']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Ringo (SIGMOD 2015) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="engine summary")
    info.set_defaults(func=_cmd_info)

    functions = sub.add_parser("functions", help="list registered functions")
    functions.add_argument("--category", default=None)
    functions.set_defaults(func=_cmd_functions)

    demo = sub.add_parser("demo", help="run the StackOverflow expert demo")
    demo.add_argument("--tag", default="Java")
    demo.add_argument("--workers", type=int, default=None)
    demo.add_argument(
        "--memory-budget-mb", type=int, default=None,
        help="session memory budget for conversions/joins, in MiB",
    )
    demo.add_argument(
        "--budget-policy", choices=("raise", "degrade"), default="raise",
        help="over-budget behaviour: fail fast or degrade to chunked builds",
    )
    demo.add_argument(
        "--show-health", action="store_true",
        help="print the session health() summary after the demo",
    )
    demo.set_defaults(func=_cmd_demo)

    generate = sub.add_parser("generate", help="emit a synthetic graph edge list")
    generate.add_argument("--kind", choices=("rmat", "ba", "er"), default="rmat")
    generate.add_argument("--scale", type=int, default=10)
    generate.add_argument("--edges", type=int, default=10_000)
    generate.add_argument("--nodes", type=int, default=1_000)
    generate.add_argument("--attach", type=int, default=3)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)
    generate.set_defaults(func=_cmd_generate)

    stats = sub.add_parser("stats", help="summarise an edge-list file")
    stats.add_argument("path")
    stats.add_argument("--undirected", action="store_true")
    stats.set_defaults(func=_cmd_stats)

    report = sub.add_parser(
        "report", help="print the regenerated paper tables from benchmark runs"
    )
    report.add_argument(
        "--results",
        default=str(Path(__file__).resolve().parents[2] / "benchmarks" / "results"),
    )
    report.set_defaults(func=_cmd_report)

    lint = sub.add_parser(
        "lint", help="run ringo-lint (project rules R001-R012) over source paths"
    )
    lint.add_argument("paths", nargs="*", default=["src"])
    lint.add_argument("--baseline", default=None)
    lint.add_argument("--rules", default=None)
    lint.add_argument("--write-baseline", action="store_true")
    lint.add_argument("--no-advisory", action="store_true")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument(
        "--format", default=None, choices=("text", "json", "sarif", "markdown")
    )
    lint.add_argument("--strict-baseline", action="store_true")
    lint.set_defaults(func=_cmd_lint)

    trace = sub.add_parser(
        "trace", help="run a Python script under the tracer and print a profile"
    )
    trace.add_argument("script", help="path to the Python script to run")
    trace.add_argument(
        "script_args", nargs="*", help="arguments forwarded to the script"
    )
    trace.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the spans as a JSON-lines trace file",
    )
    trace.add_argument(
        "--min-total", type=float, default=0.0, metavar="SECONDS",
        help="hide profile rows whose total time is below this",
    )
    trace.add_argument(
        "--ring-capacity", type=int, default=65536,
        help="in-memory span buffer size backing the profile",
    )
    trace.set_defaults(func=_cmd_trace)

    serve = sub.add_parser(
        "serve", help="run the multi-tenant session service (drains on SIGTERM)"
    )
    serve.add_argument(
        "--spool", required=True, metavar="DIR",
        help="directory for per-tenant durable state (WAL + checkpoints)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks a free port, printed at startup)",
    )
    serve.add_argument(
        "--global-budget-mb", type=int, default=1024,
        help="total resident-session memory the ledger admits, in MiB",
    )
    serve.add_argument(
        "--tenant-budget-mb", type=int, default=128,
        help="default per-tenant session memory budget, in MiB",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="per-tenant queue bound; beyond it the oldest deadline is shed",
    )
    serve.add_argument(
        "--deadline-s", type=float, default=30.0,
        help="default request deadline when the client sends none",
    )
    serve.add_argument(
        "--tick-s", type=float, default=0.02,
        help="scheduler tick: queued-deadline sweep + idle-eviction cadence",
    )
    serve.add_argument(
        "--idle-evict-s", type=float, default=60.0,
        help="idle time before a resident session is evicted to checkpoint",
    )
    serve.add_argument(
        "--session-workers", type=int, default=1,
        help="worker threads inside each tenant's Ringo session",
    )
    serve.add_argument(
        "--threads", type=int, default=8,
        help="shared executor threads running engine calls",
    )
    serve.add_argument(
        "--role", choices=("primary", "replica"), default="primary",
        help="primary serves writes; replica follows a ship stream "
             "and serves (lag-gated) reads until promoted",
    )
    serve.add_argument(
        "--replica", default=None, metavar="HOST:PORT",
        help="replica address a primary ships its WAL to (enables "
             "continuous replication)",
    )
    serve.add_argument(
        "--ship-interval-s", type=float, default=0.05,
        help="WAL shipper polling interval on the primary",
    )
    serve.add_argument(
        "--ship-batch", type=int, default=64,
        help="max WAL records per shipped batch",
    )
    serve.add_argument(
        "--digest-every", type=int, default=4,
        help="exchange a consistency digest every N shipped batches",
    )
    serve.add_argument(
        "--lag-degrade", type=int, default=1024,
        help="replica read degradation threshold, in WAL records behind",
    )
    serve.set_defaults(func=_cmd_serve)

    promote = sub.add_parser(
        "promote", help="promote a replica service to primary (fenced failover)"
    )
    promote.add_argument("address", metavar="HOST:PORT",
                         help="the replica service to promote")
    promote.add_argument(
        "--fence-spool", default=None, metavar="DIR",
        help="the deposed primary's spool root: drain its WAL tails and "
             "fence its tenant directories at the new epoch",
    )
    promote.add_argument(
        "--new-epoch", type=int, default=None,
        help="explicit new epoch (defaults to highest observed + 1)",
    )
    promote.add_argument("--timeout", type=float, default=60.0)
    promote.set_defaults(func=_cmd_promote)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code.

    Deliberate package errors (bad budgets, bad ``REPRO_WORKERS``,
    exceeded memory budgets, ...) are reported as one-line CLI errors
    with exit code 2 rather than tracebacks.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except RingoError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
